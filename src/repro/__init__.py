"""repro — reproduction of *xFraud: Explainable Fraud Transaction
Detection* (Rao et al., VLDB 2021).

The package mirrors the paper's architecture:

* :mod:`repro.nn` — numpy autograd + neural-network substrate;
* :mod:`repro.data` — synthetic eBay-like transaction logs;
* :mod:`repro.graph` — heterogeneous graphs, samplers, PIC partitioning;
* :mod:`repro.storage` — KV-store data loading;
* :mod:`repro.models` — the xFraud detector (+HGT variant) and the
  GAT / GEM baselines;
* :mod:`repro.train` — single-machine and simulated-distributed
  training plus every metric of the evaluation;
* :mod:`repro.explain` — the modified GNNExplainer, centralities,
  annotations, hit rate, and the learnable hybrid explainer;
* :mod:`repro.stream` — streaming ingestion: durable event log (WAL),
  incremental graph maintenance, online scoring, drift detection.

Quickstart::

    from repro import ebay_small_sim, DetectorConfig, XFraudDetectorPlus
    from repro import Trainer, TrainConfig

    data = ebay_small_sim()
    config = DetectorConfig(feature_dim=data.graph.feature_dim)
    detector = XFraudDetectorPlus(config)
    trainer = Trainer(detector, TrainConfig(epochs=8))
    trainer.fit(data.graph, data.train_nodes, eval_nodes=data.test_nodes)
    print(trainer.evaluate(data.graph, data.test_nodes))
"""

from . import (
    data,
    explain,
    graph,
    models,
    nn,
    obs,
    reliability,
    rules,
    serving,
    storage,
    stream,
    train,
)
from .data import (
    DatasetBundle,
    GeneratorConfig,
    TransactionGenerator,
    TransactionLog,
    TransactionRecord,
    TxnEvent,
    ebay_large_sim,
    ebay_small_sim,
    ebay_xlarge_sim,
    export_events,
    generate_events,
    generate_log,
    load_dataset,
)
from .explain import (
    AnnotatorPanel,
    CommunityWeights,
    ExplainerConfig,
    GNNExplainer,
    HybridExplainer,
    fit_grid,
    fit_ridge,
    topk_hit_rate,
)
from .graph import (
    BuildConfig,
    Community,
    GraphBuilder,
    HeteroGraph,
    HGSampler,
    SageSampler,
    extract_community,
    select_communities,
    train_test_split,
)
from .models import (
    DetectorConfig,
    GATModel,
    GEMModel,
    XFraudDetector,
    XFraudDetectorHGT,
    XFraudDetectorPlus,
)
from .obs import MetricsRegistry, Profiler, Tracer, timed
from .reliability import (
    CheckpointManager,
    FaultPlan,
    RetryingKVStore,
    RetryPolicy,
)
from .serving import (
    CircuitBreaker,
    Deadline,
    ScoreRequest,
    ScoreResponse,
    ScoringService,
    ServiceConfig,
    ServiceStats,
)
from .stream import (
    DriftDetector,
    EventLog,
    IncrementalGraphBuilder,
    StreamScorer,
    run_stream_demo,
)
from .train import (
    DistributedTrainer,
    TrainConfig,
    Trainer,
    make_worker_partitions,
    measure_inference_time,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "nn",
    "data",
    "graph",
    "storage",
    "rules",
    "models",
    "train",
    "explain",
    "reliability",
    "serving",
    "stream",
    "obs",
    "MetricsRegistry",
    "Tracer",
    "timed",
    "Profiler",
    "ScoringService",
    "ServiceConfig",
    "ServiceStats",
    "ScoreRequest",
    "ScoreResponse",
    "Deadline",
    "CircuitBreaker",
    "CheckpointManager",
    "FaultPlan",
    "RetryingKVStore",
    "RetryPolicy",
    "DatasetBundle",
    "GeneratorConfig",
    "TransactionGenerator",
    "TransactionLog",
    "TransactionRecord",
    "ebay_small_sim",
    "ebay_large_sim",
    "ebay_xlarge_sim",
    "generate_log",
    "generate_events",
    "export_events",
    "TxnEvent",
    "load_dataset",
    "EventLog",
    "IncrementalGraphBuilder",
    "StreamScorer",
    "DriftDetector",
    "run_stream_demo",
    "HeteroGraph",
    "GraphBuilder",
    "BuildConfig",
    "train_test_split",
    "Community",
    "extract_community",
    "select_communities",
    "SageSampler",
    "HGSampler",
    "DetectorConfig",
    "XFraudDetector",
    "XFraudDetectorPlus",
    "XFraudDetectorHGT",
    "GATModel",
    "GEMModel",
    "Trainer",
    "TrainConfig",
    "DistributedTrainer",
    "make_worker_partitions",
    "measure_inference_time",
    "GNNExplainer",
    "ExplainerConfig",
    "AnnotatorPanel",
    "CommunityWeights",
    "HybridExplainer",
    "fit_grid",
    "fit_ridge",
    "topk_hit_rate",
]
