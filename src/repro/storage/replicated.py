"""Replicated feature-store tier: failover, hedged reads, anti-entropy.

The deployed xFraud system (Sec. 3.3.3, Appendix H.5) reads features
from a remote KV-store on every scoring request. A single store node is
therefore a single point of failure: one slow machine inflates every
tail latency and one dead machine is a whole-service outage.
:class:`ReplicatedKVStore` turns the storage tier into the availability
layer a production deployment actually runs:

* **Placement** — every key is owned by the top ``replication_factor``
  replicas of a rendezvous (highest-random-weight) hash ranking, using
  the same splitmix64 mixing as :mod:`repro.graph.sampling`. Placement
  is a pure function of ``(key, seed, num_replicas)``: no ring state,
  no rebalancing metadata, and two stores built the same way agree on
  every key's preference list.
* **Health tracking** — each replica carries a
  :class:`ReplicaHealth` state machine (``healthy → suspect → dead →
  probing``) driven by consecutive errors, plus an EWMA of observed
  read latency and a bounded :class:`~repro.obs.registry.Reservoir` of
  latency samples. Dead replicas are skipped entirely until a probe
  interval elapses; a probe read then decides resurrection vs. another
  stint in the penalty box.
* **Hedged reads** — when a read of the *primary* owner exceeds that
  replica's own latency quantile (``hedge_quantile`` over its sample
  reservoir), a backup read is fired at the next-preferred owner and
  the first answer wins (``concurrent_hedge=True``, real threads). On
  a simulated :class:`~repro.reliability.faults.ManualClock`, where
  racing threads would be meaningless, the store instead *tallies*
  primary reads that overran their hedge threshold
  (``hedge_overruns``), keeping chaos tests deterministic. Samples
  from hedged primary reads are excluded from the hedge reservoir so a
  persistently slow replica cannot drift its own threshold up and
  disarm hedging.
* **Corruption quarantine** — ``put`` fans out to every owner and
  records a CRC32 ledger entry; a ``get`` whose bytes fail the ledger
  check (or whose replica raises
  :class:`~repro.storage.kvstore.CorruptStoreError` from
  :class:`~repro.storage.kvstore.MmapKVStore`'s own per-value
  checksums) quarantines that replica as dead and fails over — the
  caller never sees garbage bytes *or* an exception while a good copy
  exists.
* **Anti-entropy** — :meth:`ReplicatedKVStore.anti_entropy` compares
  per-owner CRC32s against the ledger (majority vote when no ledger
  entry exists), read-repairs divergent/missing/corrupt copies from a
  verified-good replica, and flips repaired quarantined replicas back
  to probing. Set ``anti_entropy_interval_s`` to run incremental
  background passes piggybacked on reads.

Layering: this module sits in ``repro.storage`` and therefore imports
only :mod:`repro.storage.kvstore` and the dependency-free
:mod:`repro.obs.registry`. Circuit breakers are *injected* by the
serving layer via :meth:`ReplicatedKVStore.set_replica_breakers`
(duck-typed: anything with ``call(fn)``), which is how
:class:`~repro.serving.service.ScoringService` demotes its breaker to
per-replica scope without an import cycle.
"""

from __future__ import annotations

import time
import threading
import zlib
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..obs.registry import MetricsRegistry, Reservoir
from ..util import nearest_rank_index
from .kvstore import CorruptStoreError, KVStore

HEALTHY = "healthy"
SUSPECT = "suspect"
DEAD = "dead"
PROBING = "probing"

# splitmix64 finalizer constants — the same mixing the samplers use
# (repro.graph.sampling), in plain-int form for per-key hashing.
_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finalizer over one unsigned 64-bit integer.

    Public because the elastic trainer's rendezvous partition placement
    (:mod:`repro.train.elastic`) reuses exactly this mixing, so worker
    placement and replica placement share one hash family.
    """
    z = (value + _GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX_1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_2) & _MASK64
    return z ^ (z >> 31)


_mix64 = mix64


def rendezvous_order(key: str, num_replicas: int, seed: int = 0) -> List[int]:
    """Replica preference order for ``key`` (highest random weight first).

    A pure function of ``(key, num_replicas, seed)``; removing a
    replica only reassigns the keys it owned — the property that makes
    rendezvous hashing the consistent-hashing scheme of choice when
    the replica count is small.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    key_hash = zlib.crc32(key.encode("utf-8"))
    scored = [
        (_mix64(key_hash ^ _mix64((seed & _MASK64) ^ (index << 32))), index)
        for index in range(num_replicas)
    ]
    scored.sort(key=lambda pair: (-pair[0], pair[1]))
    return [index for _, index in scored]


class AllReplicasFailedError(IOError):
    """Every candidate replica failed (or is dead) for one operation."""


class _ReplicaMiss(KeyError):
    """Internal: the key is absent on one replica (divergence, not failure)."""


@dataclass(frozen=True)
class ReplicatedConfig:
    """Operating envelope of one :class:`ReplicatedKVStore`.

    ``concurrent_hedge`` selects real threaded hedging (wall-clock
    latency wins, for production/benchmarks) vs. the deterministic
    tally mode used with a :class:`~repro.reliability.faults.ManualClock`.
    """

    replication_factor: int = 2
    suspect_after: int = 1  # consecutive errors before healthy -> suspect
    dead_after: int = 3  # consecutive errors before -> dead
    probe_interval_s: float = 0.5  # dead -> probing after this long
    ewma_alpha: float = 0.2
    hedge_quantile: float = 0.95
    hedge_min_observations: int = 16  # reservoir floor before hedging arms
    concurrent_hedge: bool = False
    verify_crc: bool = True
    latency_reservoir_size: int = 256
    anti_entropy_interval_s: Optional[float] = None  # None = manual only
    anti_entropy_batch: int = 64  # keys per background increment

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.suspect_after < 1 or self.dead_after < self.suspect_after:
            raise ValueError("need 1 <= suspect_after <= dead_after")
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise ValueError("hedge_quantile must be in (0, 1]")
        if self.hedge_min_observations < 1:
            raise ValueError("hedge_min_observations must be >= 1")
        if self.anti_entropy_interval_s is not None and self.anti_entropy_interval_s <= 0:
            raise ValueError("anti_entropy_interval_s must be positive (or None)")


class ReplicaHealth:
    """Per-replica EWMA latency + consecutive-error state machine.

    ``healthy`` — serving normally. ``suspect`` — one or more recent
    consecutive errors; still a read candidate (failover covers it).
    ``dead`` — skipped entirely until ``probe_interval_s`` elapses.
    ``probing`` — one trial read decides: success resurrects to
    healthy, failure goes straight back to dead.
    """

    def __init__(
        self,
        index: int,
        clock: Callable[[], float],
        config: ReplicatedConfig,
        on_transition: Optional[Callable[[int, str, str], None]] = None,
    ) -> None:
        self.index = index
        self.state = HEALTHY
        self.config = config
        self.consecutive_errors = 0
        self.ewma_latency_s: Optional[float] = None
        self.last_error: Optional[str] = None
        self.reads_ok = 0
        self.reads_error = 0
        self.transitions: List[Tuple[float, str, str, str]] = []  # (at, from, to, reason)
        self.latencies = Reservoir(config.latency_reservoir_size, seed=index)
        self.on_transition = on_transition
        self._clock = clock
        self._dead_since = 0.0

    def _transition(self, to_state: str, reason: str) -> None:
        if to_state == self.state:
            return
        previous, self.state = self.state, to_state
        self.transitions.append((self._clock(), previous, to_state, reason))
        if self.on_transition is not None:
            self.on_transition(self.index, previous, to_state)

    def state_path(self) -> Tuple[str, ...]:
        """Visited states in order, leading with the initial state."""
        if not self.transitions:
            return (self.state,)
        return (self.transitions[0][1],) + tuple(t[2] for t in self.transitions)

    def record_success(self, latency_s: float, record_sample: bool = True) -> None:
        """A read served correct bytes in ``latency_s`` seconds.

        ``record_sample=False`` keeps the observation out of the hedge
        reservoir (used for hedged primary reads, whose samples are
        censored by the hedge decision itself) while still updating the
        EWMA the operators watch.
        """
        self.consecutive_errors = 0
        alpha = self.config.ewma_alpha
        if self.ewma_latency_s is None:
            self.ewma_latency_s = float(latency_s)
        else:
            self.ewma_latency_s += alpha * (float(latency_s) - self.ewma_latency_s)
        if record_sample:
            self.latencies.add(float(latency_s))
        self.reads_ok += 1
        if self.state in (SUSPECT, PROBING):
            self._transition(HEALTHY, "read succeeded")

    def record_failure(self, error: str) -> None:
        """A read (or write) errored; may demote suspect -> dead."""
        self.consecutive_errors += 1
        self.last_error = error
        self.reads_error += 1
        if self.state == PROBING:
            self._dead_since = self._clock()
            self._transition(DEAD, "probe failed")
        elif self.consecutive_errors >= self.config.dead_after:
            self._dead_since = self._clock()
            self._transition(DEAD, f"{self.consecutive_errors} consecutive errors")
        elif self.consecutive_errors >= self.config.suspect_after:
            self._transition(SUSPECT, f"{self.consecutive_errors} consecutive errors")

    def quarantine(self, error: str) -> None:
        """Corrupt bytes: straight to dead, no grace period."""
        self.consecutive_errors += 1
        self.last_error = error
        self.reads_error += 1
        self._dead_since = self._clock()
        self._transition(DEAD, "corrupt read quarantined")

    def mark_probing(self, reason: str) -> None:
        """External resurrection nudge (e.g. after an anti-entropy repair)."""
        if self.state == DEAD:
            self._transition(PROBING, reason)

    def available(self, now: float) -> bool:
        """May this replica serve a read right now? Moves dead -> probing
        once the probe interval has elapsed."""
        if self.state == DEAD:
            if now - self._dead_since >= self.config.probe_interval_s:
                self._transition(PROBING, "probe interval elapsed")
                return True
            return False
        return True

    def hedge_threshold(self) -> Optional[float]:
        """This replica's hedge trigger: its own latency quantile, or
        ``None`` until ``hedge_min_observations`` samples accrue."""
        values = self.latencies.values()
        if len(values) < self.config.hedge_min_observations:
            return None
        ordered = sorted(values)
        # Nearest-rank quantile (same selection rule as
        # obs.registry.Histogram.percentile and latency_percentiles).
        rank = nearest_rank_index(self.config.hedge_quantile * 100.0, len(ordered))
        return float(ordered[rank])


@dataclass
class AntiEntropyReport:
    """Outcome of one :meth:`ReplicatedKVStore.anti_entropy` pass."""

    keys_checked: int = 0
    divergent: List[Tuple[str, int, str]] = field(default_factory=list)  # (key, replica, kind)
    repaired: int = 0
    unrepairable: int = 0

    def describe(self) -> str:
        return (
            f"anti-entropy: {self.keys_checked} keys checked, "
            f"{len(self.divergent)} divergent copies, "
            f"{self.repaired} repaired, {self.unrepairable} unrepairable"
        )


# Sentinels for anti-entropy observations that are not checksums.
_MISSING = "missing"
_CORRUPT = "corrupt"
_UNREACHABLE = "unreachable"


class ReplicatedKVStore(KVStore):
    """Fan a keyspace over N replicas with failover, hedging, and repair.

    Writes fan out to every owner of the key (the top
    ``replication_factor`` replicas by rendezvous rank) and record a
    CRC32 ledger entry; a write that lands on at least one owner
    succeeds, and anti-entropy later heals the stragglers. Reads walk
    the preference list: dead replicas are skipped, errors fail over to
    the next owner, corrupt bytes quarantine the replica, and an
    exhausted list raises :class:`AllReplicasFailedError` (or
    ``KeyError`` when every live owner simply lacks the key).

    ``clock`` is any monotonic callable;
    inject a :class:`~repro.reliability.faults.ManualClock` for
    deterministic chaos tests (pair with ``concurrent_hedge=False``).
    """

    def __init__(
        self,
        replicas: Sequence[KVStore],
        config: Optional[ReplicatedConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        replicas = list(replicas)
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas: List[KVStore] = replicas
        self.config = config or ReplicatedConfig()
        self.seed = int(seed)
        self.replication_factor = min(self.config.replication_factor, len(replicas))
        self._clock = clock
        self.health = [ReplicaHealth(i, clock, self.config) for i in range(len(replicas))]
        self._crc: Dict[str, int] = {}  # ledger: key -> crc32 recorded at put
        self._owners_cache: Dict[str, Tuple[int, ...]] = {}
        self._breakers: Optional[Sequence] = None
        self._open_errors: Tuple[Type[BaseException], ...] = ()
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        # counters (mirrored into the registry when instrumented)
        self.hedged_reads = 0  # backup reads actually fired (concurrent mode)
        self.hedge_overruns = 0  # primary reads that exceeded their threshold
        self.failovers = 0  # reads served by a non-primary owner
        self.corrupt_reads = 0  # checksum failures absorbed by quarantine
        self.breaker_skips = 0  # candidates skipped because their breaker was open
        self._last_anti_entropy = clock()
        self._anti_entropy_cursor = 0
        self._in_anti_entropy = False
        self.registry: Optional[MetricsRegistry] = None
        self._reads_total = None
        self._read_seconds = None
        self._replica_reads = None
        self._hedged_total = None
        self._overruns_total = None
        self._failovers_total = None
        self._corrupt_total = None
        self._repairs_total = None
        self._state_gauge = None
        self._ewma_gauge = None
        self._errors_gauge = None
        self._exported_info: List[Dict[str, str]] = []
        if registry is not None:
            self.instrument(registry)

    # -- wiring ---------------------------------------------------------
    def set_replica_breakers(
        self,
        breakers: Sequence,
        open_error: Optional[Type[BaseException]] = None,
    ) -> None:
        """Attach one circuit breaker per replica (duck-typed: anything
        with ``call(fn)``). ``open_error`` is the exception type the
        breaker raises when open; reads treat it as "skip this replica"
        rather than a replica failure. The serving layer injects real
        :class:`~repro.serving.breaker.CircuitBreaker` instances here —
        storage cannot import serving."""
        if len(breakers) != len(self.replicas):
            raise ValueError(
                f"got {len(breakers)} breakers for {len(self.replicas)} replicas"
            )
        self._breakers = list(breakers)
        self._open_errors = (open_error,) if open_error is not None else ()

    def instrument(self, registry: MetricsRegistry) -> "ReplicatedKVStore":
        """Attach health/hedging/repair metrics and propagate
        ``instrument`` down into every replica (joining the shared
        ``kv_reads_total`` / ``kv_read_seconds`` family under
        ``store="replicated"``). Returns self for chaining."""
        from .kvstore import propagate_instrument

        self.registry = registry
        self._reads_total = registry.counter(
            "kv_reads_total", "KV feature reads issued.", labels=("store",)
        )
        self._read_seconds = registry.histogram(
            "kv_read_seconds",
            "Latency of KV feature reads (per chunk, retries included).",
            labels=("store",),
        )
        self._replica_reads = registry.counter(
            "kv_replica_reads_total",
            "Replica read outcomes (ok/error/corrupt/skip).",
            labels=("replica", "outcome"),
        )
        self._hedged_total = registry.counter(
            "kv_hedged_reads_total", "Backup reads fired by the hedging policy."
        )
        self._overruns_total = registry.counter(
            "kv_hedge_overruns_total",
            "Primary reads that exceeded their hedge latency threshold.",
        )
        self._failovers_total = registry.counter(
            "kv_failovers_total", "Reads served by a non-primary replica."
        )
        self._corrupt_total = registry.counter(
            "kv_corrupt_reads_total",
            "Checksum-failed reads absorbed by quarantine.",
            labels=("replica",),
        )
        self._repairs_total = registry.counter(
            "kv_anti_entropy_repairs_total", "Divergent copies rewritten by anti-entropy."
        )
        self._state_gauge = registry.gauge(
            "kv_replica_state",
            "One-hot replica health state.",
            labels=("replica", "state"),
        )
        self._ewma_gauge = registry.gauge(
            "kv_replica_ewma_latency_seconds",
            "EWMA of observed read latency per replica.",
            labels=("replica",),
        )
        self._errors_gauge = registry.gauge(
            "kv_replica_consecutive_errors",
            "Consecutive errors per replica (resets on success).",
            labels=("replica",),
        )
        for health in self.health:
            health.on_transition = self._on_health_transition
            self._set_state_gauge(health.index, health.state)
        for replica in self.replicas:
            propagate_instrument(replica, registry)
        return self

    def _on_health_transition(self, index: int, from_state: str, to_state: str) -> None:
        if self._state_gauge is not None:
            self._state_gauge.set(0, replica=str(index), state=from_state)
            self._state_gauge.set(1, replica=str(index), state=to_state)

    def _set_state_gauge(self, index: int, state: str) -> None:
        if self._state_gauge is None:
            return
        for name in (HEALTHY, SUSPECT, DEAD, PROBING):
            self._state_gauge.set(1 if name == state else 0, replica=str(index), state=name)

    def export_health(self) -> None:
        """Refresh point-in-time health gauges (EWMA, consecutive
        errors, one-hot state, and a ``kv_replica_info`` info-gauge
        carrying the last error as a label). Called before rendering
        the registry so the exposition reflects the current snapshot."""
        if self.registry is None:
            return
        info = self.registry.gauge(
            "kv_replica_info",
            "Per-replica health snapshot (state and last error as labels).",
            labels=("replica", "state", "last_error"),
        )
        for stale in self._exported_info:
            info.set(0, **stale)
        self._exported_info = []
        for health in self.health:
            self._set_state_gauge(health.index, health.state)
            self._ewma_gauge.set(health.ewma_latency_s or 0.0, replica=str(health.index))
            self._errors_gauge.set(health.consecutive_errors, replica=str(health.index))
            labels = {
                "replica": str(health.index),
                "state": health.state,
                "last_error": (health.last_error or "")[:120],
            }
            info.set(1, **labels)
            self._exported_info.append(labels)

    # -- placement ------------------------------------------------------
    def owners(self, key: str) -> Tuple[int, ...]:
        """The ``replication_factor`` replicas that own ``key``, most
        preferred first."""
        cached = self._owners_cache.get(key)
        if cached is None:
            order = rendezvous_order(key, len(self.replicas), seed=self.seed)
            cached = tuple(order[: self.replication_factor])
            self._owners_cache[key] = cached
        return cached

    # -- write path -----------------------------------------------------
    def put(self, key: str, value: bytes) -> None:
        if not isinstance(key, str):
            raise TypeError(f"keys must be str, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        value = bytes(value)
        owners = self.owners(key)
        succeeded = 0
        last_error: Optional[BaseException] = None
        for index in owners:
            try:
                self.replicas[index].put(key, value)
            except Exception as error:
                last_error = error
                with self._lock:
                    self.health[index].record_failure(repr(error))
            else:
                succeeded += 1
        if succeeded == 0:
            raise AllReplicasFailedError(
                f"write of {key!r} failed on all {len(owners)} owners"
            ) from last_error
        self._crc[key] = zlib.crc32(value)

    # -- read path ------------------------------------------------------
    def get(self, key: str) -> bytes:
        started = self._clock()
        try:
            value = self._get(key)
        finally:
            if self._read_seconds is not None:
                self._read_seconds.observe(self._clock() - started, store="replicated")
                self._reads_total.inc(store="replicated")
        return value

    def _get(self, key: str) -> bytes:
        self._maybe_background_anti_entropy()
        owners = self.owners(key)
        now = self._clock()
        with self._lock:
            candidates = [i for i in owners if self.health[i].available(now)]
        if not candidates:
            raise AllReplicasFailedError(
                f"no live replica holds {key!r} (owners {list(owners)} all dead)"
            )
        threshold = None
        if len(candidates) > 1:
            with self._lock:
                threshold = self.health[candidates[0]].hedge_threshold()
        if threshold is not None and self.config.concurrent_hedge:
            return self._hedged_get(key, candidates, threshold)
        return self._sequential_get(key, candidates, threshold)

    def _sequential_get(
        self,
        key: str,
        candidates: Sequence[int],
        threshold: Optional[float] = None,
        position_offset: int = 0,
    ) -> bytes:
        last_error: Optional[BaseException] = None
        misses = 0
        for slot, index in enumerate(candidates):
            position = slot + position_offset
            started = self._clock()
            try:
                value = self._read_replica(index, key)
            except _ReplicaMiss:
                misses += 1
                continue
            except self._open_errors:
                with self._lock:
                    self.breaker_skips += 1
                    self._count_replica_read(index, "skip")
                continue
            except Exception as error:
                last_error = error
                continue
            if position == 0 and threshold is not None:
                if self._clock() - started > threshold:
                    with self._lock:
                        self.hedge_overruns += 1
                        if self._overruns_total is not None:
                            self._overruns_total.inc()
            if position > 0:
                with self._lock:
                    self.failovers += 1
                    if self._failovers_total is not None:
                        self._failovers_total.inc()
            return value
        if last_error is None and misses == len(candidates):
            raise KeyError(key)
        raise AllReplicasFailedError(
            f"all {len(candidates)} candidate replicas failed reading {key!r}"
        ) from last_error

    def _hedged_get(self, key: str, candidates: Sequence[int], threshold: float) -> bytes:
        """Race the primary against a backup fired after ``threshold``."""
        executor = self._ensure_executor()
        primary_index = candidates[0]
        started = self._clock()
        primary = executor.submit(self._read_replica, primary_index, key, False)
        try:
            value = primary.result(timeout=threshold)
        except _FutureTimeout:
            pass
        except Exception:
            # Primary failed outright (error, miss, or open breaker):
            # plain failover over the remaining owners.
            return self._sequential_get(key, candidates[1:], None, position_offset=1)
        else:
            # Un-hedged fast path: the sample is uncensored, so it may
            # feed the hedge reservoir (record_sample=False above only
            # skipped the in-thread recording).
            with self._lock:
                self.health[primary_index].latencies.add(self._clock() - started)
            return value
        with self._lock:
            self.hedged_reads += 1
            self.hedge_overruns += 1
            if self._hedged_total is not None:
                self._hedged_total.inc()
            if self._overruns_total is not None:
                self._overruns_total.inc()
        backup = executor.submit(self._read_replica, candidates[1], key, True)
        pending = {primary, backup}
        last_error: Optional[BaseException] = None
        while pending:
            done, pending = _wait_futures(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    return future.result()
                except Exception as error:  # noqa: PERF203 - tiny set
                    last_error = error
        remainder = candidates[2:]
        if remainder:
            return self._sequential_get(key, remainder, None, position_offset=2)
        raise AllReplicasFailedError(
            f"hedged read of {key!r} failed on primary and backup"
        ) from last_error

    def _read_replica(self, index: int, key: str, record_sample: bool = True) -> bytes:
        """One verified read of one replica, with health + breaker accounting.

        Raises :class:`_ReplicaMiss` (without penalising health) when
        the replica simply lacks the key; other failures count against
        both the replica's health and its breaker.
        """
        replica = self.replicas[index]
        try:
            present = replica.contains(key)
        except Exception:
            present = True  # let the real read produce the real error
        if not present:
            raise _ReplicaMiss(key)
        breaker = self._breakers[index] if self._breakers is not None else None
        health = self.health[index]
        started = self._clock()

        def verified_read() -> bytes:
            value = replica.get(key)
            expected = self._crc.get(key)
            if (
                self.config.verify_crc
                and expected is not None
                and zlib.crc32(value) != expected
            ):
                raise CorruptStoreError(
                    f"replica {index}: ledger checksum mismatch for {key!r}"
                )
            return value

        try:
            value = breaker.call(verified_read) if breaker is not None else verified_read()
        except self._open_errors:
            raise
        except CorruptStoreError as error:
            with self._lock:
                self.corrupt_reads += 1
                health.quarantine(str(error))
                self._count_replica_read(index, "corrupt")
                if self._corrupt_total is not None:
                    self._corrupt_total.inc(replica=str(index))
            raise
        except Exception as error:
            with self._lock:
                health.record_failure(repr(error))
                self._count_replica_read(index, "error")
            raise
        elapsed = self._clock() - started
        with self._lock:
            health.record_success(elapsed, record_sample=record_sample)
            self._count_replica_read(index, "ok")
        return value

    def _count_replica_read(self, index: int, outcome: str) -> None:
        if self._replica_reads is not None:
            self._replica_reads.inc(replica=str(index), outcome=outcome)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(2, len(self.replicas)),
                    thread_name_prefix="kv-hedge",
                )
            return self._executor

    # -- anti-entropy ---------------------------------------------------
    def anti_entropy(
        self, repair: bool = True, keys: Optional[Sequence[str]] = None
    ) -> AntiEntropyReport:
        """Compare per-owner checksums and read-repair divergence.

        The ledger CRC (recorded at ``put``) is the source of truth;
        for keys written out-of-band the majority checksum arbitrates
        (a tie is unrepairable — there is no quorum to trust).
        Unreachable replicas are skipped, not repaired: failover
        already covers them, and rewriting through a faulty transport
        could spread damage. Replicas that were quarantined and then
        repaired are nudged back to probing.
        """
        report = AntiEntropyReport()
        resurrected: set = set()
        for key in keys if keys is not None else self.keys():
            report.keys_checked += 1
            owners = self.owners(key)
            observed: Dict[int, object] = {}
            for index in owners:
                replica = self.replicas[index]
                try:
                    if not replica.contains(key):
                        observed[index] = _MISSING
                        continue
                    observed[index] = zlib.crc32(replica.get(key))
                except KeyError:
                    observed[index] = _MISSING
                except CorruptStoreError:
                    observed[index] = _CORRUPT
                except Exception:
                    observed[index] = _UNREACHABLE
            expected = self._crc.get(key)
            tied = False
            if expected is None:
                votes = Counter(c for c in observed.values() if isinstance(c, int))
                ranked = votes.most_common(2)
                if ranked and (len(ranked) == 1 or ranked[0][1] > ranked[1][1]):
                    expected = ranked[0][0]
                elif len(ranked) > 1:
                    tied = True  # divergent copies, no quorum to trust
            bad: List[Tuple[int, str]] = []
            for index, checksum in observed.items():
                if checksum is _UNREACHABLE:
                    continue
                if checksum is _MISSING:
                    bad.append((index, "missing"))
                elif checksum is _CORRUPT:
                    bad.append((index, "corrupt"))
                elif expected is not None and checksum != expected:
                    bad.append((index, "divergent"))
                elif tied:
                    bad.append((index, "divergent"))
            if not bad:
                continue
            report.divergent.extend((key, index, kind) for index, kind in bad)
            if not repair:
                continue
            good_value: Optional[bytes] = None
            if expected is not None:
                for index, checksum in observed.items():
                    if checksum != expected:
                        continue
                    try:
                        candidate = self.replicas[index].get(key)
                    except Exception:
                        continue
                    if zlib.crc32(candidate) == expected:
                        good_value = candidate
                        break
            if good_value is None:
                report.unrepairable += len(bad)
                continue
            for index, _kind in bad:
                try:
                    self.replicas[index].put(key, good_value)
                except Exception:
                    report.unrepairable += 1
                else:
                    report.repaired += 1
                    resurrected.add(index)
            if expected is not None and key not in self._crc:
                self._crc[key] = expected
        with self._lock:
            for index in sorted(resurrected):
                self.health[index].mark_probing("anti-entropy repair")
            if report.repaired and self._repairs_total is not None:
                self._repairs_total.inc(report.repaired)
        return report

    def _maybe_background_anti_entropy(self) -> None:
        """Piggyback an incremental repair pass on reads when configured."""
        interval = self.config.anti_entropy_interval_s
        if interval is None or self._in_anti_entropy:
            return
        now = self._clock()
        if now - self._last_anti_entropy < interval:
            return
        self._last_anti_entropy = now
        all_keys = self.keys()
        if not all_keys:
            return
        batch = min(self.config.anti_entropy_batch, len(all_keys))
        start = self._anti_entropy_cursor % len(all_keys)
        chunk = [all_keys[(start + i) % len(all_keys)] for i in range(batch)]
        self._anti_entropy_cursor = (start + batch) % len(all_keys)
        self._in_anti_entropy = True
        try:
            self.anti_entropy(repair=True, keys=chunk)
        finally:
            self._in_anti_entropy = False

    # -- KVStore surface ------------------------------------------------
    def contains(self, key: str) -> bool:
        if key in self._crc:
            return True
        for index in self.owners(key):
            try:
                if self.replicas[index].contains(key):
                    return True
            except Exception:
                continue
        return False

    def keys(self) -> List[str]:
        if self._crc:
            return list(self._crc.keys())
        merged: Dict[str, None] = {}
        for replica in self.replicas:
            try:
                for key in replica.keys():
                    merged.setdefault(key, None)
            except Exception:
                continue
        return list(merged.keys())

    def finalize(self) -> None:
        """Finalize any finalizable backing store (walking wrapper
        chains), so replicated-over-:class:`MmapKVStore` builds work
        with :class:`~repro.storage.loader.GraphStore.save`."""
        for replica in self.replicas:
            target = replica
            while target is not None:
                finalize = getattr(target, "finalize", None)
                if callable(finalize):
                    finalize()
                    break
                target = getattr(target, "store", None)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for replica in self.replicas:
            replica.close()

    # -- reporting ------------------------------------------------------
    def describe(self) -> str:
        """Human-readable health table (the ``--health`` epilogue)."""
        lines = [
            f"replicated store: {len(self.replicas)} replicas, "
            f"rf={self.replication_factor}, "
            f"hedge q={self.config.hedge_quantile:g} "
            f"({'concurrent' if self.config.concurrent_hedge else 'deterministic'})",
            f"reads: hedged={self.hedged_reads} overruns={self.hedge_overruns} "
            f"failovers={self.failovers} corrupt={self.corrupt_reads} "
            f"breaker_skips={self.breaker_skips}",
        ]
        for health in self.health:
            ewma = (
                f"{health.ewma_latency_s * 1000:.3f}ms"
                if health.ewma_latency_s is not None
                else "n/a"
            )
            lines.append(
                f"replica {health.index}: state={health.state:8s} ewma={ewma:>10s} "
                f"ok={health.reads_ok} errors={health.reads_error} "
                f"consecutive={health.consecutive_errors} "
                f"last_error={health.last_error or '-'}"
            )
            path = " -> ".join(health.state_path())
            lines.append(f"  path: {path}")
        return "\n".join(lines)
