"""Graph data loaders on top of the KV-store (Sec. 3.3.3).

:class:`GraphStore` serialises a :class:`~repro.graph.hetero.HeteroGraph`
into a KV-store (one entry per node's feature row plus the structural
arrays) and loads it back. :class:`WorkerLoader` is the per-worker data
loader: in the multi-handle design each worker owns an independent
mmap handle, which is the optimisation that removed the paper's
data-loading bottleneck (Figures 12 → 13).
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

import numpy as np

from ..graph.hetero import HeteroGraph
from .kvstore import KVStore, MmapKVStore, _MmapReader


def _encode_array(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def _decode_array(blob: bytes) -> np.ndarray:
    return np.load(io.BytesIO(blob), allow_pickle=False)


class GraphStore:
    """(De)serialise a heterogeneous graph through a KV-store."""

    STRUCT_KEYS = ("node_type", "edge_src", "edge_dst", "edge_type", "labels")

    def __init__(self, store: KVStore) -> None:
        self.store = store

    def save(self, graph: HeteroGraph) -> None:
        """Write structure arrays and one feature row per node."""
        for key in self.STRUCT_KEYS:
            self.store.put(f"struct/{key}", _encode_array(getattr(graph, key)))
        self.store.put(
            "struct/meta",
            _encode_array(np.array([graph.num_nodes, graph.feature_dim], dtype=np.int64)),
        )
        for node in range(graph.num_nodes):
            self.store.put(f"feat/{node}", _encode_array(graph.txn_features[node]))
        # Duck-typed: MmapKVStore needs its index footer written, and
        # ReplicatedKVStore forwards to any finalizable replicas.
        finalize = getattr(self.store, "finalize", None)
        if callable(finalize):
            finalize()

    def load(self) -> HeteroGraph:
        """Reassemble the full graph, round-tripping the saved dtype."""
        arrays = {key: _decode_array(self.store.get(f"struct/{key}")) for key in self.STRUCT_KEYS}
        meta = _decode_array(self.store.get("struct/meta"))
        num_nodes, feature_dim = int(meta[0]), int(meta[1])
        features: Optional[np.ndarray] = None
        for node in range(num_nodes):
            row = _decode_array(self.store.get(f"feat/{node}"))
            if features is None:
                features = np.zeros((num_nodes, feature_dim), dtype=row.dtype)
            features[node] = row
        if features is None:
            features = np.zeros((num_nodes, feature_dim))
        return HeteroGraph(txn_features=features, **arrays)

    def load_features(self, nodes: Sequence[int]) -> np.ndarray:
        """Fetch feature rows through the shared store handle."""
        rows = [_decode_array(self.store.get(f"feat/{int(node)}")) for node in nodes]
        return np.stack(rows) if rows else np.zeros((0, 0))


class WorkerLoader:
    """Per-worker feature loader.

    With ``private_handle=True`` (LMDB-style) the loader opens its own
    mmap reader; otherwise every call goes through the store's shared,
    possibly lock-guarded handle (LevelDB-style).
    """

    def __init__(self, store: KVStore, private_handle: bool = True) -> None:
        self.store = store
        self._reader: Optional[_MmapReader] = None
        if private_handle and isinstance(store, MmapKVStore) and not store.single_handle:
            self._reader = store.reader()

    def load_features(self, nodes: Sequence[int]) -> np.ndarray:
        rows: List[np.ndarray] = []
        for node in nodes:
            key = f"feat/{int(node)}"
            blob = self._reader.get(key) if self._reader is not None else self.store.get(key)
            rows.append(_decode_array(blob))
        return np.stack(rows) if rows else np.zeros((0, 0))

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None

    def __enter__(self) -> "WorkerLoader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
