"""repro.storage — KV-store substrate for graph data loading."""

from .kvstore import InMemoryKVStore, KVStore, MmapKVStore
from .loader import GraphStore, WorkerLoader

__all__ = [
    "KVStore",
    "InMemoryKVStore",
    "MmapKVStore",
    "GraphStore",
    "WorkerLoader",
]
