"""repro.storage — KV-store substrate for graph data loading."""

from .kvstore import (
    CorruptStoreError,
    InMemoryKVStore,
    KVStore,
    MmapKVStore,
    propagate_instrument,
)
from .loader import GraphStore, WorkerLoader
from .replicated import (
    AllReplicasFailedError,
    AntiEntropyReport,
    ReplicaHealth,
    ReplicatedConfig,
    ReplicatedKVStore,
    rendezvous_order,
)

__all__ = [
    "KVStore",
    "CorruptStoreError",
    "InMemoryKVStore",
    "MmapKVStore",
    "GraphStore",
    "WorkerLoader",
    "propagate_instrument",
    "AllReplicasFailedError",
    "AntiEntropyReport",
    "ReplicaHealth",
    "ReplicatedConfig",
    "ReplicatedKVStore",
    "rendezvous_order",
]
