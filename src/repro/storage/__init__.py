"""repro.storage — KV-store substrate for graph data loading."""

from .kvstore import CorruptStoreError, InMemoryKVStore, KVStore, MmapKVStore
from .loader import GraphStore, WorkerLoader

__all__ = [
    "KVStore",
    "CorruptStoreError",
    "InMemoryKVStore",
    "MmapKVStore",
    "GraphStore",
    "WorkerLoader",
]
