"""Lightweight KV-stores for graph data (Sec. 3.3.3, Figures 12/13).

The paper stores all graph-related information in a KV-store. Its
first implementation used LevelDB, whose single-threaded access became
the system bottleneck (45 min/epoch on eBay-large); switching to LMDB,
which supports many concurrent memory-mapped readers, cut data loading
to ~1 min/epoch. We reproduce both designs:

* :class:`InMemoryKVStore` — dict-backed reference implementation.
* :class:`MmapKVStore` — append-only data file + in-memory key index,
  read through ``mmap``. Opened in one of two modes:

  - ``single_handle=True`` (the LevelDB-like design): every reader
    shares one handle guarded by a mutex, so concurrent workers
    serialise;
  - ``single_handle=False`` (the LMDB-like design): each worker opens
    its **own** handle via :meth:`reader` and reads without locking
    (the file is immutable once written).

Values are arbitrary bytes; :mod:`repro.storage.loader` layers numpy
(de)serialisation on top.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
from typing import Dict, Iterator, List, Optional, Tuple

_LENGTH_FORMAT = "<Q"
_LENGTH_BYTES = struct.calcsize(_LENGTH_FORMAT)


class KVStore:
    """Abstract byte-oriented key-value store."""

    def put(self, key: str, value: bytes) -> None:
        raise NotImplementedError

    def get(self, key: str) -> bytes:
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def keys(self) -> List[str]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        return None

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InMemoryKVStore(KVStore):
    """Dict-backed store for tests and small graphs."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        self._data[key] = bytes(value)

    def get(self, key: str) -> bytes:
        if key not in self._data:
            raise KeyError(key)
        return self._data[key]

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        return list(self._data.keys())

    def delete(self, key: str) -> None:
        self._data.pop(key, None)


class _MmapReader:
    """One independent memory-mapped read handle."""

    def __init__(self, path: str, index: Dict[str, Tuple[int, int]]) -> None:
        self._file = open(path, "rb")
        size = os.path.getsize(path)
        self._map = mmap.mmap(self._file.fileno(), size, access=mmap.ACCESS_READ) if size else None
        self._index = index

    def get(self, key: str) -> bytes:
        if key not in self._index:
            raise KeyError(key)
        if self._map is None:
            raise KeyError(key)
        offset, length = self._index[key]
        return self._map[offset : offset + length]

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
        self._file.close()


class MmapKVStore(KVStore):
    """File-backed append-only KV-store with mmap readers.

    Writing happens in a build phase (``put``); reading requires
    :meth:`finalize` (writes are flushed and the file becomes
    immutable), mirroring the paper's one-time graph ingestion.
    """

    def __init__(self, path: str, single_handle: bool = False) -> None:
        self.path = path
        self.single_handle = single_handle
        self._index: Dict[str, Tuple[int, int]] = {}
        self._write_file = open(path, "wb")
        self._offset = 0
        self._finalized = False
        self._shared_reader: Optional[_MmapReader] = None
        self._lock = threading.Lock()

    # -- write phase ----------------------------------------------------
    def put(self, key: str, value: bytes) -> None:
        if self._finalized:
            raise RuntimeError("store is finalized; writes are not allowed")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        self._write_file.write(value)
        self._index[key] = (self._offset, len(value))
        self._offset += len(value)

    def finalize(self) -> None:
        """Flush writes and switch to read mode."""
        if self._finalized:
            return
        self._write_file.flush()
        self._write_file.close()
        self._finalized = True
        self._shared_reader = _MmapReader(self.path, self._index)

    # -- read phase -------------------------------------------------------
    def get(self, key: str) -> bytes:
        if not self._finalized:
            raise RuntimeError("finalize() the store before reading")
        if self.single_handle:
            # LevelDB-like: one handle, all readers serialise on a lock.
            with self._lock:
                return self._shared_reader.get(key)
        return self._shared_reader.get(key)

    def reader(self) -> _MmapReader:
        """A private read handle (the LMDB-like multi-loader design).

        Raises in single-handle mode: that is precisely what the
        LevelDB-style deployment could not provide.
        """
        if not self._finalized:
            raise RuntimeError("finalize() the store before reading")
        if self.single_handle:
            raise RuntimeError("single-handle store cannot open per-worker readers")
        return _MmapReader(self.path, self._index)

    def contains(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> List[str]:
        return list(self._index.keys())

    def items(self) -> Iterator[Tuple[str, bytes]]:
        for key in self._index:
            yield key, self.get(key)

    def close(self) -> None:
        if not self._finalized:
            self._write_file.close()
            self._finalized = True
        if self._shared_reader is not None:
            self._shared_reader.close()
            self._shared_reader = None
