"""Lightweight KV-stores for graph data (Sec. 3.3.3, Figures 12/13).

The paper stores all graph-related information in a KV-store. Its
first implementation used LevelDB, whose single-threaded access became
the system bottleneck (45 min/epoch on eBay-large); switching to LMDB,
which supports many concurrent memory-mapped readers, cut data loading
to ~1 min/epoch. We reproduce both designs:

* :class:`InMemoryKVStore` — dict-backed reference implementation.
* :class:`MmapKVStore` — append-only data file + in-memory key index,
  read through ``mmap``. Opened in one of two modes:

  - ``single_handle=True`` (the LevelDB-like design): every reader
    shares one handle guarded by a mutex, so concurrent workers
    serialise;
  - ``single_handle=False`` (the LMDB-like design): each worker opens
    its **own** handle via :meth:`reader` and reads without locking
    (the file is immutable once written).

Durability: :meth:`MmapKVStore.finalize` appends a checksummed index
footer, so a finalized store survives process restarts and is
reopenable with :meth:`MmapKVStore.open` — no in-memory state needed.
The on-disk layout is::

    [value bytes ...][index blob (JSON)][footer]
    footer = magic(8s) | index_offset(Q) | index_length(Q) | index_crc32(I)

Each index entry carries a per-value CRC32, verified on every read;
truncated (mid-crash) files fail the footer checks and corrupt values
fail the per-value check, both surfacing as :class:`CorruptStoreError`
rather than garbage bytes.

Values are arbitrary bytes; :mod:`repro.storage.loader` layers numpy
(de)serialisation on top.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import time
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

_LENGTH_FORMAT = "<Q"
_LENGTH_BYTES = struct.calcsize(_LENGTH_FORMAT)

_FOOTER_MAGIC = b"XFKV0001"
_FOOTER_FORMAT = "<8sQQI"  # magic, index_offset, index_length, index_crc32
_FOOTER_BYTES = struct.calcsize(_FOOTER_FORMAT)
_INDEX_FORMAT_NAME = "xfkv-index-v1"


class CorruptStoreError(RuntimeError):
    """A store file is truncated, unfinalized, or fails a checksum."""


def propagate_instrument(store, registry) -> None:
    """Instrument ``store`` and every store it wraps.

    Wrapper stores (RetryingKVStore, the fault injectors) expose their
    wrapped store as ``.store``; this walks that chain calling
    ``instrument(registry)`` on every layer that supports it, so read
    metrics survive *any* composition order — instrumenting
    ``Retrying(Flaky(Mmap))`` reaches the mmap store even though the
    flaky layer in between has no metrics of its own. Layers without
    an ``instrument`` method are skipped, not errors.
    """
    seen = set()
    target = store
    while target is not None and id(target) not in seen:
        seen.add(id(target))
        instrument = getattr(target, "instrument", None)
        if callable(instrument):
            instrument(registry)
        target = getattr(target, "store", None)


class KVStore:
    """Abstract byte-oriented key-value store."""

    def put(self, key: str, value: bytes) -> None:
        raise NotImplementedError

    def get(self, key: str) -> bytes:
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def keys(self) -> List[str]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        return None

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InMemoryKVStore(KVStore):
    """Dict-backed store for tests and small graphs."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(key, str):
            raise TypeError(f"keys must be str, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        self._data[key] = bytes(value)

    def get(self, key: str) -> bytes:
        if key not in self._data:
            raise KeyError(key)
        return self._data[key]

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        return list(self._data.keys())

    def delete(self, key: str) -> None:
        self._data.pop(key, None)


class _MmapReader:
    """One independent memory-mapped read handle.

    The index maps keys to ``(offset, length, crc32)``; every read is
    checksum-verified unless ``verify=False``.
    """

    def __init__(
        self,
        path: str,
        index: Dict[str, Tuple[int, int, int]],
        verify: bool = True,
    ) -> None:
        self._file = open(path, "rb")
        size = os.path.getsize(path)
        self._map = mmap.mmap(self._file.fileno(), size, access=mmap.ACCESS_READ) if size else None
        self._index = index
        self._verify = verify

    def get(self, key: str) -> bytes:
        if key not in self._index:
            raise KeyError(key)
        if self._map is None:
            raise KeyError(key)
        offset, length, crc = self._index[key]
        value = self._map[offset : offset + length]
        if self._verify and zlib.crc32(value) != crc:
            raise CorruptStoreError(f"checksum mismatch reading key {key!r}")
        return value

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
        self._file.close()

    def __enter__(self) -> "_MmapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _read_index(path: str) -> Tuple[Dict[str, Tuple[int, int, int]], int]:
    """Validate the footer of a finalized store; return (index, data_length).

    Raises :class:`CorruptStoreError` on any inconsistency — missing or
    garbled footer (unfinalized or truncated file), index region that
    does not match the file size, or a failed index checksum.
    """
    size = os.path.getsize(path)
    if size < _FOOTER_BYTES:
        raise CorruptStoreError(f"{path}: file too small to hold a footer (truncated?)")
    with open(path, "rb") as handle:
        handle.seek(size - _FOOTER_BYTES)
        magic, index_offset, index_length, index_crc = struct.unpack(
            _FOOTER_FORMAT, handle.read(_FOOTER_BYTES)
        )
        if magic != _FOOTER_MAGIC:
            raise CorruptStoreError(
                f"{path}: footer magic missing — store was never finalized or the file is truncated"
            )
        if index_offset + index_length + _FOOTER_BYTES != size:
            raise CorruptStoreError(f"{path}: index region inconsistent with file size")
        handle.seek(index_offset)
        blob = handle.read(index_length)
    if len(blob) != index_length or zlib.crc32(blob) != index_crc:
        raise CorruptStoreError(f"{path}: index checksum mismatch")
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptStoreError(f"{path}: index is not valid JSON: {error}") from error
    if payload.get("format") != _INDEX_FORMAT_NAME:
        raise CorruptStoreError(f"{path}: unknown index format {payload.get('format')!r}")
    data_length = int(payload["data_length"])
    index: Dict[str, Tuple[int, int, int]] = {}
    for key, offset, length, crc in payload["entries"]:
        offset, length = int(offset), int(length)
        if offset + length > data_length:
            raise CorruptStoreError(f"{path}: entry {key!r} points outside the data region")
        index[str(key)] = (offset, length, int(crc))
    return index, data_length


class MmapKVStore(KVStore):
    """File-backed append-only KV-store with mmap readers.

    Writing happens in a build phase (``put``); reading requires
    :meth:`finalize` (writes are flushed, a checksummed index footer is
    appended, and the file becomes immutable), mirroring the paper's
    one-time graph ingestion. A finalized store can be reopened from
    disk in a fresh process with :meth:`open`.
    """

    def __init__(
        self,
        path: str,
        single_handle: bool = False,
        overwrite: bool = False,
        verify: bool = True,
    ) -> None:
        if os.path.exists(path) and not overwrite:
            raise FileExistsError(
                f"{path} already exists; pass overwrite=True to replace it "
                "or MmapKVStore.open() to read it"
            )
        self.path = path
        self.single_handle = single_handle
        self.verify = verify
        self._index: Dict[str, Tuple[int, int, int]] = {}
        self._write_file = open(path, "wb")
        self._offset = 0
        self._finalized = False
        self._shared_reader: Optional[_MmapReader] = None
        self._lock = threading.Lock()
        self._reads_total = None
        self._read_seconds = None

    @classmethod
    def open(
        cls,
        path: str,
        single_handle: bool = False,
        verify: bool = True,
    ) -> "MmapKVStore":
        """Reopen a finalized store from disk — no in-memory index needed.

        Validates the footer and index checksum; raises
        :class:`CorruptStoreError` for truncated or unfinalized files
        and :class:`FileNotFoundError` if the path does not exist.
        """
        if not os.path.exists(path):
            raise FileNotFoundError(f"no KV-store file at {path}")
        index, data_length = _read_index(path)
        store = cls.__new__(cls)
        store.path = path
        store.single_handle = single_handle
        store.verify = verify
        store._index = index
        store._write_file = None
        store._offset = data_length
        store._finalized = True
        store._shared_reader = _MmapReader(path, index, verify=verify)
        store._lock = threading.Lock()
        store._reads_total = None
        store._read_seconds = None
        return store

    def instrument(self, registry) -> "MmapKVStore":
        """Attach read counters + latency histograms to a
        :class:`repro.obs.registry.MetricsRegistry`; metrics share the
        ``kv_reads_total`` / ``kv_read_seconds`` family under
        ``store="mmap"``. Returns self for chaining."""
        self._reads_total = registry.counter(
            "kv_reads_total", "KV feature reads issued.", labels=("store",)
        )
        self._read_seconds = registry.histogram(
            "kv_read_seconds",
            "Latency of KV feature reads (per chunk, retries included).",
            labels=("store",),
        )
        return self

    # -- write phase ----------------------------------------------------
    def put(self, key: str, value: bytes) -> None:
        if self._finalized:
            raise RuntimeError("store is finalized; writes are not allowed")
        if not isinstance(key, str):
            # Catch non-str keys here rather than letting finalize()
            # fail later with an opaque JSON serialisation error.
            raise TypeError(f"keys must be str, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        value = bytes(value)
        self._write_file.write(value)
        self._index[key] = (self._offset, len(value), zlib.crc32(value))
        self._offset += len(value)

    def finalize(self) -> None:
        """Flush writes, append the checksummed index footer, and
        switch to read mode."""
        if self._finalized:
            return
        blob = json.dumps(
            {
                "format": _INDEX_FORMAT_NAME,
                "data_length": self._offset,
                "entries": [
                    [key, offset, length, crc]
                    for key, (offset, length, crc) in self._index.items()
                ],
            }
        ).encode("utf-8")
        self._write_file.write(blob)
        self._write_file.write(
            struct.pack(_FOOTER_FORMAT, _FOOTER_MAGIC, self._offset, len(blob), zlib.crc32(blob))
        )
        self._write_file.flush()
        os.fsync(self._write_file.fileno())
        self._write_file.close()
        self._finalized = True
        self._shared_reader = _MmapReader(self.path, self._index, verify=self.verify)

    # -- read phase -------------------------------------------------------
    def get(self, key: str) -> bytes:
        if not self._finalized:
            raise RuntimeError("finalize() the store before reading")
        if self._read_seconds is not None:
            started = time.perf_counter()
            try:
                return self._get_raw(key)
            finally:
                self._read_seconds.observe(time.perf_counter() - started, store="mmap")
                self._reads_total.inc(store="mmap")
        return self._get_raw(key)

    def _get_raw(self, key: str) -> bytes:
        if self.single_handle:
            # LevelDB-like: one handle, all readers serialise on a lock.
            with self._lock:
                return self._shared_reader.get(key)
        return self._shared_reader.get(key)

    def reader(self) -> _MmapReader:
        """A private read handle (the LMDB-like multi-loader design).

        Raises in single-handle mode: that is precisely what the
        LevelDB-style deployment could not provide.
        """
        if not self._finalized:
            raise RuntimeError("finalize() the store before reading")
        if self.single_handle:
            raise RuntimeError("single-handle store cannot open per-worker readers")
        return _MmapReader(self.path, self._index, verify=self.verify)

    def contains(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> List[str]:
        return list(self._index.keys())

    def items(self) -> Iterator[Tuple[str, bytes]]:
        for key in self._index:
            yield key, self.get(key)

    def close(self) -> None:
        if not self._finalized:
            # Closed mid-build: no footer is written, so the file is
            # deliberately left unreadable (a crash-torn store).
            self._write_file.close()
            self._finalized = True
        if self._shared_reader is not None:
            self._shared_reader.close()
            self._shared_reader = None
