"""Simulated distributed data-parallel training (Sec. 3.3).

The paper's distributed xFraud detector+ partitions the graph with PIC
into 128 subgraphs, groups them into κ balanced worker groups, and
trains one model replica per worker with DDP gradient averaging. This
module reproduces that architecture inside one process:

* :func:`make_worker_partitions` — PIC partitioning + footnote-3
  grouping; each worker receives the subgraph induced on its group, so
  its field of neighbours is **restrained** exactly as on a real
  cluster (the cause of the paper's 16-machine AUC drop);
* :class:`DistributedTrainer` — per epoch, every worker runs
  forward/backward on its own partition, gradients are averaged
  following the DDP protocol, and the single set of parameters is
  updated (replicas therefore stay identical). Simulated wall-clock
  per epoch is the **maximum** over worker compute times, which is
  what a synchronous cluster would observe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..graph.hetero import HeteroGraph
from ..graph.partition import group_partitions, pic_partition
from ..graph.sampling import batched
from .metrics import accuracy, average_precision, roc_auc
from .trainer import TrainConfig


@dataclass
class WorkerPartition:
    """One worker's shard: induced subgraph + local labeled nodes."""

    worker_id: int
    graph: HeteroGraph
    original_ids: np.ndarray
    train_local: np.ndarray

    @property
    def num_train(self) -> int:
        return len(self.train_local)


def make_worker_partitions(
    graph: HeteroGraph,
    train_nodes: Sequence[int],
    num_workers: int,
    num_partitions: int = 128,
    seed: int = 0,
) -> List[WorkerPartition]:
    """PIC partition → κ groups → per-worker induced subgraphs."""
    train_nodes = np.asarray(train_nodes, dtype=np.int64)
    num_partitions = min(num_partitions, graph.num_nodes)
    partition_ids = pic_partition(graph, num_partitions, seed=seed)
    groups = group_partitions(partition_ids, num_workers)

    train_mask = np.zeros(graph.num_nodes, dtype=bool)
    train_mask[train_nodes] = True

    workers: List[WorkerPartition] = []
    for worker_id, nodes in enumerate(groups):
        subgraph, original_ids = graph.subgraph(nodes)
        local_train = np.flatnonzero(train_mask[original_ids])
        workers.append(
            WorkerPartition(
                worker_id=worker_id,
                graph=subgraph,
                original_ids=original_ids,
                train_local=local_train,
            )
        )
    return workers


@dataclass
class DistributedEpoch:
    epoch: int
    loss: float
    wall_seconds: float
    sum_worker_seconds: float
    eval_auc: Optional[float] = None


@dataclass
class DistributedResult:
    history: List[DistributedEpoch] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def seconds_per_epoch(self) -> float:
        """Simulated synchronous wall-clock: mean over epochs of the
        slowest worker's time."""
        if not self.history:
            return 0.0
        return float(np.mean([e.wall_seconds for e in self.history]))

    def convergence_curve(self) -> List[Optional[float]]:
        """Per-epoch eval AUC (Figure 14)."""
        return [e.eval_auc for e in self.history]


class DistributedTrainer:
    """DDP-style synchronous training over simulated workers."""

    def __init__(
        self,
        model,
        workers: List[WorkerPartition],
        config: Optional[TrainConfig] = None,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker partition")
        self.model = model
        self.workers = workers
        self.config = config or TrainConfig()
        self.optimizer = nn.AdamW(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _worker_gradients(self, worker: WorkerPartition) -> tuple:
        """Forward/backward on one worker; returns (grads, loss, secs).

        Runs over the worker's local labeled nodes in mini-batches and
        returns the mean gradient, matching what a DDP worker
        contributes per synchronisation round when accumulating.
        """
        started = time.perf_counter()
        if worker.num_train == 0:
            zero = [np.zeros_like(p.data) for p in self.model.parameters()]
            return zero, 0.0, time.perf_counter() - started

        nodes = worker.train_local
        if self.config.shuffle:
            nodes = self._rng.permutation(nodes)
        accumulated = [np.zeros_like(p.data) for p in self.model.parameters()]
        losses: List[float] = []
        batches = batched(nodes, self.config.batch_size)
        for batch in batches:
            self.model.zero_grad()
            loss = self.model.loss(worker.graph, batch)
            loss.backward()
            for slot, param in zip(accumulated, self.model.parameters()):
                if param.grad is not None:
                    slot += param.grad * (len(batch) / len(nodes))
            losses.append(loss.item())
        seconds = time.perf_counter() - started
        return accumulated, float(np.mean(losses)), seconds

    def train_epoch(self) -> DistributedEpoch:
        """One synchronous round: all workers compute, grads averaged."""
        self.model.train()
        worker_grads: List[List[np.ndarray]] = []
        worker_losses: List[float] = []
        worker_seconds: List[float] = []
        for worker in self.workers:
            grads, loss, seconds = self._worker_gradients(worker)
            worker_grads.append(grads)
            worker_losses.append(loss)
            worker_seconds.append(seconds)

        # DDP all-reduce: average gradients across workers, then one
        # optimiser step so every replica stays identical.
        self.model.zero_grad()
        num_workers = len(self.workers)
        for index, param in enumerate(self.model.parameters()):
            averaged = sum(grads[index] for grads in worker_grads) / num_workers
            param.grad = averaged
        nn.clip_grad_norm(self.model.parameters(), self.config.clip_norm)
        self.optimizer.step()

        return DistributedEpoch(
            epoch=0,
            loss=float(np.mean(worker_losses)),
            wall_seconds=float(np.max(worker_seconds)),
            sum_worker_seconds=float(np.sum(worker_seconds)),
        )

    def fit(
        self,
        eval_graph: Optional[HeteroGraph] = None,
        eval_nodes: Optional[Sequence[int]] = None,
    ) -> DistributedResult:
        """Train for the configured epochs, tracking convergence."""
        result = DistributedResult()
        for epoch in range(self.config.epochs):
            record = self.train_epoch()
            record.epoch = epoch
            if eval_graph is not None and eval_nodes is not None and len(eval_nodes):
                scores = self.model.predict_proba(eval_graph, eval_nodes)
                labels = eval_graph.labels[np.asarray(eval_nodes, dtype=np.int64)]
                try:
                    record.eval_auc = roc_auc(labels, scores)
                except ValueError:
                    record.eval_auc = None
            result.history.append(record)
        if eval_graph is not None and eval_nodes is not None and len(eval_nodes):
            nodes = np.asarray(eval_nodes, dtype=np.int64)
            scores = self.model.predict_proba(eval_graph, nodes)
            labels = eval_graph.labels[nodes]
            result.metrics = {
                "accuracy": accuracy(labels, scores),
                "ap": average_precision(labels, scores),
            }
            try:
                result.metrics["auc"] = roc_auc(labels, scores)
            except ValueError:
                result.metrics["auc"] = float("nan")
        return result
