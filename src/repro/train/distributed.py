"""Simulated distributed data-parallel training (Sec. 3.3).

The paper's distributed xFraud detector+ partitions the graph with PIC
into 128 subgraphs, groups them into κ balanced worker groups, and
trains one model replica per worker with DDP gradient averaging. This
module reproduces that architecture inside one process:

* :func:`make_worker_partitions` — PIC partitioning + footnote-3
  grouping; each worker receives the subgraph induced on its group, so
  its field of neighbours is **restrained** exactly as on a real
  cluster (the cause of the paper's 16-machine AUC drop);
* :class:`DistributedTrainer` — per epoch, every worker runs
  forward/backward on its own partition, gradients are averaged
  following the DDP protocol, and the single set of parameters is
  updated (replicas therefore stay identical). Simulated wall-clock
  per epoch is the **maximum** over worker compute times, which is
  what a synchronous cluster would observe.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..graph.hetero import HeteroGraph
from ..graph.partition import group_partitions, pic_partition
from ..storage.replicated import mix64
from ..util import batched
from ..obs.trace import Tracer, timed
from ..reliability.faults import CRASH, RECOVERY, STRAGGLER, FaultEvent, FaultPlan
from .metrics import accuracy, average_precision, roc_auc
from .trainer import TrainConfig


class NoSurvivorsError(RuntimeError):
    """Every worker failed in one synchronisation round.

    A synchronous all-reduce with zero contributors has no gradient to
    apply and no survivor set to renormalise over — silently skipping
    the step would hide a total outage from the caller. The elastic
    supervisor (:class:`~repro.train.elastic.ElasticTrainer`) catches
    this and rolls back to the last verified checkpoint instead.
    """


@dataclass
class WorkerPartition:
    """One worker's shard: induced subgraph + local labeled nodes."""

    worker_id: int
    graph: HeteroGraph
    original_ids: np.ndarray
    train_local: np.ndarray

    @property
    def num_train(self) -> int:
        return len(self.train_local)


def rendezvous_assign(
    partition_ids: np.ndarray, members: Sequence[int], seed: int = 0
) -> Dict[int, List[int]]:
    """HRW-assign graph partitions to worker *ids*: member -> partitions.

    Each partition goes to the member with the highest rendezvous score
    ``mix64(hash(partition) ^ mix64(seed ^ member))`` — the same hash
    family :mod:`repro.storage.replicated` uses for replica placement.
    Because the score hashes the member's *id* (not its position in
    the membership list), evicting a worker reassigns only the
    partitions it owned; every other partition keeps its owner. Ties
    break to the lowest member id.
    """
    members = sorted({int(m) for m in members})
    if not members:
        raise ValueError("need at least one member")
    assignment: Dict[int, List[int]] = {member: [] for member in members}
    for part in np.unique(np.asarray(partition_ids, dtype=np.int64)):
        part_hash = zlib.crc32(f"part-{int(part)}".encode("utf-8"))
        best = max(
            members,
            key=lambda member: (mix64(part_hash ^ mix64((seed & ((1 << 64) - 1)) ^ (member << 32))), -member),
        )
        assignment[best].append(int(part))
    return assignment


def make_worker_partitions(
    graph: HeteroGraph,
    train_nodes: Sequence[int],
    num_workers: Optional[int] = None,
    num_partitions: int = 128,
    seed: int = 0,
    members: Optional[Sequence[int]] = None,
    partition_ids: Optional[np.ndarray] = None,
) -> List[WorkerPartition]:
    """PIC partition → placement → per-worker induced subgraphs.

    Two placement modes share the PIC partitioning front end:

    * default (``members=None``) — the paper's footnote-3 grouping:
      partitions sorted by size fill ``num_workers`` balanced groups;
      worker ids are ``0..num_workers-1``;
    * rebalance-aware (``members=[ids]``) — each partition is owned by
      the rendezvous-hash winner among the given member ids
      (:func:`rendezvous_assign`), so the elastic supervisor can evict
      or readmit a worker and re-shard *deterministically*, moving only
      the partitions the membership change actually touches. A member
      that wins no partition receives an empty shard.

    ``partition_ids`` short-circuits the PIC step with a precomputed
    assignment (the supervisor computes it once and re-shards cheaply).
    """
    train_nodes = np.asarray(train_nodes, dtype=np.int64)
    if partition_ids is None:
        num_partitions = min(num_partitions, graph.num_nodes)
        partition_ids = pic_partition(graph, num_partitions, seed=seed)
    else:
        partition_ids = np.asarray(partition_ids, dtype=np.int64)

    train_mask = np.zeros(graph.num_nodes, dtype=bool)
    train_mask[train_nodes] = True

    if members is None:
        if num_workers is None:
            raise ValueError("need num_workers (or members=)")
        groups = list(enumerate(group_partitions(partition_ids, num_workers)))
    else:
        assignment = rendezvous_assign(partition_ids, members, seed=seed)
        groups = [
            (member, np.flatnonzero(np.isin(partition_ids, parts)))
            for member, parts in assignment.items()
        ]

    workers: List[WorkerPartition] = []
    for worker_id, nodes in groups:
        subgraph, original_ids = graph.subgraph(nodes)
        local_train = np.flatnonzero(train_mask[original_ids])
        workers.append(
            WorkerPartition(
                worker_id=worker_id,
                graph=subgraph,
                original_ids=original_ids,
                train_local=local_train,
            )
        )
    return workers


@dataclass
class DistributedEpoch:
    epoch: int
    loss: float
    wall_seconds: float
    sum_worker_seconds: float
    eval_auc: Optional[float] = None
    failed_workers: List[int] = field(default_factory=list)
    straggler_workers: List[int] = field(default_factory=list)
    num_survivors: int = 0
    fault_events: List[FaultEvent] = field(default_factory=list)


@dataclass
class DistributedResult:
    history: List[DistributedEpoch] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def seconds_per_epoch(self) -> float:
        """Simulated synchronous wall-clock: mean over epochs of the
        slowest worker's time."""
        if not self.history:
            return 0.0
        return float(np.mean([e.wall_seconds for e in self.history]))

    def convergence_curve(self) -> List[Optional[float]]:
        """Per-epoch eval AUC (Figure 14)."""
        return [e.eval_auc for e in self.history]

    @property
    def fault_events(self) -> List[FaultEvent]:
        """All fault/recovery events across the run, in epoch order."""
        return [event for record in self.history for event in record.fault_events]

    @property
    def total_failures(self) -> int:
        return sum(len(record.failed_workers) for record in self.history)


class DistributedTrainer:
    """DDP-style synchronous training over simulated workers.

    With a :class:`~repro.reliability.faults.FaultPlan`, training
    degrades gracefully instead of stalling like the paper's
    synchronous 16-machine cluster: crashed workers are detected,
    excluded from the round's all-reduce (the average is re-normalised
    over survivors), and rejoin next epoch with a recorded recovery
    event.
    """

    def __init__(
        self,
        model,
        workers: List[WorkerPartition],
        config: Optional[TrainConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker partition")
        self.model = model
        self.workers = workers
        self.config = config or TrainConfig()
        self.fault_plan = fault_plan
        self.tracer = tracer
        self.optimizer = nn.AdamW(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._rng = np.random.default_rng(self.config.seed)
        self._failed_previous: set = set()

    # ------------------------------------------------------------------
    def _worker_gradients(self, worker: WorkerPartition) -> tuple:
        """Forward/backward on one worker; returns (grads, loss, secs).

        Runs over the worker's local labeled nodes in mini-batches and
        returns the mean gradient, matching what a DDP worker
        contributes per synchronisation round when accumulating.
        """
        with timed(self.tracer, "worker", worker=worker.worker_id) as timer:
            accumulated = [np.zeros_like(p.data) for p in self.model.parameters()]
            losses: List[float] = []
            if worker.num_train:
                nodes = worker.train_local
                if self.config.shuffle:
                    nodes = self._rng.permutation(nodes)
                for batch in batched(nodes, self.config.batch_size):
                    self.model.zero_grad()
                    loss = self.model.loss(worker.graph, batch)
                    loss.backward()
                    for slot, param in zip(accumulated, self.model.parameters()):
                        if param.grad is not None:
                            slot += param.grad * (len(batch) / len(nodes))
                    losses.append(loss.item())
        mean_loss = float(np.mean(losses)) if losses else 0.0
        return accumulated, mean_loss, timer.seconds

    def train_epoch(self, epoch: int = 0) -> DistributedEpoch:
        """One synchronous round: live workers compute, grads averaged.

        Workers the fault plan crashes this round contribute nothing;
        the all-reduce averages over survivors only (re-normalised), so
        one dead machine degrades the update instead of stalling it.
        """
        self.model.train()
        faults = self.fault_plan.epoch_faults(epoch) if self.fault_plan is not None else {}
        crashed = sorted(w for w, kind in faults.items() if kind == CRASH)
        stragglers = sorted(w for w, kind in faults.items() if kind == STRAGGLER)
        slowdown = self.fault_plan.straggler_slowdown if self.fault_plan is not None else 1.0

        events: List[FaultEvent] = [
            FaultEvent(epoch, w, CRASH, "worker excluded from all-reduce") for w in crashed
        ]
        for worker_id in sorted(self._failed_previous - set(crashed)):
            events.append(FaultEvent(epoch, worker_id, RECOVERY, "worker rejoined all-reduce"))
        self._failed_previous = set(crashed)

        worker_grads: List[List[np.ndarray]] = []
        worker_losses: List[float] = []
        worker_seconds: List[float] = []
        for worker in self.workers:
            if worker.worker_id in faults and faults[worker.worker_id] == CRASH:
                continue
            grads, loss, seconds = self._worker_gradients(worker)
            if worker.worker_id in faults and faults[worker.worker_id] == STRAGGLER:
                seconds *= slowdown
                events.append(
                    FaultEvent(epoch, worker.worker_id, STRAGGLER, f"slowdown x{slowdown:g}")
                )
            worker_grads.append(grads)
            worker_losses.append(loss)
            worker_seconds.append(seconds)

        # DDP all-reduce: average gradients across the survivors, then
        # one optimiser step so every live replica stays identical.
        num_survivors = len(worker_grads)
        if not num_survivors:
            raise NoSurvivorsError(
                f"epoch {epoch}: all {len(self.workers)} workers failed in one round"
            )
        self.model.zero_grad()
        for index, param in enumerate(self.model.parameters()):
            averaged = sum(grads[index] for grads in worker_grads) / num_survivors
            param.grad = averaged
        nn.clip_grad_norm(self.model.parameters(), self.config.clip_norm)
        self.optimizer.step()

        return DistributedEpoch(
            epoch=epoch,
            loss=float(np.mean(worker_losses)) if worker_losses else 0.0,
            wall_seconds=float(np.max(worker_seconds)) if worker_seconds else 0.0,
            sum_worker_seconds=float(np.sum(worker_seconds)) if worker_seconds else 0.0,
            failed_workers=crashed,
            straggler_workers=stragglers,
            num_survivors=num_survivors,
            fault_events=events,
        )

    def fit(
        self,
        eval_graph: Optional[HeteroGraph] = None,
        eval_nodes: Optional[Sequence[int]] = None,
    ) -> DistributedResult:
        """Train for the configured epochs, tracking convergence."""
        result = DistributedResult()
        for epoch in range(self.config.epochs):
            record = self.train_epoch(epoch)
            if eval_graph is not None and eval_nodes is not None and len(eval_nodes):
                scores = self.model.predict_proba(eval_graph, eval_nodes)
                labels = eval_graph.labels[np.asarray(eval_nodes, dtype=np.int64)]
                try:
                    record.eval_auc = roc_auc(labels, scores)
                except ValueError:
                    record.eval_auc = None
            result.history.append(record)
        if eval_graph is not None and eval_nodes is not None and len(eval_nodes):
            nodes = np.asarray(eval_nodes, dtype=np.int64)
            scores = self.model.predict_proba(eval_graph, nodes)
            labels = eval_graph.labels[nodes]
            result.metrics = {
                "accuracy": accuracy(labels, scores),
                "ap": average_precision(labels, scores),
            }
            try:
                result.metrics["auc"] = roc_auc(labels, scores)
            except ValueError:
                result.metrics["auc"] = float("nan")
        return result
