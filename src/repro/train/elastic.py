"""Elastic self-healing distributed training (supervision layer).

The paper's detector+ trains on a 16-machine synchronous cluster
(Sec. 3.3.2) where one dead worker stalls every epoch; multi-hour runs
over billion-edge graphs cannot assume a static fleet.
:class:`ElasticTrainer` wraps the simulated DDP cluster of
:mod:`repro.train.distributed` in the supervision loop a production
deployment runs, so training survives worker death, slowdown, and
rejoin with zero manual intervention:

* **Failure detection** — a phi-accrual :class:`FailureDetector`
  (Hayashibara et al.) driven by per-worker heartbeats on an
  injectable clock. Suspicion ``phi = -log10 P(silence this long)``
  accrues continuously from each worker's own inter-heartbeat history,
  so a naturally slow worker is not declared dead by a fixed timeout.
  States mirror the replica health machine of
  :mod:`repro.storage.replicated`: ``healthy → suspect → dead →
  probing``.
* **Eviction & re-shard** — a worker declared dead is evicted, the
  graph partitions it owned are re-assigned by rendezvous hashing
  (:func:`~repro.train.distributed.rendezvous_assign` — only the
  victim's partitions move), the all-reduce group is rebuilt over the
  survivors, and the run rolls back to the last CRC-verified
  checkpoint so the retried epoch starts from known-good state.
* **Rejoin** — a previously evicted worker readmits through the
  probing state with a state catch-up from that same checkpoint; its
  first completed round confirms it back to healthy.
* **Straggler mitigation** — per-worker EWMA step latency; when a
  shard's step exceeds ``straggler_k ×`` the median EWMA, a backup
  execution of that shard is launched on the fastest peer and the
  first result wins, ties breaking deterministically to the lower
  worker id. (Both executions compute the identical gradient — the
  win decides wall-clock, not arithmetic.)
* **Gradient integrity** — every shard's gradient carries a CRC32
  computed at the worker; NaN/Inf values or checksum mismatches are
  quarantined, the all-reduce renormalises over the accepted shards,
  and a bounded skip budget aborts the run
  (:class:`SkipBudgetExhaustedError`, CLI exit 2) when corruption is
  no longer survivable.

Everything is deterministic on a
:class:`~repro.reliability.faults.ManualClock`: worker step latencies
are a pure function of ``(seed, worker)``, fault schedules come from a
:class:`~repro.reliability.faults.FaultPlan`, and re-sharding is a
pure function of ``(partition ids, membership, seed)`` — so the chaos
gate (``repro train --elastic --chaos``) replays bit-for-bit.
"""

from __future__ import annotations

import math
import zlib
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from ..graph.hetero import HeteroGraph
from ..graph.partition import pic_partition
from ..obs.registry import MetricsRegistry
from ..obs.trace import Tracer, timed
from ..reliability.checkpoint import (
    CheckpointError,
    CheckpointManager,
    TrainingState,
    collect_rng_states,
    restore_rng_states,
)
from ..reliability.faults import (
    BACKUP,
    EVICTION,
    KILL,
    QUARANTINE,
    REJOIN,
    FaultEvent,
    FaultPlan,
    ManualClock,
)
from ..storage.replicated import DEAD, HEALTHY, PROBING, SUSPECT, mix64
from .distributed import (
    DistributedTrainer,
    NoSurvivorsError,
    WorkerPartition,
    make_worker_partitions,
)
from .metrics import accuracy, average_precision, roc_auc
from .trainer import TrainConfig

__all__ = [
    "ElasticConfig",
    "ElasticEpoch",
    "ElasticResult",
    "ElasticTrainer",
    "ElasticTrainingError",
    "FailureDetector",
    "SkipBudgetExhaustedError",
]

_MASK64 = (1 << 64) - 1
#: Floor for the survival probability inside phi: caps suspicion at 12
#: and keeps ``-log10`` finite when ``erfc`` underflows to exactly 0.
_MIN_SURVIVAL = 1e-12


class ElasticTrainingError(RuntimeError):
    """The supervisor cannot keep the run alive (no members left, or an
    epoch kept failing after the configured number of rollbacks)."""


class SkipBudgetExhaustedError(ElasticTrainingError):
    """More gradients were quarantined than the skip budget allows.

    Renormalising away a few corrupt gradients is survivable;
    persistent corruption means the model update stream can no longer
    be trusted and the run must abort loudly (CLI exit 2) rather than
    train on whatever survives.
    """


# ----------------------------------------------------------------------
# Phi-accrual failure detection
# ----------------------------------------------------------------------
class FailureDetector:
    """Phi-accrual failure detector over per-worker heartbeats.

    Each worker's inter-heartbeat intervals feed a bounded window;
    suspicion for a silent worker is
    ``phi = -log10 P(interval > elapsed)`` under a normal model of its
    own history (std floored by ``min_std_s`` so a metronomic worker is
    not declared dead by scheduling jitter). ``phi >= suspect_phi``
    marks the worker suspect, ``phi >= dead_phi`` dead; a heartbeat
    while suspect recants the suspicion, a heartbeat while dead moves
    to probing (signs of life, but readmission needs a completed
    round — :meth:`confirm`).

    The clock is injectable: a
    :class:`~repro.reliability.faults.ManualClock` makes every
    transition deterministic for tests, ``time.monotonic`` gives real
    wall-clock detection in live runs.
    """

    def __init__(
        self,
        workers: Sequence[int],
        clock: Callable[[], float],
        suspect_phi: float = 1.0,
        dead_phi: float = 4.0,
        window: int = 64,
        min_std_s: float = 0.25,
        bootstrap_interval_s: float = 1.0,
    ) -> None:
        if not 0 < suspect_phi <= dead_phi:
            raise ValueError("need 0 < suspect_phi <= dead_phi")
        if window < 2:
            raise ValueError("window must be >= 2")
        if min_std_s <= 0 or bootstrap_interval_s <= 0:
            raise ValueError("min_std_s and bootstrap_interval_s must be positive")
        self.clock = clock
        self.suspect_phi = suspect_phi
        self.dead_phi = dead_phi
        self.window = window
        self.min_std_s = min_std_s
        self.bootstrap_interval_s = bootstrap_interval_s
        self._intervals: Dict[int, deque] = {}
        self._last: Dict[int, float] = {}
        self._states: Dict[int, str] = {}
        self.transitions: List[Tuple[float, int, str, str]] = []  # (at, worker, from, to)
        for worker in workers:
            self.add(int(worker))

    # -- membership -----------------------------------------------------
    def add(self, worker: int, at: Optional[float] = None) -> None:
        """Start tracking ``worker`` (fresh history, healthy)."""
        at = self.clock() if at is None else float(at)
        self._intervals[worker] = deque(maxlen=self.window)
        self._last[worker] = at
        self._states[worker] = HEALTHY

    def remove(self, worker: int) -> None:
        """Stop tracking ``worker`` entirely."""
        self._intervals.pop(worker, None)
        self._last.pop(worker, None)
        self._states.pop(worker, None)

    def workers(self) -> List[int]:
        return sorted(self._states)

    def state(self, worker: int) -> str:
        return self._states[worker]

    # -- heartbeats -----------------------------------------------------
    def heartbeat(self, worker: int, at: Optional[float] = None) -> None:
        """Record one heartbeat; recants suspicion, revives the dead to
        probing (a completed round must then :meth:`confirm` them)."""
        if worker not in self._states:
            return
        at = self.clock() if at is None else float(at)
        interval = at - self._last[worker]
        if interval > 0:
            self._intervals[worker].append(interval)
        self._last[worker] = at
        if self._states[worker] == SUSPECT:
            self._transition(worker, HEALTHY, at)
        elif self._states[worker] == DEAD:
            self._transition(worker, PROBING, at)

    def phi(self, worker: int, now: Optional[float] = None) -> float:
        """Current suspicion: ``-log10 P(silence this long)``."""
        now = self.clock() if now is None else float(now)
        elapsed = now - self._last[worker]
        if elapsed <= 0:
            return 0.0
        intervals = self._intervals[worker]
        if intervals:
            mean = float(np.mean(intervals))
            std = max(float(np.std(intervals)), self.min_std_s)
        else:
            mean = self.bootstrap_interval_s
            std = max(self.bootstrap_interval_s / 2.0, self.min_std_s)
        survival = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2.0)))
        return -math.log10(max(survival, _MIN_SURVIVAL))

    def poll(self, now: Optional[float] = None) -> List[Tuple[int, str, str]]:
        """Re-evaluate suspicion for every healthy/suspect worker.

        Returns the transitions taken as ``(worker, from, to)``.
        Probing and dead workers are not re-scored: probing resolves
        via :meth:`confirm` or renewed silence after readmission, dead
        stays dead until a heartbeat revives it.
        """
        now = self.clock() if now is None else float(now)
        taken: List[Tuple[int, str, str]] = []
        for worker in sorted(self._states):
            state = self._states[worker]
            if state not in (HEALTHY, SUSPECT):
                continue
            phi = self.phi(worker, now)
            if phi >= self.dead_phi:
                taken.append((worker, state, DEAD))
                self._transition(worker, DEAD, now)
            elif phi >= self.suspect_phi:
                if state == HEALTHY:
                    taken.append((worker, state, SUSPECT))
                    self._transition(worker, SUSPECT, now)
            elif state == SUSPECT:
                taken.append((worker, state, HEALTHY))
                self._transition(worker, HEALTHY, now)
        return taken

    def mark_probing(self, worker: int, at: Optional[float] = None) -> None:
        """Admit a (re)joining worker in the probing state with a fresh
        heartbeat history — its pre-eviction cadence is stale."""
        at = self.clock() if at is None else float(at)
        if worker not in self._states:
            self.add(worker, at)
        self._intervals[worker].clear()
        self._last[worker] = at
        self._transition(worker, PROBING, at)

    def confirm(self, worker: int, at: Optional[float] = None) -> None:
        """Probing worker completed a full round: healthy again."""
        if self._states.get(worker) == PROBING:
            self._transition(worker, HEALTHY, self.clock() if at is None else at)

    def _transition(self, worker: int, to_state: str, at: float) -> None:
        previous = self._states[worker]
        if previous == to_state:
            return
        self._states[worker] = to_state
        self.transitions.append((float(at), worker, previous, to_state))

    # -- persistence (elastic resume) -----------------------------------
    def state_dict(self) -> Dict:
        """JSON-safe snapshot (keys stringified for the npz manifest)."""
        return {
            "states": {str(w): s for w, s in self._states.items()},
            "last": {str(w): float(t) for w, t in self._last.items()},
            "intervals": {str(w): [float(i) for i in iv] for w, iv in self._intervals.items()},
        }

    def load_state_dict(self, state: Dict) -> None:
        self._states = {int(w): s for w, s in state["states"].items()}
        self._last = {int(w): float(t) for w, t in state["last"].items()}
        self._intervals = {
            int(w): deque((float(i) for i in iv), maxlen=self.window)
            for w, iv in state["intervals"].items()
        }


# ----------------------------------------------------------------------
# Supervisor configuration / records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ElasticConfig:
    """Operating envelope of one :class:`ElasticTrainer`."""

    num_partitions: int = 32
    suspect_phi: float = 1.0
    dead_phi: float = 4.0
    detector_window: int = 64
    min_std_s: float = 0.25
    heartbeat_grace_s: float = 30.0  # max simulated wait for suspicion to resolve
    grace_tick_s: float = 0.5  # clock step while waiting on a silent worker
    straggler_k: float = 2.0  # backup fires when latency > k x median EWMA
    ewma_alpha: float = 0.4
    skip_budget: int = 4  # quarantined gradients tolerated per run
    max_retries_per_epoch: int = 3  # rollback-and-retry bound per epoch
    base_step_s: float = 1.0  # simulated per-worker step latency ...
    step_jitter: float = 0.25  # ... spread +-25% deterministically by worker id

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.straggler_k <= 1.0:
            raise ValueError("straggler_k must be > 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.skip_budget < 0:
            raise ValueError("skip_budget must be >= 0")
        if self.max_retries_per_epoch < 1:
            raise ValueError("max_retries_per_epoch must be >= 1")
        if self.base_step_s <= 0 or not 0.0 <= self.step_jitter < 1.0:
            raise ValueError("need base_step_s > 0 and 0 <= step_jitter < 1")
        if self.heartbeat_grace_s <= 0 or self.grace_tick_s <= 0:
            raise ValueError("heartbeat_grace_s and grace_tick_s must be positive")


@dataclass
class ElasticEpoch:
    """One supervised synchronisation round (after retries resolved)."""

    epoch: int
    loss: float
    wall_seconds: float
    members: List[int] = field(default_factory=list)
    eval_auc: Optional[float] = None
    evicted: List[int] = field(default_factory=list)
    rejoined: List[int] = field(default_factory=list)
    backups: List[int] = field(default_factory=list)
    quarantined: List[int] = field(default_factory=list)
    retries: int = 0
    events: List[FaultEvent] = field(default_factory=list)


@dataclass
class ElasticResult:
    history: List[ElasticEpoch] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    def convergence_curve(self) -> List[Optional[float]]:
        return [record.eval_auc for record in self.history]

    @property
    def seconds_per_epoch(self) -> float:
        if not self.history:
            return 0.0
        return float(np.mean([record.wall_seconds for record in self.history]))

    @property
    def total_evictions(self) -> int:
        return sum(len(record.evicted) for record in self.history)

    @property
    def total_rejoins(self) -> int:
        return sum(len(record.rejoined) for record in self.history)

    @property
    def total_backups(self) -> int:
        return sum(len(record.backups) for record in self.history)

    @property
    def total_quarantined(self) -> int:
        return sum(len(record.quarantined) for record in self.history)

    @property
    def total_rollbacks(self) -> int:
        return sum(record.retries for record in self.history)

    def describe(self) -> str:
        final_members = self.history[-1].members if self.history else []
        lines = [
            f"epochs         : {len(self.history)}",
            f"final members  : {final_members}",
            f"evictions      : {self.total_evictions}",
            f"rejoins        : {self.total_rejoins}",
            f"backup tasks   : {self.total_backups}",
            f"quarantined    : {self.total_quarantined}",
            f"rollbacks      : {self.total_rollbacks}",
        ]
        return "\n".join(lines)


@dataclass
class _Shard:
    """One worker's contribution to a round, pre-all-reduce."""

    worker: int
    grads: List[np.ndarray]
    loss: float
    latency: float  # the worker's own step latency (simulated seconds)
    crc: int  # gradient checksum computed worker-side


@dataclass
class _Round:
    dead: List[int] = field(default_factory=list)
    loss: float = 0.0
    wall_seconds: float = 0.0


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class ElasticTrainer:
    """Self-healing supervisor around the simulated DDP cluster.

    Owns the membership (worker ids), the failure detector, the
    re-shard machinery, and a rolling CRC-verified checkpoint; the
    gradient arithmetic itself is delegated to a
    :class:`~repro.train.distributed.DistributedTrainer` engine whose
    worker list the supervisor rebuilds on every membership change.

    Requires an advanceable clock (:class:`ManualClock` by default):
    worker step latencies are *simulated* deterministically from
    ``(seed, worker id)`` so eviction, backup, and rejoin decisions
    replay exactly. Pass ``checkpoint=`` a directory or
    :class:`CheckpointManager` for durable on-disk checkpoints (and
    ``fit(resume=True)``); without one, rollback uses an in-memory
    CRC-verified snapshot only.
    """

    def __init__(
        self,
        model,
        graph: HeteroGraph,
        train_nodes: Sequence[int],
        num_workers: int,
        config: Optional[TrainConfig] = None,
        elastic: Optional[ElasticConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        clock: Optional[ManualClock] = None,
        checkpoint: Optional[Union[CheckpointManager, str]] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.model = model
        self.graph = graph
        self.train_nodes = np.asarray(train_nodes, dtype=np.int64)
        self.config = config or TrainConfig()
        self.elastic = elastic or ElasticConfig()
        self.fault_plan = fault_plan
        self.clock = clock or ManualClock()
        if not hasattr(self.clock, "advance"):
            raise TypeError("ElasticTrainer needs an advanceable (ManualClock-like) clock")
        self.tracer = tracer
        self.registry = registry
        self._manager = (
            CheckpointManager(checkpoint) if isinstance(checkpoint, str) else checkpoint
        )

        num_partitions = min(self.elastic.num_partitions, graph.num_nodes)
        if num_partitions < num_workers:
            raise ValueError(
                f"num_partitions ({num_partitions}) must be >= num_workers ({num_workers})"
            )
        self.partition_ids = pic_partition(graph, num_partitions, seed=self.config.seed)
        self.members: set = set(range(num_workers))
        self._killed: set = set()
        self._evicted: set = set()
        self.detector = FailureDetector(
            sorted(self.members),
            self.clock,
            suspect_phi=self.elastic.suspect_phi,
            dead_phi=self.elastic.dead_phi,
            window=self.elastic.detector_window,
            min_std_s=self.elastic.min_std_s,
            bootstrap_interval_s=self.elastic.base_step_s,
        )
        # Deterministic per-worker step latency: base * (1 +- jitter).
        self._base = {
            w: self.elastic.base_step_s
            * (
                1.0
                + self.elastic.step_jitter
                * (2.0 * (mix64((self.config.seed & _MASK64) ^ (w << 16)) / 2**64) - 1.0)
            )
            for w in range(num_workers)
        }
        self._ewma: Dict[int, float] = {}
        self._budget_used = 0
        self._workers: Dict[int, WorkerPartition] = {}
        self._reshard()
        self.engine = DistributedTrainer(
            model, [self._workers[w] for w in sorted(self.members)], self.config
        )
        self._metrics_init()
        self._last_checkpoint: Optional[Tuple[TrainingState, int]] = None
        self._checkpoint_state(-1, [])  # rollback target for epoch-0 faults

    # -- metrics --------------------------------------------------------
    def _metrics_init(self) -> None:
        if self.registry is None:
            self._counters = None
            return
        self._counters = {
            "evictions": self.registry.counter(
                "elastic_evictions_total", "workers evicted by the supervisor", ("worker",)
            ),
            "rejoins": self.registry.counter(
                "elastic_rejoins_total", "workers readmitted after eviction", ("worker",)
            ),
            "backups": self.registry.counter(
                "elastic_backup_tasks_total", "straggler backup executions", ("worker",)
            ),
            "quarantines": self.registry.counter(
                "elastic_quarantines_total", "gradients quarantined", ("worker", "reason")
            ),
            "rollbacks": self.registry.counter(
                "elastic_rollbacks_total", "checkpoint rollbacks taken"
            ),
        }
        self._suspicion_gauge = self.registry.gauge(
            "elastic_worker_suspicion", "phi-accrual suspicion per worker", ("worker",)
        )
        self._members_gauge = self.registry.gauge(
            "elastic_members", "live all-reduce group size"
        )
        self._members_gauge.set(len(self.members))

    def _count(self, name: str, **labels: str) -> None:
        if self._counters is not None:
            self._counters[name].inc(**labels)

    # -- sharding / checkpointing ---------------------------------------
    def _reshard(self) -> None:
        """Rebuild per-member shards for the current membership (HRW)."""
        partitions = make_worker_partitions(
            self.graph,
            self.train_nodes,
            members=sorted(self.members),
            partition_ids=self.partition_ids,
            seed=self.config.seed,
        )
        self._workers = {p.worker_id: p for p in partitions}
        if hasattr(self, "engine"):
            self.engine.workers = [self._workers[w] for w in sorted(self.members)]

    @staticmethod
    def _state_crc(model_state: Dict[str, np.ndarray]) -> int:
        crc = 0
        for name in sorted(model_state):
            crc = zlib.crc32(np.ascontiguousarray(model_state[name]).tobytes(), crc)
        return crc

    def _elastic_extras(self) -> Dict:
        return {
            "members": sorted(self.members),
            "killed": sorted(self._killed),
            "evicted": sorted(self._evicted),
            "ewma": {str(w): float(v) for w, v in self._ewma.items()},
            "budget_used": int(self._budget_used),
            "clock": float(self.clock()),
            "detector": self.detector.state_dict(),
        }

    def _checkpoint_state(self, epoch: int, history: List[ElasticEpoch]) -> None:
        """Snapshot everything a rollback or resume needs, CRC-stamped."""
        state = TrainingState(
            epoch=epoch,
            model_state=self.model.state_dict(),
            optimizer_state=self.engine.optimizer.state_dict(),
            rng_states={
                "trainer": self.engine._rng.bit_generator.state,
                "model": collect_rng_states(self.model),
                "elastic": self._elastic_extras(),
            },
            history=[asdict(record) for record in history],
        )
        self._last_checkpoint = (state, self._state_crc(state.model_state))
        if self._manager is not None and epoch >= 0:
            self._manager.save(state)

    def _rollback(self, epoch: int) -> None:
        """Restore model/optimizer/RNG from the last verified snapshot.

        Membership is *not* restored — eviction moves forward; only the
        training state rewinds to the checkpointed epoch.
        """
        if self._last_checkpoint is None:
            raise ElasticTrainingError("no checkpoint to roll back to")
        state, crc = self._last_checkpoint
        if self._state_crc(state.model_state) != crc:
            raise CheckpointError(
                f"in-memory checkpoint for epoch {state.epoch} failed its CRC"
            )
        with timed(self.tracer, "rollback", epoch=epoch, to_epoch=state.epoch):
            self.model.load_state_dict(state.model_state)
            self.engine.optimizer.load_state_dict(state.optimizer_state)
            self.engine._rng.bit_generator.state = state.rng_states["trainer"]
            restore_rng_states(self.model, state.rng_states.get("model", {}))
        self._count("rollbacks")

    # -- resume ---------------------------------------------------------
    def _restore(self, state: TrainingState, result: ElasticResult) -> int:
        """Inverse of :meth:`_checkpoint_state`; returns the next epoch."""
        self.model.load_state_dict(state.model_state)
        self.engine.optimizer.load_state_dict(state.optimizer_state)
        self.engine._rng.bit_generator.state = state.rng_states["trainer"]
        restore_rng_states(self.model, state.rng_states.get("model", {}))
        extras = state.rng_states.get("elastic", {})
        self.members = set(extras.get("members", sorted(self.members)))
        self._killed = set(extras.get("killed", []))
        self._evicted = set(extras.get("evicted", []))
        self._ewma = {int(w): float(v) for w, v in extras.get("ewma", {}).items()}
        self._budget_used = int(extras.get("budget_used", 0))
        if "clock" in extras and hasattr(self.clock, "now"):
            self.clock.now = float(extras["clock"])
        if "detector" in extras:
            self.detector.load_state_dict(extras["detector"])
        self._reshard()
        result.history = [
            ElasticEpoch(
                **{
                    **record,
                    "events": [FaultEvent(**event) for event in record.get("events", [])],
                }
            )
            for record in state.history
        ]
        self._last_checkpoint = (state, self._state_crc(state.model_state))
        return state.epoch + 1

    # -- the supervised loop --------------------------------------------
    def fit(
        self,
        eval_graph: Optional[HeteroGraph] = None,
        eval_nodes: Optional[Sequence[int]] = None,
        resume: bool = False,
        stop_after_epoch: Optional[int] = None,
    ) -> ElasticResult:
        """Train for the configured epochs under supervision.

        ``resume=True`` restores the newest checkpoint from the
        attached manager — model, optimizer, RNG streams, membership,
        detector state, and the simulated clock — so the continued run
        is bit-identical to one that never stopped.
        ``stop_after_epoch=k`` returns right after epoch ``k`` is
        checkpointed (the kill half of a kill-and-resume test).
        """
        result = ElasticResult()
        start_epoch = 0
        if resume:
            if self._manager is None:
                raise ElasticTrainingError("resume=True needs a checkpoint manager")
            start_epoch = self._restore(self._manager.load(), result)
        for epoch in range(start_epoch, self.config.epochs):
            record = self._supervised_epoch(epoch)
            if eval_graph is not None and eval_nodes is not None and len(eval_nodes):
                scores = self.model.predict_proba(eval_graph, eval_nodes)
                labels = eval_graph.labels[np.asarray(eval_nodes, dtype=np.int64)]
                record.eval_auc = roc_auc(labels, scores, default=None)
            result.history.append(record)
            self._checkpoint_state(epoch, result.history)
            if stop_after_epoch is not None and epoch >= stop_after_epoch:
                return result
        if eval_graph is not None and eval_nodes is not None and len(eval_nodes):
            nodes = np.asarray(eval_nodes, dtype=np.int64)
            scores = self.model.predict_proba(eval_graph, nodes)
            labels = eval_graph.labels[nodes]
            result.metrics = {
                "accuracy": accuracy(labels, scores),
                "ap": average_precision(labels, scores),
                "auc": roc_auc(labels, scores, default=float("nan")),
            }
        return result

    def _supervised_epoch(self, epoch: int) -> ElasticEpoch:
        plan = self.fault_plan
        record = ElasticEpoch(epoch=epoch, loss=0.0, wall_seconds=0.0)
        with timed(self.tracer, "supervise_epoch", epoch=epoch):
            # 1. Scheduled rejoins: readmit through probing + catch-up.
            for worker in plan.rejoins_at(epoch) if plan else []:
                if worker not in self._evicted:
                    continue
                self._readmit(epoch, worker, record)
            if record.rejoined:
                with timed(self.tracer, "reshard", epoch=epoch, reason="rejoin"):
                    self._reshard()
            # 2. Scheduled kills: heartbeats stop as of this round.
            for worker in plan.kills_at(epoch) if plan else []:
                if worker in self.members and worker not in self._killed:
                    self._killed.add(worker)
                    record.events.append(
                        FaultEvent(epoch, worker, KILL, "worker died; heartbeats stopped")
                    )
            # 3. Attempt the round; evict + re-shard + roll back + retry
            #    until it completes or the retry bound trips.
            while True:
                try:
                    outcome = self._attempt_round(epoch, record)
                except NoSurvivorsError:
                    outcome = _Round(dead=[])
                    if record.retries >= self.elastic.max_retries_per_epoch:
                        raise ElasticTrainingError(
                            f"epoch {epoch}: no usable gradients after "
                            f"{record.retries} retries"
                        )
                    self._rollback(epoch)
                    record.retries += 1
                    continue
                if outcome.dead:
                    for worker in outcome.dead:
                        self._evict(epoch, worker, record)
                    if not self.members - self._killed:
                        raise ElasticTrainingError(
                            f"epoch {epoch}: every worker is dead or dying"
                        )
                    with timed(self.tracer, "reshard", epoch=epoch, reason="eviction"):
                        self._reshard()
                    self._rollback(epoch)
                    record.retries += 1
                    if record.retries > self.elastic.max_retries_per_epoch:
                        raise ElasticTrainingError(
                            f"epoch {epoch}: still failing after {record.retries} rollbacks"
                        )
                    continue
                break
            record.loss = outcome.loss
            record.wall_seconds = outcome.wall_seconds
            record.members = sorted(self.members)
            self._export_suspicion()
        return record

    def _readmit(self, epoch: int, worker: int, record: ElasticEpoch) -> None:
        """Eviction's inverse: probing state + checkpoint catch-up."""
        with timed(self.tracer, "readmit", epoch=epoch, worker=worker):
            # Catch-up payload: the rejoining worker receives the last
            # CRC-verified state rather than its stale pre-eviction copy.
            state, crc = self._last_checkpoint
            if self._state_crc(state.model_state) != crc:
                raise CheckpointError("catch-up checkpoint failed its CRC")
            self.detector.mark_probing(worker)
        self._evicted.discard(worker)
        self._killed.discard(worker)
        self.members.add(worker)
        record.rejoined.append(worker)
        record.events.append(
            FaultEvent(
                epoch, worker, REJOIN, f"readmitted probing, caught up from epoch {state.epoch}"
            )
        )
        self._count("rejoins", worker=str(worker))
        if self._counters is not None:
            self._members_gauge.set(len(self.members))

    def _evict(self, epoch: int, worker: int, record: ElasticEpoch) -> None:
        with timed(self.tracer, "evict", epoch=epoch, worker=worker):
            self.members.discard(worker)
            self._killed.discard(worker)
            self._evicted.add(worker)
        record.evicted.append(worker)
        record.events.append(
            FaultEvent(epoch, worker, EVICTION, "declared dead by phi-accrual detector")
        )
        self._count("evictions", worker=str(worker))
        if self._counters is not None:
            self._members_gauge.set(len(self.members))

    def _attempt_round(self, epoch: int, record: ElasticEpoch) -> _Round:
        """One all-reduce attempt over the current membership."""
        elastic = self.elastic
        slow = self.fault_plan.slow_at(epoch) if self.fault_plan else {}
        corrupt = self.fault_plan.corrupt_at(epoch) if self.fault_plan else {}
        round_start = self.clock()

        # Live workers compute their shard gradient; latency simulated.
        shards: List[_Shard] = []
        for worker in sorted(self.members):
            if worker in self._killed:
                continue
            grads, loss, _ = self.engine._worker_gradients(self._workers[worker])
            latency = self._base[worker] * slow.get(worker, 1.0)
            shards.append(_Shard(worker, grads, loss, latency, self._grad_crc(grads)))

        effective = {shard.worker: shard.latency for shard in shards}
        self._mitigate_stragglers(epoch, shards, slow, effective, record)

        # Advance the simulated round; deliver heartbeats at completion.
        wall = max(effective.values()) if effective else elastic.grace_tick_s
        self.clock.advance(wall)
        for shard in sorted(shards, key=lambda s: (effective[s.worker], s.worker)):
            self.detector.heartbeat(shard.worker, at=round_start + effective[shard.worker])
        self.detector.poll()

        # Workers the all-reduce never heard from: hold the barrier open
        # (live workers keep heartbeating) until suspicion resolves.
        missing = sorted((self.members & self._killed))
        waited = 0.0
        while (
            missing
            and any(self.detector.state(w) != DEAD for w in missing)
            and waited < elastic.heartbeat_grace_s
        ):
            self.clock.advance(elastic.grace_tick_s)
            waited += elastic.grace_tick_s
            for shard in shards:
                self.detector.heartbeat(shard.worker)
            self.detector.poll()
        dead = [w for w in missing if self.detector.state(w) == DEAD]
        if dead:
            return _Round(dead=dead)

        # A probing (rejoined) worker that completed the round is back.
        for shard in shards:
            if self.detector.state(shard.worker) == PROBING:
                self.detector.confirm(shard.worker)

        accepted = self._integrity_check(epoch, shards, corrupt, record)
        if not accepted:
            raise NoSurvivorsError(f"epoch {epoch}: every shard gradient was quarantined")

        # All-reduce renormalised over the accepted shards.
        self.model.zero_grad()
        for index, param in enumerate(self.model.parameters()):
            averaged = sum(shard.grads[index] for shard in accepted) / len(accepted)
            param.grad = averaged
        nn.clip_grad_norm(self.model.parameters(), self.config.clip_norm)
        self.engine.optimizer.step()

        for shard in shards:
            previous = self._ewma.get(shard.worker)
            self._ewma[shard.worker] = (
                shard.latency
                if previous is None
                else elastic.ewma_alpha * shard.latency + (1 - elastic.ewma_alpha) * previous
            )
        return _Round(
            loss=float(np.mean([shard.loss for shard in accepted])),
            wall_seconds=float(wall + waited),
        )

    def _mitigate_stragglers(
        self,
        epoch: int,
        shards: List[_Shard],
        slow: Dict[int, float],
        effective: Dict[int, float],
        record: ElasticEpoch,
    ) -> None:
        """Backup-execute shards running past ``k x`` the median EWMA.

        The backup re-runs the *same* shard, so its gradient is
        bit-identical; first result wins only the wall-clock race.
        Ties (equal finish) break to the lower worker id.
        """
        if len(shards) < 2 or not all(s.worker in self._ewma for s in shards):
            return
        threshold = self.elastic.straggler_k * float(
            np.median([self._ewma[s.worker] for s in shards])
        )
        for shard in shards:
            if shard.latency <= threshold:
                continue
            peers = [s for s in shards if s.worker != shard.worker]
            backup = min(
                peers, key=lambda s: (self._base[s.worker] * slow.get(s.worker, 1.0), s.worker)
            )
            backup_latency = self._base[backup.worker] * slow.get(backup.worker, 1.0)
            backup_finish = threshold + backup_latency
            if backup_finish < shard.latency:
                winner, finish = backup.worker, backup_finish
            elif backup_finish > shard.latency:
                winner, finish = shard.worker, shard.latency
            else:  # deterministic tie-break: lower worker id wins
                winner = min(shard.worker, backup.worker)
                finish = shard.latency
            effective[shard.worker] = finish
            with timed(
                self.tracer, "backup", epoch=epoch, straggler=shard.worker, backup=backup.worker
            ):
                record.backups.append(shard.worker)
                record.events.append(
                    FaultEvent(
                        epoch,
                        shard.worker,
                        BACKUP,
                        f"backup on worker {backup.worker}; "
                        f"{'backup' if winner == backup.worker else 'primary'} won "
                        f"at {finish:.3f}s",
                    )
                )
            self._count("backups", worker=str(shard.worker))

    @staticmethod
    def _grad_crc(grads: List[np.ndarray]) -> int:
        crc = 0
        for grad in grads:
            crc = zlib.crc32(np.ascontiguousarray(grad).tobytes(), crc)
        return crc

    def _integrity_check(
        self,
        epoch: int,
        shards: List[_Shard],
        corrupt: Dict[int, str],
        record: ElasticEpoch,
    ) -> List[_Shard]:
        """Quarantine NaN/Inf and checksum-failing gradients (budgeted)."""
        accepted: List[_Shard] = []
        for shard in shards:
            mode = corrupt.get(shard.worker)
            if mode is not None:
                self._inject_corruption(epoch, shard, mode)
            reason = None
            if not all(np.isfinite(grad).all() for grad in shard.grads):
                reason = "nan"
            elif self._grad_crc(shard.grads) != shard.crc:
                reason = "checksum"
            if reason is None:
                accepted.append(shard)
                continue
            with timed(
                self.tracer, "quarantine", epoch=epoch, worker=shard.worker, reason=reason
            ):
                record.quarantined.append(shard.worker)
                record.events.append(
                    FaultEvent(
                        epoch, shard.worker, QUARANTINE, f"gradient quarantined ({reason})"
                    )
                )
            self._count("quarantines", worker=str(shard.worker), reason=reason)
            self._budget_used += 1
            if self._budget_used > self.elastic.skip_budget:
                raise SkipBudgetExhaustedError(
                    f"epoch {epoch}: {self._budget_used} gradients quarantined, "
                    f"budget is {self.elastic.skip_budget}"
                )
        return accepted

    def _inject_corruption(self, epoch: int, shard: _Shard, mode: str) -> None:
        """Scripted in-flight corruption, *after* the worker-side CRC."""
        target = next((g for g in shard.grads if g.size), None)
        if target is None:
            return
        slot = mix64((epoch << 20) ^ (shard.worker << 4) ^ (self.config.seed & _MASK64))
        if mode == "nan":
            target.flat[slot % target.size] = np.nan
        else:  # bitflip: flip one byte so only the checksum notices
            view = target.view(np.uint8).reshape(-1)
            view[slot % view.size] ^= 0xFF

    def _export_suspicion(self) -> None:
        if self._counters is None:
            return
        for worker in self.detector.workers():
            self._suspicion_gauge.set(self.detector.phi(worker), worker=str(worker))
