"""Evaluation metrics for the imbalanced fraud-detection task.

Everything the paper reports: AUC-ROC, average precision (AP),
accuracy, full ROC and precision-recall curves (Figures 8/9/15),
confusion-rate tables and precision/recall sweeps over prediction-score
thresholds (Tables 14–19), plus the precision re-projection onto the
pre-downsampling stream of Appendix H.4.

Implemented from scratch on numpy (no sklearn dependency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..util import nearest_rank_index


def _validate(labels: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    if len(labels) == 0:
        raise ValueError("empty inputs")
    if not np.all((labels == 0) | (labels == 1)):
        raise ValueError("labels must be binary 0/1")
    if np.isnan(scores).any():
        # NaN breaks the sort-based threshold sweep silently; fail loudly.
        raise ValueError("scores must not contain NaN")
    return labels, scores


def roc_curve(labels: Sequence[int], scores: Sequence[float]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve: (fpr, tpr, thresholds), thresholds descending."""
    labels, scores = _validate(np.asarray(labels), np.asarray(scores))
    order = np.argsort(-scores, kind="stable")
    labels = labels[order]
    scores = scores[order]
    distinct = np.flatnonzero(np.diff(scores)) if len(scores) > 1 else np.array([], dtype=int)
    cut = np.concatenate([distinct, [len(labels) - 1]])

    tps = np.cumsum(labels)[cut]
    fps = (1 + cut) - tps
    total_pos = labels.sum()
    total_neg = len(labels) - total_pos
    tpr = tps / max(total_pos, 1)
    fpr = fps / max(total_neg, 1)
    thresholds = scores[cut]
    # Prepend the (0, 0) origin.
    return (
        np.concatenate([[0.0], fpr]),
        np.concatenate([[0.0], tpr]),
        np.concatenate([[np.inf], thresholds]),
    )


# Sentinel distinguishing "no default given" from default=None.
_RAISE = object()


def roc_auc(labels: Sequence[int], scores: Sequence[float], default=_RAISE):
    """Area under the ROC curve via the trapezoid rule.

    AUC is undefined when only one class is present. By default that
    raises ValueError; pass ``default=`` (e.g. ``float("nan")`` or
    ``None``) to get that value back instead — essential for serving
    stats and benchmarks, where a degraded-traffic window can easily be
    all-benign and must not crash metric reporting.
    """
    labels, scores = _validate(np.asarray(labels), np.asarray(scores))
    if labels.min() == labels.max():
        if default is _RAISE:
            raise ValueError("AUC needs both classes present")
        return default
    fpr, tpr, _ = roc_curve(labels, scores)
    return float(np.trapezoid(tpr, fpr))


def latency_percentiles(
    samples: Sequence[float],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[str, float]:
    """Latency summary as ``{"p50": ..., "p95": ..., "p99": ...}``.

    The shared helper behind ``ServiceStats`` and ``Trainer`` epoch
    timing (tail latency, not just the mean, is what an online scorer
    is judged on). Empty input yields NaNs rather than raising so a
    zero-traffic window still reports.

    Selection is nearest-rank (see :func:`repro.util.nearest_rank_index`),
    not linear interpolation: every reported value is a sample that was
    actually observed, and at tiny counts (n=1, 2) p50/p95/p99 stay
    honest instead of inventing midpoints.
    """
    keys = [f"p{percentile:g}" for percentile in percentiles]
    samples = np.asarray(list(samples), dtype=np.float64)
    if samples.size == 0:
        return {key: float("nan") for key in keys}
    ordered = np.sort(samples)
    return {
        key: float(ordered[nearest_rank_index(percentile, ordered.size)])
        for key, percentile in zip(keys, percentiles)
    }


def partial_roc_auc(labels: Sequence[int], scores: Sequence[float], max_fpr: float = 0.1) -> float:
    """AUC restricted to FPR <= max_fpr (Figure 9's regime)."""
    fpr, tpr, _ = roc_curve(np.asarray(labels), np.asarray(scores))
    keep = fpr <= max_fpr
    if keep.sum() < 2:
        return 0.0
    fpr_k, tpr_k = fpr[keep], tpr[keep]
    if fpr_k[-1] < max_fpr and keep.sum() < len(fpr):
        # Interpolate the curve at exactly max_fpr.
        nxt = int(keep.sum())
        span = fpr[nxt] - fpr_k[-1]
        frac = (max_fpr - fpr_k[-1]) / span if span > 0 else 0.0
        fpr_k = np.append(fpr_k, max_fpr)
        tpr_k = np.append(tpr_k, tpr_k[-1] + frac * (tpr[nxt] - tpr_k[-1]))
    return float(np.trapezoid(tpr_k, fpr_k))


def precision_recall_curve(
    labels: Sequence[int], scores: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """PR curve: (precision, recall, thresholds), recall ascending order
    reversed to the conventional descending-threshold sweep."""
    labels, scores = _validate(np.asarray(labels), np.asarray(scores))
    order = np.argsort(-scores, kind="stable")
    labels = labels[order]
    scores = scores[order]
    tps = np.cumsum(labels)
    fps = np.cumsum(1 - labels)
    distinct = np.flatnonzero(np.diff(scores)) if len(scores) > 1 else np.array([], dtype=int)
    cut = np.concatenate([distinct, [len(labels) - 1]])
    precision = tps[cut] / (tps[cut] + fps[cut])
    recall = tps[cut] / max(labels.sum(), 1)
    thresholds = scores[cut]
    # sklearn convention: thresholds ascending, recall descending,
    # terminating at full precision / zero recall.
    return (
        np.concatenate([precision[::-1], [1.0]]),
        np.concatenate([recall[::-1], [0.0]]),
        thresholds[::-1],
    )


def average_precision(labels: Sequence[int], scores: Sequence[float]) -> float:
    """AP: sum over recall steps of precision (step-wise integral)."""
    precision, recall, _ = precision_recall_curve(labels, scores)
    # precision/recall arrive with recall descending at the tail; walk
    # the curve in threshold order.
    return float(-np.sum(np.diff(recall) * precision[:-1]))


def accuracy(labels: Sequence[int], scores: Sequence[float], threshold: float = 0.5) -> float:
    """Fraction of correct hard predictions at ``threshold``."""
    labels, scores = _validate(np.asarray(labels), np.asarray(scores))
    predicted = (scores >= threshold).astype(np.int64)
    return float((predicted == labels).mean())


@dataclass
class ConfusionRates:
    """TPR/TNR/FPR/FNR at one threshold (Tables 14–16)."""

    threshold: float
    tpr: float
    tnr: float
    fpr: float
    fnr: float
    precision: Optional[float]
    recall: float

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "threshold": self.threshold,
            "TPR": self.tpr,
            "TNR": self.tnr,
            "FPR": self.fpr,
            "FNR": self.fnr,
            "precision": self.precision,
            "recall": self.recall,
        }


def confusion_rates(labels: Sequence[int], scores: Sequence[float], threshold: float) -> ConfusionRates:
    """Confusion-rate row at a threshold; precision is None when no
    score clears the threshold (the paper's "-" cells)."""
    labels, scores = _validate(np.asarray(labels), np.asarray(scores))
    predicted = scores >= threshold
    positives = labels == 1
    negatives = ~positives
    tp = int(np.sum(predicted & positives))
    fp = int(np.sum(predicted & negatives))
    fn = int(np.sum(~predicted & positives))
    tn = int(np.sum(~predicted & negatives))
    tpr = tp / max(tp + fn, 1)
    tnr = tn / max(tn + fp, 1)
    precision = tp / (tp + fp) if (tp + fp) > 0 else None
    return ConfusionRates(
        threshold=threshold,
        tpr=tpr,
        tnr=tnr,
        fpr=1.0 - tnr,
        fnr=1.0 - tpr,
        precision=precision,
        recall=tpr,
    )


def threshold_sweep(
    labels: Sequence[int],
    scores: Sequence[float],
    thresholds: Sequence[float],
) -> Tuple[ConfusionRates, ...]:
    """Tables 14–19: confusion rates over a threshold grid."""
    return tuple(confusion_rates(labels, scores, t) for t in thresholds)


def project_precision_to_stream(
    precision_sampled: float,
    fraud_rate_sampled: float,
    fraud_rate_stream: float,
) -> float:
    """Re-project precision from the downsampled set to the raw stream.

    Appendix H.4: a 0.98 precision at 4.33% fraud corresponds to ~0.32
    at the 0.043% filtered-stream rate, because benign downsampling
    inflates precision. Derivation via odds: the downsampling keeps all
    fraud and a fraction ``f`` of benign, with
    ``f = (fr_s / (1 - fr_s)) / (fr_r / (1 - fr_r))`` linking the two
    fraud rates; false positives scale back up by ``1/f``.
    """
    if not (0 < fraud_rate_stream <= fraud_rate_sampled < 1):
        raise ValueError("fraud rates must satisfy 0 < stream <= sampled < 1")
    if precision_sampled <= 0:
        return 0.0
    odds_sampled = fraud_rate_sampled / (1 - fraud_rate_sampled)
    odds_stream = fraud_rate_stream / (1 - fraud_rate_stream)
    keep_fraction = odds_stream / odds_sampled
    fp_ratio = (1 - precision_sampled) / precision_sampled
    fp_ratio_stream = fp_ratio / keep_fraction
    return 1.0 / (1.0 + fp_ratio_stream)
