"""repro.train — training loops, distributed simulation, and metrics."""

from .distributed import (
    DistributedEpoch,
    DistributedResult,
    DistributedTrainer,
    WorkerPartition,
    make_worker_partitions,
)
from .metrics import (
    ConfusionRates,
    accuracy,
    average_precision,
    confusion_rates,
    latency_percentiles,
    partial_roc_auc,
    precision_recall_curve,
    project_precision_to_stream,
    roc_auc,
    roc_curve,
    threshold_sweep,
)
from .trainer import EpochRecord, TrainConfig, Trainer, TrainResult, measure_inference_time

__all__ = [
    "Trainer",
    "TrainConfig",
    "TrainResult",
    "EpochRecord",
    "measure_inference_time",
    "DistributedTrainer",
    "DistributedResult",
    "DistributedEpoch",
    "WorkerPartition",
    "make_worker_partitions",
    "roc_auc",
    "roc_curve",
    "latency_percentiles",
    "partial_roc_auc",
    "precision_recall_curve",
    "average_precision",
    "accuracy",
    "confusion_rates",
    "ConfusionRates",
    "threshold_sweep",
    "project_precision_to_stream",
]
