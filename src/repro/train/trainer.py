"""Single-machine trainer (paper hyperparameters: AdamW, clip 0.25,
early-stopping patience).

Trains any model exposing ``loss(graph, targets)`` and
``predict_proba(graph, targets)`` — the detector, detector+, GAT, and
GEM all do. Uses full-graph forward passes over the (partitioned)
graph, mini-batched over labeled target nodes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .. import nn
from ..graph.hetero import HeteroGraph
from ..util import batched
from ..obs.trace import Tracer, timed
from ..reliability.checkpoint import (
    CheckpointManager,
    TrainingState,
    collect_rng_states,
    restore_rng_states,
)
from .metrics import accuracy, average_precision, latency_percentiles, roc_auc


@dataclass
class TrainConfig:
    """Training hyperparameters (Appendix C, scaled)."""

    epochs: int = 16
    batch_size: int = 256
    learning_rate: float = 1e-2
    weight_decay: float = 1e-4
    clip_norm: float = 0.25
    patience: int = 32
    shuffle: bool = True
    seed: int = 0
    verbose: bool = False


@dataclass
class EpochRecord:
    epoch: int
    loss: float
    seconds: float
    eval_auc: Optional[float] = None


@dataclass
class TrainResult:
    """Per-epoch history plus final evaluation scores."""

    history: List[EpochRecord] = field(default_factory=list)
    best_auc: float = 0.0
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def seconds_per_epoch(self) -> float:
        if not self.history:
            return 0.0
        return float(np.mean([record.seconds for record in self.history]))

    def epoch_time_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of per-epoch wall time (tail, not just the mean)."""
        return latency_percentiles([record.seconds for record in self.history])


class Trainer:
    """Gradient-descent training loop with early stopping.

    ``tracer`` (optional :class:`~repro.obs.trace.Tracer`) records one
    ``fit`` span with per-``epoch`` (and per-``evaluate``) children —
    the trace behind ``repro train --trace-out``.
    """

    def __init__(
        self,
        model,
        config: Optional[TrainConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.tracer = tracer
        self.optimizer = nn.AdamW(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._rng = np.random.default_rng(self.config.seed)

    def train_epoch(self, graph: HeteroGraph, train_nodes: Sequence[int]) -> float:
        """One pass over the labeled training nodes; returns mean loss."""
        self.model.train()
        nodes = np.asarray(train_nodes, dtype=np.int64)
        if self.config.shuffle:
            nodes = self._rng.permutation(nodes)
        losses: List[float] = []
        for batch in batched(nodes, self.config.batch_size):
            self.optimizer.zero_grad()
            loss = self.model.loss(graph, batch)
            loss.backward()
            nn.clip_grad_norm(self.model.parameters(), self.config.clip_norm)
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    # -- checkpoint plumbing -------------------------------------------
    def _capture_state(
        self,
        epoch: int,
        result: TrainResult,
        best_state: Optional[Dict[str, np.ndarray]],
        epochs_since_best: int,
    ) -> TrainingState:
        """Snapshot everything the run needs to continue bit-exactly."""
        rng_states = {"trainer": self._rng.bit_generator.state}
        rng_states["model"] = collect_rng_states(self.model)
        return TrainingState(
            epoch=epoch,
            model_state=self.model.state_dict(),
            optimizer_state=self.optimizer.state_dict(),
            rng_states=rng_states,
            best_state=best_state,
            best_auc=result.best_auc,
            epochs_since_best=epochs_since_best,
            history=[asdict(record) for record in result.history],
        )

    def _restore_state(self, state: TrainingState, result: TrainResult) -> tuple:
        """Inverse of :meth:`_capture_state`; returns resume bookkeeping."""
        self.model.load_state_dict(state.model_state)
        self.optimizer.load_state_dict(state.optimizer_state)
        self._rng.bit_generator.state = state.rng_states["trainer"]
        restore_rng_states(self.model, state.rng_states.get("model", {}))
        result.best_auc = state.best_auc
        result.history = [EpochRecord(**record) for record in state.history]
        return state.epoch + 1, state.best_state, state.epochs_since_best

    @staticmethod
    def _resolve_resume(resume_from) -> TrainingState:
        if isinstance(resume_from, TrainingState):
            return resume_from
        if isinstance(resume_from, CheckpointManager):
            return resume_from.load()
        if isinstance(resume_from, str):
            import os

            if os.path.isdir(resume_from):
                return CheckpointManager(resume_from).load()
            directory = os.path.dirname(resume_from) or "."
            return CheckpointManager(directory).load(resume_from)
        raise TypeError(f"cannot resume from {type(resume_from).__name__}")

    def fit(
        self,
        graph: HeteroGraph,
        train_nodes: Sequence[int],
        eval_nodes: Optional[Sequence[int]] = None,
        checkpoint: Optional[Union[CheckpointManager, str]] = None,
        resume_from: Optional[Union[TrainingState, CheckpointManager, str]] = None,
    ) -> TrainResult:
        """Train with optional per-epoch evaluation and early stopping.

        ``checkpoint`` (a :class:`CheckpointManager` or a directory
        path) writes a crash-safe checkpoint after every epoch.
        ``resume_from`` (a checkpoint file, directory, manager, or
        :class:`TrainingState`) restores a previous run — model,
        optimizer moments, RNG streams, and early-stopping counters —
        so the resumed run is bit-identical to an uninterrupted one.
        """
        manager = CheckpointManager(checkpoint) if isinstance(checkpoint, str) else checkpoint
        result = TrainResult()
        best_state = None
        epochs_since_best = 0
        start_epoch = 0
        if resume_from is not None:
            start_epoch, best_state, epochs_since_best = self._restore_state(
                self._resolve_resume(resume_from), result
            )
        with timed(self.tracer, "fit", epochs=self.config.epochs):
            for epoch in range(start_epoch, self.config.epochs):
                # Early stopping is checked at the top of the iteration so a
                # resumed run makes the identical decision an uninterrupted
                # run made after the checkpointed epoch.
                if eval_nodes is not None and epochs_since_best >= self.config.patience:
                    break
                with timed(self.tracer, "epoch", epoch=epoch) as timer:
                    loss = self.train_epoch(graph, train_nodes)
                record = EpochRecord(epoch=epoch, loss=loss, seconds=timer.seconds)

                if eval_nodes is not None and len(eval_nodes):
                    with timed(self.tracer, "evaluate", epoch=epoch):
                        scores = self.model.predict_proba(graph, eval_nodes)
                        labels = graph.labels[np.asarray(eval_nodes, dtype=np.int64)]
                        record.eval_auc = roc_auc(labels, scores, default=None)
                    if record.eval_auc is not None and record.eval_auc > result.best_auc:
                        result.best_auc = record.eval_auc
                        best_state = self.model.state_dict()
                        epochs_since_best = 0
                    else:
                        epochs_since_best += 1
                result.history.append(record)
                if self.config.verbose:
                    print(f"epoch {epoch}: loss={loss:.4f} auc={record.eval_auc}")
                if manager is not None:
                    manager.save(
                        self._capture_state(epoch, result, best_state, epochs_since_best)
                    )
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return result

    def evaluate(self, graph: HeteroGraph, nodes: Sequence[int]) -> Dict[str, float]:
        """Accuracy / AP / AUC on held-out labeled nodes (Table 7 row)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        scores = self.model.predict_proba(graph, nodes)
        labels = graph.labels[nodes]
        return {
            "accuracy": accuracy(labels, scores),
            "ap": average_precision(labels, scores),
            "auc": roc_auc(labels, scores, default=float("nan")),
        }


def measure_inference_time(
    model,
    graph: HeteroGraph,
    nodes: Sequence[int],
    batch_size: int = 640,
    sampled: bool = False,
) -> Dict[str, float]:
    """Per-batch inference timing (Table 3's inference column).

    When ``sampled`` is true and the model exposes
    ``predict_proba_sampled``, the production path — neighbourhood
    sampling followed by scoring — is measured instead of full-graph
    scoring.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    times: List[float] = []
    for batch in batched(nodes, batch_size):
        with timed(name="inference_batch") as timer:
            if sampled and hasattr(model, "predict_proba_sampled"):
                model.predict_proba_sampled(graph, batch)
            else:
                model.predict_proba(graph, batch)
        times.append(timer.seconds)
    summary = {
        "mean_s_per_batch": float(np.mean(times)),
        "std_s_per_batch": float(np.std(times)),
        "total_s": float(np.sum(times)),
        "batches": len(times),
    }
    summary.update(latency_percentiles(times))
    return summary
