"""Weight initialisers.

The paper initialises node/edge type embeddings with zeros and all
linear/attention weights with values drawn from uniform distributions
(Sec. 3.2.2); Xavier-style bounds are used so that forward variance is
preserved through deep stacks.
"""

from __future__ import annotations

import numpy as np


def zeros(shape: tuple) -> np.ndarray:
    """All-zero weights (the paper's type-embedding init)."""
    return np.zeros(shape, dtype=np.float64)


def uniform(shape: tuple, low: float, high: float, rng: np.random.Generator) -> np.ndarray:
    """Uniform weights in [low, high)."""
    return rng.uniform(low, high, size=shape)


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for 2-D weight matrices."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[0], shape[1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation (suits ReLU stacks in the FFN head)."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)
