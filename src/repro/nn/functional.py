"""Stateless neural-network functions built on the autograd engine.

Activation functions, normalisations, dropout, and the loss functions
used by the detector (softmax cross entropy, eq. 11) and the explainer
(binary entropy regularisers, eqs. 12–13).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor

EPSILON = 1e-12


def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """LeakyReLU used inside GAT attention scoring."""
    positive = x.relu()
    negative = (-x).relu() * (-negative_slope)
    return positive + negative


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """ELU — the activation of the original GAT layer."""
    from .tensor import where

    negative_part = ((-(-x).relu()).exp() - 1.0) * alpha
    return where(x.data > 0, x, negative_part)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: at train time zero a fraction and rescale."""
    if not training or rate <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the trailing feature dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalised = centered / ((variance + eps) ** 0.5)
    return normalised * weight + bias


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross entropy against integer class labels.

    This is the detector loss of the paper (eq. 11): the cross entropy
    of the true label and the probability score calculated by softmax.
    """
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(labels)), labels]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable BCE on raw logits."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    # log(1 + exp(-|x|)) + max(x, 0) - x*t  is the stable formulation.
    abs_logits = Tensor(np.abs(logits.data))
    softplus = ((-abs_logits).exp() + 1.0).log()
    max_part = logits.relu()
    return (softplus + max_part - logits * targets_t).mean()


def bernoulli_entropy(probabilities: Tensor, eps: float = 1e-12) -> Tensor:
    """Elementwise entropy ``-p log p - (1-p) log (1-p)``.

    Used as the mask-entropy regulariser of the modified GNNExplainer
    (eqs. 12 and 13 of the paper's Appendix D).
    """
    p = probabilities
    return -(p * (p + eps).log()) - ((1.0 - p) * (1.0 - p + eps).log())


def mse(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()
