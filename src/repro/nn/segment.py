"""Segment operations — the message-passing kernels of the GNN stack.

A GNN layer computes, for each target node, an aggregation over a
variable-sized set of incoming edges. Representing that as dense
matrices would be quadratic in graph size; instead every model in this
repository flattens the edge set into arrays indexed by ``segment_ids``
(the target node of each edge) and uses the kernels here:

``gather``            rows of a node matrix for each edge endpoint,
``segment_sum``       sum edge messages into target nodes,
``segment_mean``      mean aggregation (used by the GEM baseline),
``segment_softmax``   per-target-node softmax over incoming attention
                      logits (eq. 9 of the paper),
``segment_max``       numerical-stability helper.

All kernels are differentiable through the autograd engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from .tensor import Tensor


def scatter_add_rows(values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
    """``out[index[i]] += values[i]`` as a sparse matmul.

    ``np.add.at`` performs the same reduction but through a slow
    element-wise inner loop; routing it through a one-hot CSR matrix
    keeps the hot path of every GNN layer in BLAS-speed code.
    """
    index = np.asarray(index, dtype=np.int64)
    if values.ndim == 1:
        return np.bincount(index, weights=values, minlength=num_rows)
    num_values = len(index)
    flat = values.reshape(num_values, -1)
    one_hot = sparse.csr_matrix(
        (np.ones(num_values), (index, np.arange(num_values))),
        shape=(num_rows, num_values),
    )
    out = one_hot @ flat
    return np.asarray(out).reshape((num_rows,) + values.shape[1:])


def gather(source: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``source[index]`` with gradient scatter-add back."""
    index = np.asarray(index, dtype=np.int64)
    out_data = source.data[index]

    def backward(grad: np.ndarray) -> None:
        if source.requires_grad:
            source._accumulate(scatter_add_rows(grad, index, len(source.data)))

    return Tensor._make(out_data, (source,), backward)


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    ``segment_ids`` maps each row of ``values`` to its output bucket; the
    ids do not need to be sorted. Empty buckets receive zeros.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = scatter_add_rows(values.data, segment_ids, num_segments)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (values,), backward)


def segment_count(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows per segment (plain ndarray; not differentiable)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    return np.bincount(segment_ids, minlength=num_segments).astype(np.float64)


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments stay zero."""
    counts = segment_count(segment_ids, num_segments)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(values, segment_ids, num_segments)
    inverse = 1.0 / counts
    return summed * Tensor(inverse.reshape((-1,) + (1,) * (summed.ndim - 1)))


def segment_max_data(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Per-segment max of raw data (used to stabilise the softmax)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + values.shape[1:]
    out = np.full(out_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out, segment_ids, values)
    # Segments with no members keep -inf; replace so later subtraction
    # does not produce NaNs for them (they have no rows anyway).
    out[np.isinf(out)] = 0.0
    return out


def segment_softmax(
    logits: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
) -> Tensor:
    """Softmax of ``logits`` normalised within each segment.

    This implements the per-target-node attention normalisation of
    eq. 9: for every target node, the attention scores of its incoming
    edges sum to one. Works for 1-D logits or 2-D (edges, heads) logits.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    maxima = segment_max_data(logits.data, segment_ids, num_segments)
    shifted = logits - Tensor(maxima[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    denom_per_edge = gather(denom, segment_ids)
    return exp / (denom_per_edge + 1e-16)


def scatter_rows(
    values: Tensor,
    index: np.ndarray,
    num_rows: int,
    base: Optional[np.ndarray] = None,
) -> Tensor:
    """Place row ``i`` of ``values`` at output row ``index[i]``.

    Rows not covered by ``index`` are taken from ``base`` (zeros by
    default). Duplicate indices accumulate, matching scatter-add
    semantics.
    """
    index = np.asarray(index, dtype=np.int64)
    out_data = scatter_add_rows(values.data, index, num_rows)
    if base is not None:
        out_data = out_data + np.asarray(base, dtype=np.float64)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[index])

    return Tensor._make(out_data, (values,), backward)
