"""Reverse-mode automatic differentiation on top of numpy.

This module is the compute substrate for every model in the repository
(the xFraud detector, the GAT and GEM baselines, and the GNNExplainer).
It provides a :class:`Tensor` that records the operations applied to it
and can back-propagate gradients through the resulting graph.

The design mirrors the usual define-by-run engines: each ``Tensor``
optionally holds a backward closure and references to its parents.
Calling :meth:`Tensor.backward` performs a topological sort of the graph
and accumulates gradients into every tensor created with
``requires_grad=True``.

Only float64 is used for data so that the numerical gradient checks in
the test suite can use tight tolerances.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


class no_grad:
    """Context manager that disables graph construction.

    Used during evaluation/inference so that forward passes do not
    accumulate backward closures (mirrors ``torch.no_grad``).
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _grad_enabled
        _grad_enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for backprop."""
    return _grad_enabled


def _as_array(value: ArrayLike) -> np.ndarray:
    array = np.asarray(value, dtype=np.float64)
    return array


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (undo numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        When true, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        _parents: Iterable["Tensor"] = (),
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward = _backward
        self._parents = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        if requires:
            return Tensor(data, requires_grad=True, _backward=backward, _parents=parents)
        return Tensor(data)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy: the incoming buffer may be shared with another
            # consumer's backward or with forward activations.
            self.grad = np.array(np.broadcast_to(grad, self.data.shape), dtype=np.float64)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order via iterative DFS (recursion-free: graphs from
        # deep GNNs can exceed Python's recursion limit).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return (-self) + other

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
                )

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix / shape ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data).reshape(self.shape))
                else:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other_t.data, -1, -2), self.shape)
                    )
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad).reshape(other_t.shape))
                else:
                    other_t._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other_t.shape)
                    )

        return Tensor._make(out_data, (self, other_t), backward)

    __matmul__ = matmul

    def transpose(self, *axes: int) -> "Tensor":
        order = axes if axes else tuple(reversed(range(self.ndim)))
        inverse = np.argsort(order)
        out_data = self.data.transpose(order)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(grad, self.shape).copy())
            else:
                expanded = grad if keepdims else np.expand_dims(grad, axis)
                self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == out_data).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = (self.data == expanded).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                grad_expanded = grad if keepdims else np.expand_dims(grad, axis)
                self._accumulate(mask * grad_expanded)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities (core set; more in functional.py)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``a`` where condition is true else ``b``."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(_unbroadcast(grad * cond, a_t.shape))
        if b_t.requires_grad:
            b_t._accumulate(_unbroadcast(grad * ~cond, b_t.shape))

    return Tensor._make(out_data, (a_t, b_t), backward)
