"""Optimisers and gradient utilities.

The paper trains every model with AdamW and gradient-norm clipping at
0.25 (Appendix C hyperparameters); SGD and Adam are provided for the
test suite and ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the norm observed before clipping, matching the torch API.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / (total + 1e-12)
        for param in params:
            param.grad *= scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- (de)serialisation: required for checkpoint/resume ---------------
    def state_dict(self) -> Dict:
        """Optimiser state (learning rate plus subclass moments)."""
        return {"lr": float(self.lr)}

    def load_state_dict(self, state: Dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    def _check_moment_list(self, arrays: List[np.ndarray], name: str) -> List[np.ndarray]:
        if len(arrays) != len(self.parameters):
            raise ValueError(
                f"optimizer state {name!r} holds {len(arrays)} arrays "
                f"for {len(self.parameters)} parameters"
            )
        out = []
        for array, param in zip(arrays, self.parameters):
            array = np.asarray(array)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"optimizer state {name!r} shape {array.shape} does not "
                    f"match parameter shape {param.data.shape}"
                )
            out.append(array.copy())
        return out


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self.momentum and self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + param.grad
                param.data -= self.lr * self._velocity[i]
            else:
                param.data -= self.lr * param.grad

    def state_dict(self) -> Dict:
        state = super().state_dict()
        if self._velocity is not None:
            state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        velocity = state.get("velocity")
        self._velocity = (
            self._check_moment_list(list(velocity), "velocity") if velocity is not None else None
        )


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, param: Parameter, index: int, grad: np.ndarray) -> None:
        self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
        self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
        m_hat = self._m[index] / (1 - self.beta1**self._step)
        v_hat = self._v[index] / (1 - self.beta2**self._step)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self._step += 1
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._update(param, i, grad)

    def state_dict(self) -> Dict:
        """First/second moments plus the bias-correction step count."""
        state = super().state_dict()
        state["step"] = int(self._step)
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._step = int(state["step"])
        self._m = self._check_moment_list(list(state["m"]), "m")
        self._v = self._check_moment_list(list(state["v"]), "v")


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    This is the optimiser the paper uses ("optimizer = adamw").
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        self._step += 1
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            # Decoupled decay applies directly to weights, not the grad.
            if self.decoupled_weight_decay:
                param.data -= self.lr * self.decoupled_weight_decay * param.data
            self._update(param, i, param.grad)


class CosineDecay:
    """Cosine learning-rate schedule over a fixed horizon."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.min_lr = min_lr
        self._step = 0

    def step(self) -> float:
        self._step = min(self._step + 1, self.total_steps)
        fraction = self._step / self.total_steps
        lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * fraction))
        self.optimizer.lr = lr
        return lr
