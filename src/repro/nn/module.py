"""Module system: parameter containers mirroring the torch.nn API surface.

Modules register :class:`Parameter` objects and child modules by
attribute assignment; ``parameters()`` / ``named_parameters()`` walk the
tree, and ``state_dict`` / ``load_state_dict`` support the simulated
distributed trainer's replica synchronisation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor flagged as trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all models and layers."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- attribute plumbing --------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) over the module tree."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- (de)serialisation ----------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters in place; names and shapes must match."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}")
            param.data[...] = state[name]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(param.size for param in self.parameters())

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the last dimension with affine params."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout governed by the module training flag."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self._rng)


class Embedding(Module):
    """Lookup table of learnable row vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        zero_init: bool = False,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        if zero_init:
            # The paper initialises node/edge *type* embeddings at zero.
            table = init.zeros((num_embeddings, embedding_dim))
        else:
            table = init.xavier_uniform((num_embeddings, embedding_dim), rng)
        self.weight = Parameter(table)

    def forward(self, index: np.ndarray) -> Tensor:
        from .segment import gather

        return gather(self.weight, np.asarray(index, dtype=np.int64))


class ModuleList(Module):
    """Indexable container of sub-modules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class ModuleDict(Module):
    """String-keyed container of sub-modules (per-node-type linears)."""

    def __init__(self, modules: Optional[Dict[str, Module]] = None) -> None:
        super().__init__()
        if modules:
            for key, module in modules.items():
                self[key] = module

    def __setitem__(self, key: str, module: Module) -> None:
        self._modules[key] = module

    def __getitem__(self, key: str) -> Module:
        return self._modules[key]

    def __contains__(self, key: str) -> bool:
        return key in self._modules

    def keys(self):
        return self._modules.keys()

    def items(self):
        return self._modules.items()


class Sequential(Module):
    """Apply contained modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            index = len(self._items)
            self._items.append(module)
            self._modules[str(index)] = module

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x


class ReLU(Module):
    """Stateless ReLU layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Stateless tanh layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
