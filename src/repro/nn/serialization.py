"""Model persistence: save/load parameter state as ``.npz`` archives.

The production scenario of Appendix H.5 (daily incremental updates,
combining historical and fresh models) needs trained detectors to be
stored and reloaded; this module provides that without pickle (the
archive holds only arrays plus a manifest).
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict

import numpy as np

from .module import Module

_MANIFEST_KEY = "__manifest__"


def _array_crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def save_state(model: Module, path: str) -> str:
    """Write a model's parameters to ``path`` (``.npz`` appended if
    missing). Returns the path written."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    state = model.state_dict()
    manifest = {
        "format": "repro-state-v1",
        "num_parameters": int(sum(array.size for array in state.values())),
        "keys": sorted(state),
        "crc32": {key: _array_crc(array) for key, array in state.items()},
    }
    payload: Dict[str, np.ndarray] = dict(state)
    payload[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(path, **payload)
    return path


def load_state(model: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_state` into ``model``.

    The model's architecture must match (same parameter names and
    shapes); mismatches raise KeyError / ValueError via
    ``load_state_dict``.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    if not os.path.exists(path):
        raise FileNotFoundError(f"no model state archive at {path}")
    with np.load(path) as archive:
        manifest_raw = archive.get(_MANIFEST_KEY)
        if manifest_raw is None:
            raise ValueError(f"{path} is not a repro state archive")
        manifest = json.loads(bytes(manifest_raw.tobytes()).decode("utf-8"))
        if manifest.get("format") != "repro-state-v1":
            raise ValueError(f"unsupported state format {manifest.get('format')!r}")
        state = {key: archive[key] for key in archive.files if key != _MANIFEST_KEY}
    # Checksums were added for crash-safety; archives written before
    # then simply skip verification.
    for key, expected in manifest.get("crc32", {}).items():
        if key in state and _array_crc(state[key]) != expected:
            raise ValueError(f"{path}: checksum mismatch for {key!r} (corrupt archive)")
    model.load_state_dict(state)
    return model


def read_manifest(path: str) -> Dict:
    """Read only the manifest of a saved state (cheap inspection)."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        manifest_raw = archive.get(_MANIFEST_KEY)
        if manifest_raw is None:
            raise ValueError(f"{path} is not a repro state archive")
        return json.loads(bytes(manifest_raw.tobytes()).decode("utf-8"))
