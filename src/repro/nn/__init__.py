"""repro.nn — numpy autograd + neural-network substrate.

Everything the xFraud detector, the GAT/GEM baselines, and the
GNNExplainer need to express eqs. 2–13 of the paper: tensors with
reverse-mode autodiff, segment (message-passing) kernels, layers,
losses, and optimisers.
"""

from . import functional
from .init import kaiming_uniform, uniform, xavier_uniform, zeros
from .module import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from .optim import Adam, AdamW, CosineDecay, Optimizer, SGD, clip_grad_norm
from .serialization import load_state, read_manifest, save_state
from .segment import (
    gather,
    scatter_rows,
    segment_count,
    segment_max_data,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from .tensor import Tensor, concat, is_grad_enabled, no_grad, stack, where

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "ModuleList",
    "ModuleDict",
    "Sequential",
    "ReLU",
    "Tanh",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "CosineDecay",
    "clip_grad_norm",
    "gather",
    "scatter_rows",
    "segment_sum",
    "segment_mean",
    "segment_count",
    "segment_softmax",
    "segment_max_data",
    "save_state",
    "load_state",
    "read_manifest",
    "zeros",
    "uniform",
    "xavier_uniform",
    "kaiming_uniform",
]
