"""Neighbour samplers: GraphSAGE-style (detector+) and HGSampling (HGT).

The paper's ablation (Sec. 3.2.3, Figure 10) contrasts two samplers
behind the same heterogeneous convolution:

* :class:`SageSampler` — detector+: sample the k-hop neighbourhood of
  each target node keeping at most ``fanout`` neighbours per node per
  hop. Cheap, and well matched to the sparse transaction graphs
  (≈1.5–2 edges/node).
* :class:`HGSampler` — the HGSampling algorithm used by HGT: keeps a
  per-node-type *budget* of candidate nodes scored by normalised-degree
  importance and repeatedly samples a fixed number of nodes **per
  type** per step, so the sampled subgraph has similar counts of every
  node/edge type. On sparse graphs this wastes work maintaining
  budgets for rare types — the 5–7× inference-time gap of Figure 10.

Both return a :class:`SampledSubgraph`: the induced typed subgraph plus
the positions of the requested target nodes inside it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .hetero import NODE_TYPES, HeteroGraph


@dataclass
class SampledSubgraph:
    """A sampled neighbourhood ready for the model forward pass."""

    graph: HeteroGraph
    target_local: np.ndarray
    original_ids: np.ndarray

    @property
    def num_targets(self) -> int:
        return len(self.target_local)


class _SamplerMetrics:
    """Opt-in hop counters + latency histograms shared by both samplers.

    ``instrument(registry)`` registers the shared metric family
    (``sampler_hops_total``, ``sampler_hop_seconds``,
    ``sampler_sample_seconds``, all labelled by sampler kind) against a
    :class:`repro.obs.registry.MetricsRegistry`. Uninstrumented
    samplers pay a single ``is None`` check per call, so the default
    path stays as fast as before.
    """

    _metric_label: str = "sampler"

    def __init__(self) -> None:
        self._hops_total = None
        self._hop_seconds = None
        self._sample_seconds = None
        self._metrics_clock = time.perf_counter

    def instrument(self, registry, clock=None) -> "_SamplerMetrics":
        """Attach hop/latency metrics; returns self for chaining."""
        self._hops_total = registry.counter(
            "sampler_hops_total",
            "Neighbour-sampling hops (or budget steps) executed.",
            labels=("sampler",),
        )
        self._hop_seconds = registry.histogram(
            "sampler_hop_seconds",
            "Latency of one sampling hop / budget step.",
            labels=("sampler",),
        )
        self._sample_seconds = registry.histogram(
            "sampler_sample_seconds",
            "End-to-end latency of one sample() call.",
            labels=("sampler",),
        )
        if clock is not None:
            self._metrics_clock = clock
        return self

    def _record_hop(self, seconds: float) -> None:
        if self._hops_total is not None:
            self._hops_total.inc(sampler=self._metric_label)
            self._hop_seconds.observe(seconds, sampler=self._metric_label)

    def _record_sample(self, seconds: float) -> None:
        if self._sample_seconds is not None:
            self._sample_seconds.observe(seconds, sampler=self._metric_label)


class SageSampler(_SamplerMetrics):
    """k-hop capped neighbourhood sampling (GraphSAGE style)."""

    _metric_label = "sage"

    def __init__(self, hops: int = 2, fanout: int = 10, seed: int = 0) -> None:
        super().__init__()
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.hops = hops
        self.fanout = fanout
        self.rng = np.random.default_rng(seed)

    def sample(
        self, graph: HeteroGraph, targets: Sequence[int], deadline=None
    ) -> SampledSubgraph:
        """k-hop capped neighbourhood of the targets as a subgraph.

        ``deadline`` is an optional duck-typed budget (anything with a
        ``check(stage)`` method, e.g. :class:`repro.serving.Deadline`);
        it is checked once per hop, so an online request overruns its
        budget by at most one sampling step.
        """
        instrumented = self._sample_seconds is not None
        sample_started = self._metrics_clock() if instrumented else 0.0
        targets = np.asarray(targets, dtype=np.int64)
        visited: Dict[int, None] = {int(t): None for t in targets}
        frontier = list(visited.keys())
        for hop in range(self.hops):
            if deadline is not None:
                deadline.check(f"sampling hop {hop}")
            hop_started = self._metrics_clock() if instrumented else 0.0
            next_frontier: List[int] = []
            for node in frontier:
                neighbors = graph.in_neighbors(node)
                if len(neighbors) > self.fanout:
                    neighbors = self.rng.choice(neighbors, size=self.fanout, replace=False)
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    if neighbor not in visited:
                        visited[neighbor] = None
                        next_frontier.append(neighbor)
            frontier = next_frontier
            if instrumented:
                self._record_hop(self._metrics_clock() - hop_started)
        result = _induce(graph, np.fromiter(visited.keys(), dtype=np.int64), targets)
        if instrumented:
            self._record_sample(self._metrics_clock() - sample_started)
        return result


class HGSampler(_SamplerMetrics):
    """HGSampling: type-balanced importance sampling (HGT, Alg. 2).

    Maintains one budget per node type. Each candidate's score is the
    sum over sampled neighbours of ``1 / degree``, squared at sampling
    time to favour nodes tightly connected to the sampled set. Each of
    ``depth`` steps draws up to ``width`` nodes *for every node type*,
    which forces similar per-type counts in the output subgraph.
    """

    _metric_label = "hg"

    def __init__(self, depth: int = 2, width: int = 8, seed: int = 0) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if width < 1:
            raise ValueError("width must be >= 1")
        self.depth = depth
        self.width = width
        self.rng = np.random.default_rng(seed)

    def sample(
        self, graph: HeteroGraph, targets: Sequence[int], deadline=None
    ) -> SampledSubgraph:
        """Type-balanced budget sampling around the targets (HGT).

        ``deadline`` (optional, duck-typed — see
        :meth:`SageSampler.sample`) is checked once per depth step.
        """
        instrumented = self._sample_seconds is not None
        sample_started = self._metrics_clock() if instrumented else 0.0
        targets = np.asarray(targets, dtype=np.int64)
        degree = np.maximum(graph.degree(), 1)
        sampled: Dict[int, None] = {int(t): None for t in targets}
        budgets: List[Dict[int, float]] = [dict() for _ in NODE_TYPES]

        def add_to_budget(node: int) -> None:
            """Push the neighbours of a newly sampled node into budgets."""
            for neighbor in graph.in_neighbors(node):
                neighbor = int(neighbor)
                if neighbor in sampled:
                    continue
                budget = budgets[graph.node_type[neighbor]]
                budget[neighbor] = budget.get(neighbor, 0.0) + 1.0 / float(degree[node])

        for target in sampled:
            add_to_budget(target)

        for step in range(self.depth):
            if deadline is not None:
                deadline.check(f"sampling step {step}")
            step_started = self._metrics_clock() if instrumented else 0.0
            newly_sampled: List[int] = []
            for type_budget in budgets:
                if not type_budget:
                    continue
                candidates = np.fromiter(type_budget.keys(), dtype=np.int64)
                scores = np.fromiter(type_budget.values(), dtype=np.float64) ** 2
                total = scores.sum()
                if total <= 0:
                    probabilities = np.full(len(candidates), 1.0 / len(candidates))
                else:
                    probabilities = scores / total
                count = min(self.width, len(candidates))
                chosen = self.rng.choice(candidates, size=count, replace=False, p=probabilities)
                newly_sampled.extend(int(c) for c in chosen)
            for node in newly_sampled:
                sampled[node] = None
                budgets[graph.node_type[node]].pop(node, None)
            for node in newly_sampled:
                add_to_budget(node)
            if instrumented:
                self._record_hop(self._metrics_clock() - step_started)

        result = _induce(graph, np.fromiter(sampled.keys(), dtype=np.int64), targets)
        if instrumented:
            self._record_sample(self._metrics_clock() - sample_started)
        return result


def _induce(graph: HeteroGraph, nodes: np.ndarray, targets: np.ndarray) -> SampledSubgraph:
    subgraph, original_ids = graph.subgraph(nodes)
    position = {int(node): i for i, node in enumerate(original_ids)}
    target_local = np.array([position[int(t)] for t in targets], dtype=np.int64)
    return SampledSubgraph(graph=subgraph, target_local=target_local, original_ids=original_ids)


def batched(items: np.ndarray, batch_size: int) -> List[np.ndarray]:
    """Split an index array into consecutive batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [items[i : i + batch_size] for i in range(0, len(items), batch_size)]
