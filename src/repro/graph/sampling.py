"""Neighbour samplers: GraphSAGE-style (detector+) and HGSampling (HGT).

The paper's ablation (Sec. 3.2.3, Figure 10) contrasts two samplers
behind the same heterogeneous convolution:

* :class:`SageSampler` — detector+: sample the k-hop neighbourhood of
  each target node keeping at most ``fanout`` neighbours per node per
  hop. Cheap, and well matched to the sparse transaction graphs
  (≈1.5–2 edges/node).
* :class:`HGSampler` — the HGSampling algorithm used by HGT: keeps a
  per-node-type *budget* of candidate nodes scored by normalised-degree
  importance and repeatedly samples a fixed number of nodes **per
  type** per step, so the sampled subgraph has similar counts of every
  node/edge type. On sparse graphs this wastes work maintaining
  budgets for rare types — the 5–7× inference-time gap of Figure 10.

Both return a :class:`SampledSubgraph`: the induced typed subgraph plus
the positions of the requested target nodes inside it.

Fast path / reference path contract
-----------------------------------
Each sampler ships two implementations of the same algorithm:

* the **vectorized fast path** (default) — frontier expansion as CSR
  array gathers (``indptr``/``indices`` slices, segment top-k via
  ``np.lexsort``, ``np.unique`` dedup) with no per-node Python loop;
* the **scalar reference path** (``reference=True``) — the original
  node-at-a-time walk, kept as the executable specification the
  equivalence tests in ``tests/test_fastpath.py`` compare against.

Both paths draw their randomness from the same *stateless* hash
(splitmix64 over ``(seed, edge-position)`` for SAGE fanout capping,
``(seed, step, node)`` exponential races for HGSampling's weighted
draws), so for a fixed seed they return **identical**
:class:`SampledSubgraph` objects — nodes, edges, and target positions.
Statelessness also means ``sample()`` is a pure function of
``(graph, targets, config)``: repeated calls agree, which is what makes
:class:`~repro.graph.cache.SubgraphCache` sound and online verdicts
reproducible. Node order is canonical — the unique targets in request
order, then every other sampled node ascending.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..util import batched  # noqa: F401  (historical home; re-exported)
from .hetero import NODE_TYPES, HeteroGraph

_EMPTY = np.zeros(0, dtype=np.int64)

# -- stateless hashing (splitmix64) ------------------------------------
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_MASK64 = (1 << 64) - 1


def _mix64(values: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = values.astype(np.uint64, copy=True) + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _MIX_1
    z = (z ^ (z >> np.uint64(27))) * _MIX_2
    return z ^ (z >> np.uint64(31))


def _salt(*parts: int) -> np.uint64:
    """Fold integers into one uint64 salt (order-sensitive)."""
    acc = np.uint64(0)
    for part in parts:
        acc = _mix64(np.array([acc ^ np.uint64(part & _MASK64)], dtype=np.uint64))[0]
    return acc


def _hash_uniform(ids: np.ndarray, salt: np.uint64) -> np.ndarray:
    """Deterministic uniforms in (0, 1] keyed by ``(ids, salt)``.

    The same ``(id, salt)`` always yields the same draw, which is the
    mechanism that makes the scalar and vectorized sampler paths agree
    bit-for-bit: both ask this function the same questions.
    """
    mixed = _mix64(np.asarray(ids, dtype=np.int64).astype(np.uint64) ^ salt)
    return ((mixed >> np.uint64(11)).astype(np.float64) + 1.0) * 2.0**-53


def _first_occurrence_unique(values: np.ndarray) -> np.ndarray:
    """Unique values in order of first appearance."""
    if len(values) == 0:
        return _EMPTY
    _, first = np.unique(values, return_index=True)
    return values[np.sort(first)]


def _concat_csr_slices(
    indptr: np.ndarray, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated CSR positions of the in-edges of ``nodes``.

    Returns ``(positions, counts)`` where ``positions`` walks each
    node's ``indptr[v]:indptr[v+1]`` slice in order — the flat gather
    behind every vectorized frontier expansion here.
    """
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, counts
    offsets = np.cumsum(counts) - counts
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )
    return positions, counts


@dataclass
class SampledSubgraph:
    """A sampled neighbourhood ready for the model forward pass."""

    graph: HeteroGraph
    target_local: np.ndarray
    original_ids: np.ndarray

    @property
    def num_targets(self) -> int:
        return len(self.target_local)


def stack_subgraphs(parts: Sequence[SampledSubgraph]) -> SampledSubgraph:
    """Disjoint (block-diagonal) union of sampled subgraphs.

    Node ids of each part are shifted past the previous parts' ranges,
    so the combined graph has no edges between components: a forward
    pass over it computes, per target, exactly what a forward over that
    target's own subgraph would. That is what lets micro-batched
    serving keep ONE model forward per rung while staying
    score-identical to sequential scoring — coalescing requests into a
    single *shared* sample would instead leak each request's sampled
    neighbourhood into the others' attention normalisation (the
    induced union carries cross-target edges), making a transaction's
    score depend on which requests happened to ride its batch.

    ``original_ids`` may repeat across components (two targets sampling
    the same hub); that is fine — components are disjoint, and feature
    hydration simply writes the same row into each copy.
    """
    if not parts:
        raise ValueError("need at least one subgraph to stack")
    if len(parts) == 1:
        return parts[0]
    sizes = [part.graph.num_nodes for part in parts]
    offsets = np.concatenate([[0], np.cumsum(sizes[:-1])]).astype(np.int64)
    graph = HeteroGraph(
        node_type=np.concatenate([part.graph.node_type for part in parts]),
        edge_src=np.concatenate(
            [part.graph.edge_src + off for part, off in zip(parts, offsets)]
        ),
        edge_dst=np.concatenate(
            [part.graph.edge_dst + off for part, off in zip(parts, offsets)]
        ),
        edge_type=np.concatenate([part.graph.edge_type for part in parts]),
        txn_features=np.concatenate(
            [part.graph.txn_features for part in parts], axis=0
        ),
        labels=np.concatenate([part.graph.labels for part in parts]),
    )
    return SampledSubgraph(
        graph=graph,
        target_local=np.concatenate(
            [part.target_local + off for part, off in zip(parts, offsets)]
        ),
        original_ids=np.concatenate([part.original_ids for part in parts]),
    )


class _SamplerMetrics:
    """Opt-in hop counters + latency histograms shared by both samplers.

    ``instrument(registry)`` registers the shared metric family
    (``sampler_hops_total``, ``sampler_hop_seconds``,
    ``sampler_sample_seconds``, all labelled by sampler kind) against a
    :class:`repro.obs.registry.MetricsRegistry`. Uninstrumented
    samplers pay a single ``is None`` check per call, so the default
    path stays as fast as before.
    """

    _metric_label: str = "sampler"

    def __init__(self) -> None:
        self._hops_total = None
        self._hop_seconds = None
        self._sample_seconds = None
        self._metrics_clock = time.perf_counter

    def instrument(self, registry, clock=None) -> "_SamplerMetrics":
        """Attach hop/latency metrics; returns self for chaining."""
        self._hops_total = registry.counter(
            "sampler_hops_total",
            "Neighbour-sampling hops (or budget steps) executed.",
            labels=("sampler",),
        )
        self._hop_seconds = registry.histogram(
            "sampler_hop_seconds",
            "Latency of one sampling hop / budget step.",
            labels=("sampler",),
        )
        self._sample_seconds = registry.histogram(
            "sampler_sample_seconds",
            "End-to-end latency of one sample() call.",
            labels=("sampler",),
        )
        if clock is not None:
            self._metrics_clock = clock
        return self

    def _record_hop(self, seconds: float) -> None:
        if self._hops_total is not None:
            self._hops_total.inc(sampler=self._metric_label)
            self._hop_seconds.observe(seconds, sampler=self._metric_label)

    def _record_sample(self, seconds: float) -> None:
        if self._sample_seconds is not None:
            self._sample_seconds.observe(seconds, sampler=self._metric_label)


class SageSampler(_SamplerMetrics):
    """k-hop capped neighbourhood sampling (GraphSAGE style).

    ``reference=True`` switches to the scalar per-node walk (the
    executable spec); the default vectorized path returns identical
    subgraphs — see the module docstring for the contract.
    """

    _metric_label = "sage"

    def __init__(
        self, hops: int = 2, fanout: int = 10, seed: int = 0, reference: bool = False
    ) -> None:
        super().__init__()
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.hops = hops
        self.fanout = fanout
        self.seed = seed
        self.reference = reference
        self._edge_salt = _salt(seed)

    def cache_key(self) -> Tuple:
        """Configuration identity for :class:`~repro.graph.cache.SubgraphCache`."""
        return ("sage", self.hops, self.fanout, self.seed)

    def sample(
        self, graph: HeteroGraph, targets: Sequence[int], deadline=None
    ) -> SampledSubgraph:
        """k-hop capped neighbourhood of the targets as a subgraph.

        ``deadline`` is an optional duck-typed budget (anything with a
        ``check(stage)`` method, e.g. :class:`repro.serving.Deadline`);
        it is checked once per hop, so an online request overruns its
        budget by at most one sampling step.
        """
        instrumented = self._sample_seconds is not None
        sample_started = self._metrics_clock() if instrumented else 0.0
        targets = np.asarray(targets, dtype=np.int64)
        unique_targets = _first_occurrence_unique(targets)
        if self.reference:
            nodes = self._expand_reference(graph, unique_targets, deadline, instrumented)
        else:
            nodes = self._expand_fast(graph, unique_targets, deadline, instrumented)
        result = _induce(graph, nodes, targets)
        if instrumented:
            self._record_sample(self._metrics_clock() - sample_started)
        return result

    # -- fast path ------------------------------------------------------
    def _expand_fast(
        self, graph: HeteroGraph, unique_targets: np.ndarray, deadline, instrumented: bool
    ) -> np.ndarray:
        indptr, src_sorted, _ = graph.csr()
        visited = np.zeros(graph.num_nodes, dtype=bool)
        visited[unique_targets] = True
        frontier = unique_targets
        discovered: List[np.ndarray] = []
        for hop in range(self.hops):
            if deadline is not None:
                deadline.check(f"sampling hop {hop}")
            hop_started = self._metrics_clock() if instrumented else 0.0
            if len(frontier):
                kept = self._select_edges_fast(indptr, frontier)
                neighbors = src_sorted[kept]
                fresh = np.unique(neighbors[~visited[neighbors]])
                visited[fresh] = True
                discovered.append(fresh)
                frontier = fresh
            if instrumented:
                self._record_hop(self._metrics_clock() - hop_started)
        rest = np.sort(np.concatenate(discovered)) if discovered else _EMPTY
        return np.concatenate([unique_targets, rest])

    def _select_edges_fast(self, indptr: np.ndarray, frontier: np.ndarray) -> np.ndarray:
        """CSR positions of the ≤ ``fanout`` kept in-edges of every
        frontier node — the per-segment smallest hash keys, all at once."""
        positions, counts = _concat_csr_slices(indptr, frontier)
        total = len(positions)
        if total == 0:
            return _EMPTY
        if int(counts.max()) <= self.fanout:
            return positions
        keys = _hash_uniform(positions, self._edge_salt)
        segments = np.repeat(np.arange(len(frontier), dtype=np.int64), counts)
        order = np.lexsort((keys, segments))
        offsets = np.cumsum(counts) - counts
        rank = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        return positions[order][rank < self.fanout]

    # -- reference path -------------------------------------------------
    def _expand_reference(
        self, graph: HeteroGraph, unique_targets: np.ndarray, deadline, instrumented: bool
    ) -> np.ndarray:
        indptr, src_sorted, _ = graph.csr()
        visited: Dict[int, None] = {int(t): None for t in unique_targets}
        frontier = list(visited.keys())
        discovered: List[int] = []
        for hop in range(self.hops):
            if deadline is not None:
                deadline.check(f"sampling hop {hop}")
            hop_started = self._metrics_clock() if instrumented else 0.0
            next_frontier: List[int] = []
            for node in frontier:
                for position in self._select_edges_scalar(indptr, node):
                    neighbor = int(src_sorted[position])
                    if neighbor not in visited:
                        visited[neighbor] = None
                        next_frontier.append(neighbor)
            frontier = next_frontier
            discovered.extend(next_frontier)
            if instrumented:
                self._record_hop(self._metrics_clock() - hop_started)
        rest = np.sort(np.asarray(discovered, dtype=np.int64)) if discovered else _EMPTY
        return np.concatenate([unique_targets, rest])

    def _select_edges_scalar(self, indptr: np.ndarray, node: int) -> np.ndarray:
        start, end = int(indptr[node]), int(indptr[node + 1])
        positions = np.arange(start, end, dtype=np.int64)
        if end - start <= self.fanout:
            return positions
        keys = _hash_uniform(positions, self._edge_salt)
        return positions[np.argsort(keys, kind="stable")[: self.fanout]]


class HGSampler(_SamplerMetrics):
    """HGSampling: type-balanced importance sampling (HGT, Alg. 2).

    Maintains one budget per node type. Each candidate's score is the
    sum over sampled neighbours of ``1 / degree``, squared at sampling
    time to favour nodes tightly connected to the sampled set. Each of
    ``depth`` steps draws up to ``width`` nodes *for every node type*,
    which forces similar per-type counts in the output subgraph.

    Weighted draws use the Efraimidis–Spirakis exponential race
    (``-log(u) / w`` smallest-k) over the stateless hash, so the
    vectorized fast path and the ``reference=True`` scalar path select
    identical nodes for a fixed seed.
    """

    _metric_label = "hg"

    def __init__(
        self, depth: int = 2, width: int = 8, seed: int = 0, reference: bool = False
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if width < 1:
            raise ValueError("width must be >= 1")
        self.depth = depth
        self.width = width
        self.seed = seed
        self.reference = reference

    def cache_key(self) -> Tuple:
        """Configuration identity for :class:`~repro.graph.cache.SubgraphCache`."""
        return ("hg", self.depth, self.width, self.seed)

    def sample(
        self, graph: HeteroGraph, targets: Sequence[int], deadline=None
    ) -> SampledSubgraph:
        """Type-balanced budget sampling around the targets (HGT).

        ``deadline`` (optional, duck-typed — see
        :meth:`SageSampler.sample`) is checked once per depth step.
        """
        instrumented = self._sample_seconds is not None
        sample_started = self._metrics_clock() if instrumented else 0.0
        targets = np.asarray(targets, dtype=np.int64)
        unique_targets = _first_occurrence_unique(targets)
        if self.reference:
            nodes = self._expand_reference(graph, unique_targets, deadline, instrumented)
        else:
            nodes = self._expand_fast(graph, unique_targets, deadline, instrumented)
        result = _induce(graph, nodes, targets)
        if instrumented:
            self._record_sample(self._metrics_clock() - sample_started)
        return result

    def _draw(self, candidates: np.ndarray, weights: np.ndarray, step: int) -> np.ndarray:
        """Up to ``width`` candidates, weighted without replacement,
        returned ascending. Exponential-race keys over the stateless
        hash: identical picks for identical ``(candidates, weights,
        seed, step)`` regardless of candidate order."""
        uniforms = _hash_uniform(candidates, _salt(self.seed, step + 1))
        keys = -np.log(uniforms) / weights
        count = min(self.width, len(candidates))
        chosen = candidates[np.lexsort((candidates, keys))[:count]]
        return np.sort(chosen)

    # -- fast path ------------------------------------------------------
    def _expand_fast(
        self, graph: HeteroGraph, unique_targets: np.ndarray, deadline, instrumented: bool
    ) -> np.ndarray:
        indptr, src_sorted, _ = graph.csr()
        inverse_degree = 1.0 / np.maximum(graph.degree(), 1).astype(np.float64)
        num_nodes = graph.num_nodes
        score = np.zeros(num_nodes, dtype=np.float64)
        in_budget = np.zeros(num_nodes, dtype=bool)
        sampled = np.zeros(num_nodes, dtype=bool)
        sampled[unique_targets] = True
        node_type = graph.node_type
        # Budget membership tracked as an explicit id array (not a scan
        # of the N-sized masks) so each step costs O(|budget|), never
        # O(num_nodes) — the point of the fast path on a serving graph.
        members = _EMPTY

        def push(new_nodes: np.ndarray, members: np.ndarray) -> np.ndarray:
            """Vectorized budget update for freshly sampled nodes.

            ``np.add.at`` applies the additions in array order — the
            same order the scalar reference walks nodes and their CSR
            slices — so the accumulated float scores are bitwise equal
            between paths. Returns the grown membership array.
            """
            positions, counts = _concat_csr_slices(indptr, new_nodes)
            if len(positions) == 0:
                return members
            neighbors = src_sorted[positions]
            weights = np.repeat(inverse_degree[new_nodes], counts)
            live = ~sampled[neighbors]
            neighbors = neighbors[live]
            np.add.at(score, neighbors, weights[live])
            fresh = np.unique(neighbors[~in_budget[neighbors]])
            if len(fresh):
                in_budget[fresh] = True
                members = np.concatenate([members, fresh])
            return members

        members = push(unique_targets, members)
        discovered: List[np.ndarray] = []
        for step in range(self.depth):
            if deadline is not None:
                deadline.check(f"sampling step {step}")
            step_started = self._metrics_clock() if instrumented else 0.0
            if len(members):
                # One segmented weighted draw across every type at once:
                # sort by (type, race key, id) and keep the first
                # ``width`` of each type segment — identical picks to
                # the reference's per-type _draw calls.
                member_types = node_type[members]
                uniforms = _hash_uniform(members, _salt(self.seed, step + 1))
                keys = -np.log(uniforms) / score[members] ** 2
                order = np.lexsort((members, keys, member_types))
                counts = np.bincount(member_types, minlength=len(NODE_TYPES))
                present = counts[counts > 0]
                offsets = np.cumsum(present) - present
                rank = np.arange(len(members), dtype=np.int64) - np.repeat(
                    offsets, present
                )
                take = order[rank < self.width]
                chosen = members[take]
                # Reference emission order: type-major, id-ascending.
                new_nodes = chosen[np.lexsort((chosen, member_types[take]))]
                sampled[new_nodes] = True
                in_budget[new_nodes] = False
                score[new_nodes] = 0.0
                discovered.append(new_nodes)
                members = members[~sampled[members]]
                members = push(new_nodes, members)
            if instrumented:
                self._record_hop(self._metrics_clock() - step_started)
        rest = np.sort(np.concatenate(discovered)) if discovered else _EMPTY
        return np.concatenate([unique_targets, rest])

    # -- reference path -------------------------------------------------
    def _expand_reference(
        self, graph: HeteroGraph, unique_targets: np.ndarray, deadline, instrumented: bool
    ) -> np.ndarray:
        degree = np.maximum(graph.degree(), 1)
        sampled: Dict[int, None] = {int(t): None for t in unique_targets}
        budgets: List[Dict[int, float]] = [dict() for _ in NODE_TYPES]

        def add_to_budget(node: int) -> None:
            """Push the neighbours of a newly sampled node into budgets."""
            for neighbor in graph.in_neighbors(node):
                neighbor = int(neighbor)
                if neighbor in sampled:
                    continue
                budget = budgets[graph.node_type[neighbor]]
                budget[neighbor] = budget.get(neighbor, 0.0) + 1.0 / float(degree[node])

        for target in sampled:
            add_to_budget(target)

        discovered: List[int] = []
        for step in range(self.depth):
            if deadline is not None:
                deadline.check(f"sampling step {step}")
            step_started = self._metrics_clock() if instrumented else 0.0
            newly_sampled: List[int] = []
            for type_budget in budgets:
                if not type_budget:
                    continue
                candidates = np.fromiter(type_budget.keys(), dtype=np.int64)
                weights = np.fromiter(type_budget.values(), dtype=np.float64) ** 2
                chosen = self._draw(candidates, weights, step)
                newly_sampled.extend(int(c) for c in chosen)
            for node in newly_sampled:
                sampled[node] = None
                budgets[graph.node_type[node]].pop(node, None)
            for node in newly_sampled:
                add_to_budget(node)
            discovered.extend(newly_sampled)
            if instrumented:
                self._record_hop(self._metrics_clock() - step_started)
        rest = np.sort(np.asarray(discovered, dtype=np.int64)) if discovered else _EMPTY
        return np.concatenate([unique_targets, rest])


def _induce(graph: HeteroGraph, nodes: np.ndarray, targets: np.ndarray) -> SampledSubgraph:
    """Induce the subgraph and locate the targets — no Python dict.

    The position map is a sorted lookup (``argsort`` + ``searchsorted``)
    over the canonical node order, O(k log k) instead of the former
    O(k) dict build + per-target Python hashing.
    """
    subgraph, original_ids = graph.subgraph(nodes)
    if len(targets):
        sorter = np.argsort(original_ids, kind="stable")
        target_local = sorter[np.searchsorted(original_ids, targets, sorter=sorter)]
        target_local = target_local.astype(np.int64)
    else:
        target_local = _EMPTY
    return SampledSubgraph(graph=subgraph, target_local=target_local, original_ids=original_ids)
