"""Graph constructor: transaction logs → heterogeneous graphs.

Implements the construction protocol of Sec. 3.1 and Appendix B:

* both transactions and linking entities become nodes;
* if an entity is used in a transaction, an edge connects the
  transaction node and the entity node (stored in both directions with
  typed edges);
* only transaction nodes carry input features;
* optionally, linking entities whose transaction count falls below a
  threshold are removed to maintain graph connectivity
  (the eBay-large construction step);
* optionally, the seed-expansion sampling of Appendix B: all fraud
  transactions plus sampled benign transactions are seeds, each seed is
  expanded to its k-hop neighbourhood keeping at most N neighbours per
  hop, and neighbourhoods with fewer than ``min_txns`` transactions are
  filtered out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from typing import TYPE_CHECKING

from .hetero import NODE_TYPE_IDS, HeteroGraph, edge_type_between

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.data
    from ..data.records import TransactionLog


@dataclass
class BuildConfig:
    """Options for graph construction."""

    min_entity_txns: int = 1
    seed_expansion: bool = False
    hops: int = 2
    max_neighbors_per_hop: int = 10
    min_txns_per_neighborhood: int = 5
    benign_seed_fraction: float = 1.0
    rng_seed: int = 0


class GraphBuilder:
    """Converts a :class:`TransactionLog` into a :class:`HeteroGraph`."""

    def __init__(self, config: Optional[BuildConfig] = None) -> None:
        self.config = config or BuildConfig()

    # ------------------------------------------------------------------
    def build(self, log: TransactionLog) -> Tuple[HeteroGraph, Dict[str, Dict[int, int]]]:
        """Build the full graph.

        Returns the graph and an index mapping
        ``{entity_kind: {external_id: node_id}}`` (including ``"txn"``)
        so callers can locate specific records in the graph.
        """
        records = list(log)
        if not records:
            raise ValueError("cannot build a graph from an empty log")

        entity_use = self._entity_usage(records)
        node_types: List[int] = []
        labels: List[int] = []
        features: List[np.ndarray] = []
        index: Dict[str, Dict[int, int]] = {k: {} for k in ("txn", "pmt", "email", "addr", "buyer")}

        feature_dim = len(records[0].features)
        zero_features = np.zeros(feature_dim)

        # Transactions first so txn node ids are contiguous from zero.
        for record in records:
            index["txn"][record.txn_id] = len(node_types)
            node_types.append(NODE_TYPE_IDS["txn"])
            labels.append(record.label)
            features.append(record.features)

        def entity_node(kind: str, external_id: int) -> Optional[int]:
            if entity_use[kind][external_id] < self.config.min_entity_txns:
                return None
            if external_id not in index[kind]:
                index[kind][external_id] = len(node_types)
                node_types.append(NODE_TYPE_IDS[kind])
                labels.append(-1)
                features.append(zero_features)
            return index[kind][external_id]

        src: List[int] = []
        dst: List[int] = []
        etype: List[int] = []
        for record in records:
            txn_node = index["txn"][record.txn_id]
            for kind, external_id in record.linked_entities():
                node = entity_node(kind, external_id)
                if node is None:
                    continue
                src.append(txn_node)
                dst.append(node)
                etype.append(edge_type_between("txn", kind))
                src.append(node)
                dst.append(txn_node)
                etype.append(edge_type_between(kind, "txn"))

        graph = HeteroGraph(
            node_type=np.array(node_types, dtype=np.int64),
            edge_src=np.array(src, dtype=np.int64),
            edge_dst=np.array(dst, dtype=np.int64),
            edge_type=np.array(etype, dtype=np.int64),
            txn_features=np.stack(features),
            labels=np.array(labels, dtype=np.int64),
        )
        if self.config.seed_expansion:
            graph = self._seed_expand(graph)
        return graph, index

    # ------------------------------------------------------------------
    @staticmethod
    def _entity_usage(records) -> Dict[str, Dict[int, int]]:
        usage: Dict[str, Dict[int, int]] = {k: {} for k in ("pmt", "email", "addr", "buyer")}
        for record in records:
            for kind, external_id in record.linked_entities():
                usage[kind][external_id] = usage[kind].get(external_id, 0) + 1
        return usage

    # ------------------------------------------------------------------
    def _seed_expand(self, graph: HeteroGraph) -> HeteroGraph:
        """Appendix B sampling: seeds → k-hop capped expansion → filter."""
        rng = np.random.default_rng(self.config.rng_seed)
        txn_mask = graph.node_type == NODE_TYPE_IDS["txn"]
        fraud_seeds = np.flatnonzero(txn_mask & (graph.labels == 1))
        benign = np.flatnonzero(txn_mask & (graph.labels == 0))
        n_benign = int(round(len(benign) * self.config.benign_seed_fraction))
        benign_seeds = rng.choice(benign, size=n_benign, replace=False) if n_benign else np.array([], dtype=np.int64)
        seeds = np.concatenate([fraud_seeds, benign_seeds])

        keep = np.zeros(graph.num_nodes, dtype=bool)
        for seed in seeds:
            neighborhood = self._expand(graph, int(seed), rng)
            txn_count = int(np.sum(txn_mask[neighborhood]))
            if txn_count >= self.config.min_txns_per_neighborhood:
                keep[neighborhood] = True
        if not keep.any():
            return graph
        sub, _ = graph.subgraph(np.flatnonzero(keep))
        return sub

    def _expand(self, graph: HeteroGraph, seed: int, rng: np.random.Generator) -> np.ndarray:
        visited = {seed}
        frontier = [seed]
        for _ in range(self.config.hops):
            next_frontier: List[int] = []
            for node in frontier:
                neighbors = graph.in_neighbors(node)
                if len(neighbors) > self.config.max_neighbors_per_hop:
                    neighbors = rng.choice(
                        neighbors, size=self.config.max_neighbors_per_hop, replace=False
                    )
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return np.array(sorted(visited), dtype=np.int64)


def train_test_split(
    graph: HeteroGraph,
    test_fraction: float = 0.3,
    val_fraction: float = 0.0,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split labeled transaction nodes into train/val/test index arrays.

    Stratified by label so both classes appear in every split.
    """
    rng = np.random.default_rng(seed)
    labeled = graph.labeled_nodes
    train_parts: List[np.ndarray] = []
    val_parts: List[np.ndarray] = []
    test_parts: List[np.ndarray] = []
    for label in (0, 1):
        nodes = labeled[graph.labels[labeled] == label]
        nodes = rng.permutation(nodes)
        n_test = int(round(len(nodes) * test_fraction))
        n_val = int(round(len(nodes) * val_fraction))
        test_parts.append(nodes[:n_test])
        val_parts.append(nodes[n_test : n_test + n_val])
        train_parts.append(nodes[n_test + n_val :])
    train = np.sort(np.concatenate(train_parts))
    val = np.sort(np.concatenate(val_parts))
    test = np.sort(np.concatenate(test_parts))
    return train, val, test
