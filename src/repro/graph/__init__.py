"""repro.graph — heterogeneous transaction-graph substrate."""

from .builder import BuildConfig, GraphBuilder, train_test_split
from .community import Community, extract_community, select_communities
from .homophily import HomophilyScore, homophily_report, homophily_score, render_homophily_report
from .hetero import (
    EDGE_TYPE_IDS,
    EDGE_TYPES,
    NODE_TYPE_IDS,
    NODE_TYPES,
    HeteroGraph,
    edge_type_between,
)
from .cache import SubgraphCache
from .partition import group_partitions, pic_partition, power_iteration_embedding
from .sampling import HGSampler, SageSampler, SampledSubgraph, batched

__all__ = [
    "HeteroGraph",
    "NODE_TYPES",
    "NODE_TYPE_IDS",
    "EDGE_TYPES",
    "EDGE_TYPE_IDS",
    "edge_type_between",
    "HomophilyScore",
    "homophily_score",
    "homophily_report",
    "render_homophily_report",
    "GraphBuilder",
    "BuildConfig",
    "train_test_split",
    "Community",
    "extract_community",
    "select_communities",
    "SageSampler",
    "HGSampler",
    "SampledSubgraph",
    "SubgraphCache",
    "batched",
    "pic_partition",
    "power_iteration_embedding",
    "group_partitions",
]
