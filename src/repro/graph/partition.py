"""Graph partitioning for distributed training (Sec. 3.3.1).

The paper partitions the billion-scale graph with Power Iteration
Clustering (PIC, Lin & Cohen 2010) into 128 subgraphs, then groups the
subgraphs into κ worker groups of roughly equal node counts
(footnote 3). This module implements both steps:

* :func:`pic_partition` — PIC from scratch: build the row-normalised
  affinity matrix of the graph, run truncated power iteration from a
  degree-based start vector, and cluster the resulting 1-D embedding
  with k-means (scipy).
* :func:`group_partitions` — sort partitions by node count ascending
  and fill κ groups to ⌈|V|/κ⌉ nodes each, exactly as footnote 3
  describes.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy import sparse

from .hetero import HeteroGraph


def _affinity_matrix(graph: HeteroGraph) -> sparse.csr_matrix:
    """Row-normalised adjacency ``D^-1 A`` of the undirected graph."""
    n = graph.num_nodes
    data = np.ones(graph.num_edges, dtype=np.float64)
    adjacency = sparse.coo_matrix(
        (data, (graph.edge_dst, graph.edge_src)), shape=(n, n)
    ).tocsr()
    degree = np.asarray(adjacency.sum(axis=1)).ravel()
    degree[degree == 0] = 1.0
    inverse = sparse.diags(1.0 / degree)
    walk = inverse @ adjacency
    # Lazy walk (I + P) / 2: transaction graphs are bipartite
    # (txn <-> entity), where the plain walk has eigenvalue -1 and the
    # power iteration would oscillate forever instead of converging.
    identity = sparse.identity(n, format="csr")
    return (identity + walk) * 0.5


def power_iteration_embedding(
    graph: HeteroGraph,
    max_iterations: int = 300,
    tolerance: float = 1e-12,
    seed: int = 0,
) -> np.ndarray:
    """1-D PIC embedding: truncated power iteration on ``D^-1 A``.

    PIC stops early, before full convergence to the stationary vector,
    because the *intermediate* vector separates clusters. We follow the
    original acceleration-based stopping rule.
    """
    matrix = _affinity_matrix(graph)
    n = graph.num_nodes
    rng = np.random.default_rng(seed)
    # Random start: under the row-stochastic operator each connected
    # region converges towards the (weighted) mean of its starting
    # values, so regions separate clearly in the 1-D embedding — the
    # cluster-indicator behaviour PIC exploits. A near-uniform start
    # (e.g. degree-based on a near-regular graph) would wash this out.
    vector = rng.random(n)
    norm = np.abs(vector).sum()
    vector = vector / (norm if norm > 0 else 1.0)

    for _ in range(max_iterations):
        new_vector = matrix @ vector
        norm = np.abs(new_vector).sum()
        if norm > 0:
            new_vector = new_vector / norm
        delta = np.abs(new_vector - vector).max()
        vector = new_vector
        if delta < tolerance:
            break
    return vector


def pic_partition(
    graph: HeteroGraph,
    num_partitions: int,
    seed: int = 0,
    max_iterations: int = 300,
) -> np.ndarray:
    """Partition nodes with PIC; returns ``(N,)`` partition ids.

    Falls back to contiguous quantile splits of the embedding if k-means
    collapses (which PIC's 1-D embedding makes both safe and standard).
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    n = graph.num_nodes
    if num_partitions >= n:
        return np.arange(n, dtype=np.int64)
    embedding = power_iteration_embedding(graph, max_iterations=max_iterations, seed=seed)
    assignments = _kmeans_1d(embedding, num_partitions, seed=seed)
    return assignments


def _kmeans_1d(values: np.ndarray, k: int, seed: int = 0, iterations: int = 30) -> np.ndarray:
    """Lloyd's algorithm on a 1-D embedding with quantile init."""
    rng = np.random.default_rng(seed)
    quantiles = np.quantile(values, np.linspace(0, 1, k + 2)[1:-1])
    centers = np.unique(quantiles)
    while len(centers) < k:
        centers = np.append(centers, rng.uniform(values.min(), values.max() + 1e-9))
    centers = np.sort(centers[:k])
    assignment = np.zeros(len(values), dtype=np.int64)
    for _ in range(iterations):
        distance = np.abs(values[:, None] - centers[None, :])
        new_assignment = distance.argmin(axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for j in range(k):
            members = values[assignment == j]
            if len(members):
                centers[j] = members.mean()
    return assignment


def group_partitions(
    partition_ids: np.ndarray, num_groups: int
) -> List[np.ndarray]:
    """Group partitions into ``num_groups`` balanced worker groups.

    Footnote 3 of the paper: order partitions by node count ascending,
    fill the current group until it holds ⌈|V|/κ⌉ nodes, repeat. Every
    group receives at least one partition. Returns, per group, the
    array of node ids it owns.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    partition_ids = np.asarray(partition_ids, dtype=np.int64)
    total_nodes = len(partition_ids)
    unique, counts = np.unique(partition_ids, return_counts=True)
    order = np.argsort(counts, kind="stable")
    target = int(np.ceil(total_nodes / num_groups))

    groups: List[List[int]] = [[] for _ in range(num_groups)]
    group_sizes = [0] * num_groups
    current = 0
    for partition in unique[order]:
        size = int(counts[unique == partition][0])
        if group_sizes[current] >= target and current < num_groups - 1:
            current += 1
        groups[current].append(int(partition))
        group_sizes[current] += size

    # Guarantee non-empty groups by stealing from the fullest group.
    for i in range(num_groups):
        if not groups[i]:
            donor = int(np.argmax([len(g) for g in groups]))
            if len(groups[donor]) > 1:
                groups[i].append(groups[donor].pop())

    result: List[np.ndarray] = []
    for members in groups:
        mask = np.isin(partition_ids, members)
        result.append(np.flatnonzero(mask))
    return result
