"""Bounded LRU cache for sampled subgraphs.

Samplers in this package are *stateless*: with a fixed seed,
``sample(graph, targets)`` is a pure function of
``(graph structure, targets, sampler config)`` — see the fast-path
contract in :mod:`repro.graph.sampling`. That purity is what makes
caching sound: a cached :class:`~repro.graph.sampling.SampledSubgraph`
is byte-identical to what re-sampling would produce, so serving can
skip the sampler entirely on repeat traffic (hot targets dominate
real fraud workloads — a small set of active buyers/cards generates
most scoring requests).

Keys are ``(graph identity, graph.version, sampler.cache_key(),
targets)``. The version component means an in-place structural edit
(``HeteroGraph.mark_mutated()``) silently misses every stale entry;
:meth:`SubgraphCache.invalidate` additionally drops them eagerly so a
long-lived service does not carry dead weight until eviction.

Consumers must treat cached subgraphs as immutable. The serving layer
hydrates per-request features via ``HeteroGraph.with_features`` (an
O(1) structural clone) rather than writing into ``txn_features`` of a
shared cached instance.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from .sampling import SampledSubgraph

__all__ = ["SubgraphCache"]


class SubgraphCache:
    """Bounded LRU of :class:`SampledSubgraph` keyed by
    ``(target, sampler-config, graph-version)``.

    ``capacity`` bounds the entry count; least-recently-used entries
    are evicted first. Hit/miss/eviction counters are always tracked
    as plain attributes and — after :meth:`instrument` — exported
    through a :class:`repro.obs.registry.MetricsRegistry` as
    ``subgraph_cache_{hits,misses,evictions}_total``.

    Thread-safe: the serving layer scores from worker threads while
    ``drain`` runs on the control thread.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Tuple, SampledSubgraph]" = OrderedDict()
        # RLock, not Lock: weakref finalizers (_forget_graph) run at
        # arbitrary allocation points, including inside our own locked
        # regions (dict resize during insert can trigger the GC that
        # collects a dead graph). A non-reentrant lock would self-
        # deadlock on that re-entry.
        self._lock = threading.RLock()
        self._graph_finalizers: dict = {}
        self._hits_metric = None
        self._misses_metric = None
        self._evictions_metric = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def instrument(self, registry) -> "SubgraphCache":
        """Export counters through ``registry``; returns self."""
        self._hits_metric = registry.counter(
            "subgraph_cache_hits_total",
            "Sampled-subgraph cache hits.",
            labels=("cache",),
        )
        self._misses_metric = registry.counter(
            "subgraph_cache_misses_total",
            "Sampled-subgraph cache misses.",
            labels=("cache",),
        )
        self._evictions_metric = registry.counter(
            "subgraph_cache_evictions_total",
            "Sampled-subgraph cache LRU evictions.",
            labels=("cache",),
        )
        return self

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Atomic snapshot of the counters plus derived ``lookups``.

        Taken under the lock so the accounting identity
        ``hits + misses == lookups`` holds exactly even while worker
        threads are mid-churn; reading the attributes one by one can
        observe a torn pair (hit counted, lookup total not yet
        implied).
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "lookups": self.hits + self.misses,
                "entries": len(self._entries),
            }

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------
    def get_or_sample(
        self,
        graph,
        sampler,
        targets: Sequence[int],
        deadline=None,
    ) -> SampledSubgraph:
        """Cached ``sampler.sample(graph, targets)``.

        A hit returns the stored subgraph without touching the sampler
        (and without consuming any of ``deadline``); a miss samples,
        stores, and returns. ``targets`` order matters — it determines
        ``target_local`` — so it is part of the key.
        """
        key = self._key(graph, sampler, targets)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if self._hits_metric is not None:
                    self._hits_metric.inc(cache="subgraph")
                return cached
            self.misses += 1
            if self._misses_metric is not None:
                self._misses_metric.inc(cache="subgraph")
        sampled = sampler.sample(graph, targets, deadline=deadline)
        with self._lock:
            if key not in self._entries:
                self._entries[key] = sampled
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    if self._evictions_metric is not None:
                        self._evictions_metric.inc(cache="subgraph")
        return sampled

    def invalidate(self, graph=None) -> int:
        """Eagerly drop entries: all of them, or only those belonging
        to stale versions of ``graph``. Returns the number removed.

        Entries for the *current* ``graph.version`` survive — they are
        still correct. Stale versions can never hit again anyway (the
        version is in the key); this just frees the memory now rather
        than waiting for LRU pressure.
        """
        with self._lock:
            if graph is None:
                removed = len(self._entries)
                self._entries.clear()
                return removed
            token, version = id(graph), graph.version
            stale = [
                key
                for key in self._entries
                if key[0] == token and key[1] != version
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def _key(self, graph, sampler, targets: Sequence[int]) -> Tuple:
        target_key: Hashable
        if isinstance(targets, (int, np.integer)):
            target_key = int(targets)
        else:
            target_key = tuple(int(t) for t in targets)
        return (self._graph_token(graph), graph.version, sampler.cache_key(), target_key)

    def _graph_token(self, graph) -> int:
        """Stable identity for ``graph`` within this cache.

        ``id()`` alone can be recycled after a graph is garbage
        collected; a finalizer purges that graph's entries on death so
        a recycled address can never alias a dead graph's cache lines.
        """
        token = id(graph)
        if token not in self._graph_finalizers:
            self._graph_finalizers[token] = weakref.finalize(
                graph, self._forget_graph, token
            )
        return token

    def _forget_graph(self, token: int) -> None:
        with self._lock:
            self._graph_finalizers.pop(token, None)
            dead = [key for key in self._entries if key[0] == token]
            for key in dead:
                del self._entries[key]
