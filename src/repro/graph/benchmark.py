"""Fast-path sampler benchmark harness.

One implementation drives three consumers: the ``repro bench-sampler``
CLI command, ``benchmarks/bench_sampler_fastpath.py`` (which writes
``benchmarks/results/fastpath.txt``), and the CI perf-smoke job that
fails the build when the vectorized path stops being fast or stops
matching the reference path.

For each sampler kind and batch size it times three variants over the
same target stream:

* **reference** — the scalar per-node walk (``reference=True``), the
  executable specification;
* **vectorized** — the CSR array fast path (the default);
* **cached** — the fast path fronted by a warmed
  :class:`~repro.graph.cache.SubgraphCache` (pure hits).

Because both sampler paths share the stateless hash RNG, the harness
also *verifies* seed-for-seed equivalence (identical nodes, edges, and
target positions) on every batch it times — a benchmark run doubles as
an end-to-end correctness check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..util import batched
from .cache import SubgraphCache
from .hetero import HeteroGraph
from .sampling import HGSampler, SageSampler, SampledSubgraph

DEFAULT_BATCH_SIZES: Tuple[int, ...] = (1, 16, 128)


@dataclass
class FastPathResult:
    """Reference vs vectorized vs cached timings for one configuration."""

    sampler: str  # "sage" | "hg"
    batch_size: int
    targets: int  # total targets scored per timed pass
    reference_s: float
    fast_s: float
    cached_s: float
    equivalent: bool  # fast == reference on every timed batch

    @property
    def speedup(self) -> float:
        return self.reference_s / self.fast_s if self.fast_s > 0 else float("inf")

    @property
    def cached_speedup(self) -> float:
        return self.reference_s / self.cached_s if self.cached_s > 0 else float("inf")

    @property
    def throughput(self) -> float:
        """Vectorized-path targets/second."""
        return self.targets / self.fast_s if self.fast_s > 0 else float("inf")


def build_bench_graph(
    num_buyers: int = 400, feature_dim: int = 24, seed: int = 0
) -> HeteroGraph:
    """A synthetic eBay-like transaction graph for sampler benchmarks."""
    from ..data import GeneratorConfig, TransactionGenerator
    from .builder import BuildConfig, GraphBuilder

    config = GeneratorConfig(
        num_benign_buyers=num_buyers, feature_dim=feature_dim, seed=seed
    )
    log = TransactionGenerator(config).generate()
    graph, _ = GraphBuilder(BuildConfig()).build(log)
    graph.csr()  # build the adjacency outside the timed region
    return graph


def _make_sampler(kind: str, seed: int, reference: bool):
    if kind == "sage":
        return SageSampler(hops=2, fanout=10, seed=seed, reference=reference)
    if kind == "hg":
        return HGSampler(depth=3, width=8, seed=seed, reference=reference)
    raise ValueError(f"unknown sampler kind {kind!r} (expected 'sage' or 'hg')")


def _subgraphs_equal(a: SampledSubgraph, b: SampledSubgraph) -> bool:
    return (
        np.array_equal(a.original_ids, b.original_ids)
        and np.array_equal(a.target_local, b.target_local)
        and np.array_equal(a.graph.edge_src, b.graph.edge_src)
        and np.array_equal(a.graph.edge_dst, b.graph.edge_dst)
        and np.array_equal(a.graph.edge_type, b.graph.edge_type)
        and np.array_equal(a.graph.node_type, b.graph.node_type)
    )


def _time_pass(sample_batch, batches, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for batch in batches:
            sample_batch(batch)
        best = min(best, time.perf_counter() - started)
    return best


def run_fastpath_benchmark(
    graph: Optional[HeteroGraph] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    samplers: Sequence[str] = ("sage", "hg"),
    total_targets: int = 128,
    repeats: int = 3,
    seed: int = 0,
    cache_capacity: int = 4096,
) -> List[FastPathResult]:
    """Time reference/vectorized/cached sampling and verify equivalence.

    Every configuration scores the same ``total_targets`` transaction
    nodes (cycled if the graph has fewer), split into ``batch_size``
    chunks, so throughputs are comparable across batch sizes.
    """
    if graph is None:
        graph = build_bench_graph(seed=seed)
    graph.csr()
    txn = graph.txn_nodes
    if len(txn) == 0:
        raise ValueError("benchmark graph has no transaction nodes")
    stream = txn[np.arange(total_targets) % len(txn)]

    results: List[FastPathResult] = []
    for kind in samplers:
        fast = _make_sampler(kind, seed, reference=False)
        reference = _make_sampler(kind, seed, reference=True)
        for batch_size in batch_sizes:
            batches = batched(stream, batch_size)
            equivalent = all(
                _subgraphs_equal(
                    fast.sample(graph, batch), reference.sample(graph, batch)
                )
                for batch in batches
            )
            reference_s = _time_pass(
                lambda batch: reference.sample(graph, batch), batches, repeats
            )
            fast_s = _time_pass(
                lambda batch: fast.sample(graph, batch), batches, repeats
            )
            cache = SubgraphCache(capacity=cache_capacity)
            for batch in batches:  # warm: every timed lookup is a hit
                cache.get_or_sample(graph, fast, batch)
            cached_s = _time_pass(
                lambda batch: cache.get_or_sample(graph, fast, batch),
                batches,
                repeats,
            )
            results.append(
                FastPathResult(
                    sampler=kind,
                    batch_size=batch_size,
                    targets=len(stream),
                    reference_s=reference_s,
                    fast_s=fast_s,
                    cached_s=cached_s,
                    equivalent=equivalent,
                )
            )
    return results


def render_fastpath_report(results: Sequence[FastPathResult]) -> str:
    """Fixed-width table of one :func:`run_fastpath_benchmark` run."""
    headers = [
        "sampler",
        "batch",
        "reference",
        "vectorized",
        "cached",
        "speedup",
        "cached speedup",
        "equal",
    ]
    rows = [
        [
            r.sampler,
            str(r.batch_size),
            f"{r.reference_s * 1000:.2f}ms",
            f"{r.fast_s * 1000:.2f}ms",
            f"{r.cached_s * 1000:.2f}ms",
            f"{r.speedup:.1f}x",
            f"{r.cached_speedup:.1f}x",
            "yes" if r.equivalent else "NO",
        ]
        for r in results
    ]
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)


def check_fastpath(
    results: Sequence[FastPathResult],
    min_speedup: float,
    at_batch_size: int = 128,
) -> List[str]:
    """Gate for CI: returns a list of failures (empty = pass).

    Equivalence must hold for every configuration; the throughput floor
    applies per sampler at ``at_batch_size``.
    """
    failures: List[str] = []
    for result in results:
        if not result.equivalent:
            failures.append(
                f"{result.sampler}@batch={result.batch_size}: vectorized and "
                "reference paths returned different subgraphs"
            )
    for result in results:
        if result.batch_size == at_batch_size and result.speedup < min_speedup:
            failures.append(
                f"{result.sampler}@batch={result.batch_size}: speedup "
                f"{result.speedup:.2f}x below the {min_speedup:.1f}x floor"
            )
    return failures
