"""Heterogeneous transaction graph data structure.

The paper (Sec. 3.1) formulates fraud detection on a heterogeneous
graph whose node-type set is ``{txn, pmt, email, addr, buyer}``. Edges
connect a transaction to each linking entity it uses. Only transaction
nodes carry input features (computed by a risk identifier); entity
nodes start empty and receive representations after the first
convolution layer.

:class:`HeteroGraph` stores the graph in flat numpy arrays — node type
ids, directed edge lists with edge-type ids, transaction features, and
labels — plus a lazily built CSR adjacency for neighbour sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Canonical node-type vocabulary (order defines integer ids).
NODE_TYPES: Tuple[str, ...] = ("txn", "pmt", "email", "addr", "buyer")
NODE_TYPE_IDS: Dict[str, int] = {name: i for i, name in enumerate(NODE_TYPES)}

#: Directed edge-type vocabulary. A transaction connects to each entity
#: type in both directions so messages flow entity->txn and txn->entity.
EDGE_TYPES: Tuple[str, ...] = (
    "txn->pmt",
    "pmt->txn",
    "txn->email",
    "email->txn",
    "txn->addr",
    "addr->txn",
    "txn->buyer",
    "buyer->txn",
)
EDGE_TYPE_IDS: Dict[str, int] = {name: i for i, name in enumerate(EDGE_TYPES)}


def edge_type_between(src_type: str, dst_type: str) -> int:
    """Edge-type id for a directed edge ``src_type -> dst_type``."""
    key = f"{src_type}->{dst_type}"
    if key not in EDGE_TYPE_IDS:
        raise KeyError(f"no edge type between {src_type} and {dst_type}")
    return EDGE_TYPE_IDS[key]


@dataclass
class HeteroGraph:
    """A typed transaction graph in flat-array form.

    Attributes
    ----------
    node_type:
        ``(N,)`` int array of :data:`NODE_TYPES` ids.
    edge_src, edge_dst, edge_type:
        ``(E,)`` int arrays describing directed edges.
    txn_features:
        ``(N, F)`` float array; rows of non-``txn`` nodes are zero.
    labels:
        ``(N,)`` int array: 1 fraud, 0 legit, -1 unlabeled / non-txn.
    """

    node_type: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_type: np.ndarray
    txn_features: np.ndarray
    labels: np.ndarray
    _csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )
    _version: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.node_type = np.asarray(self.node_type, dtype=np.int64)
        self.edge_src = np.asarray(self.edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(self.edge_dst, dtype=np.int64)
        self.edge_type = np.asarray(self.edge_type, dtype=np.int64)
        features = np.asarray(self.txn_features)
        if not np.issubdtype(features.dtype, np.floating):
            features = features.astype(np.float64)
        self.txn_features = features
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ValueError on violation."""
        n = self.num_nodes
        if not (len(self.edge_src) == len(self.edge_dst) == len(self.edge_type)):
            raise ValueError("edge arrays must have equal length")
        if self.txn_features.ndim != 2 or self.txn_features.shape[0] != n:
            raise ValueError("txn_features must be (num_nodes, feature_dim)")
        if self.labels.shape != (n,):
            raise ValueError("labels must be (num_nodes,)")
        if len(self.edge_src) and (
            self.edge_src.min() < 0
            or self.edge_src.max() >= n
            or self.edge_dst.min() < 0
            or self.edge_dst.max() >= n
        ):
            raise ValueError("edge endpoints out of range")
        if len(self.node_type) and (
            self.node_type.min() < 0 or self.node_type.max() >= len(NODE_TYPES)
        ):
            raise ValueError("node types out of range")
        if len(self.edge_type) and (
            self.edge_type.min() < 0 or self.edge_type.max() >= len(EDGE_TYPES)
        ):
            raise ValueError("edge types out of range")
        labeled = self.labels[self.node_type != NODE_TYPE_IDS["txn"]]
        if len(labeled) and np.any(labeled != -1):
            raise ValueError("only txn nodes may carry labels")

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_type)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    @property
    def feature_dim(self) -> int:
        return self.txn_features.shape[1]

    @property
    def txn_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.node_type == NODE_TYPE_IDS["txn"])

    @property
    def labeled_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.labels >= 0)

    def node_type_counts(self) -> Dict[str, int]:
        """Per-type node counts (Table 6 of the paper)."""
        counts = np.bincount(self.node_type, minlength=len(NODE_TYPES))
        return {name: int(counts[i]) for i, name in enumerate(NODE_TYPES)}

    def fraud_rate(self) -> float:
        """Fraction of labeled transactions that are fraudulent."""
        labeled = self.labels[self.labels >= 0]
        if len(labeled) == 0:
            return 0.0
        return float(labeled.mean())

    def edges_per_node(self) -> float:
        """Undirected sparsity measure used in Figure 1 / Table 5.

        The paper counts each transaction-entity link once, while this
        structure stores both directions, hence the halving.
        """
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / 2.0 / self.num_nodes

    # ------------------------------------------------------------------
    # Mutation tracking
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic structure version; caches key on it (see
        :class:`~repro.graph.cache.SubgraphCache`)."""
        return self._version

    def mark_mutated(self) -> None:
        """Declare an in-place structural edit: bumps :attr:`version`
        (invalidating any keyed subgraph caches) and drops the CSR so
        it is rebuilt from the edited edge arrays."""
        self._version += 1
        self._csr = None

    def with_features(self, features: np.ndarray) -> "HeteroGraph":
        """Shallow clone sharing every structure array, with ``features``
        swapped in — O(1), no re-validation, CSR carried over.

        The serving path hydrates KV-fetched feature rows onto cached
        sampled subgraphs through this instead of mutating the shared
        instance, so a :class:`~repro.graph.cache.SubgraphCache` hit can
        never observe another request's features.
        """
        features = np.asarray(features)
        if features.ndim != 2 or features.shape[0] != self.num_nodes:
            raise ValueError("features must be (num_nodes, feature_dim)")
        clone = object.__new__(HeteroGraph)
        clone.node_type = self.node_type
        clone.edge_src = self.edge_src
        clone.edge_dst = self.edge_dst
        clone.edge_type = self.edge_type
        clone.txn_features = features
        clone.labels = self.labels
        clone._csr = self._csr
        clone._version = self._version
        return clone

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """In-edge CSR: ``(indptr, src_by_dst, edge_id_by_dst)``.

        For target node ``v``, its incoming edges occupy the slice
        ``indptr[v]:indptr[v + 1]`` of the returned source and edge-id
        arrays. Built lazily and cached.
        """
        if self._csr is None:
            order = np.argsort(self.edge_dst, kind="stable")
            sorted_dst = self.edge_dst[order]
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            counts = np.bincount(sorted_dst, minlength=self.num_nodes)
            indptr[1:] = np.cumsum(counts)
            self._csr = (indptr, self.edge_src[order], order)
        return self._csr

    def in_neighbors(self, node: int) -> np.ndarray:
        """Source nodes of edges pointing at ``node``."""
        indptr, src_sorted, _ = self.csr()
        return src_sorted[indptr[node] : indptr[node + 1]]

    def in_edges(self, node: int) -> np.ndarray:
        """Edge ids (into the flat edge arrays) pointing at ``node``."""
        indptr, _, edge_ids = self.csr()
        return edge_ids[indptr[node] : indptr[node + 1]]

    def degree(self) -> np.ndarray:
        """In-degree per node (== out-degree for symmetric graphs)."""
        return np.bincount(self.edge_dst, minlength=self.num_nodes)

    # ------------------------------------------------------------------
    # Subgraph extraction
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Sequence[int]) -> Tuple["HeteroGraph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph plus the array mapping local index ->
        original node id. Node order follows the order of ``nodes``.

        Two implementations produce bit-identical output: a dense
        O(N + E) membership pass over every edge, and — when the CSR is
        already built and ``nodes`` is a small fraction of the graph —
        a gather of only the edges incident to ``nodes``
        (O(deg(nodes))), which is what makes per-request neighbourhood
        induction cheap on a large serving graph. Both share one
        borrowed node->local map (amortized O(k) per call, no O(N)
        allocation on the hot path).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        local_of = self._borrow_local_map()
        try:
            index = np.arange(len(nodes), dtype=np.int64)
            local_of[nodes] = index
            if len(nodes) and np.any(local_of[nodes] != index):
                raise ValueError("subgraph nodes must be unique")
            if self._csr is not None and 0 < len(nodes) * 4 < self.num_nodes:
                candidates = self._candidate_in_edges(nodes)
                src_local_all = local_of[self.edge_src[candidates]]
                keep = src_local_all >= 0
                edge_ids = candidates[keep]
                # Ascending edge ids restore original edge order, so
                # this path is bit-identical to the dense keep mask.
                order = np.argsort(edge_ids, kind="stable")
                edge_ids = edge_ids[order]
                src_local = src_local_all[keep][order]
                dst_local = local_of[self.edge_dst[edge_ids]]
                edge_type = self.edge_type[edge_ids]
            else:
                keep = (local_of[self.edge_src] >= 0) & (local_of[self.edge_dst] >= 0)
                src_local = local_of[self.edge_src[keep]]
                dst_local = local_of[self.edge_dst[keep]]
                edge_type = self.edge_type[keep]
        finally:
            local_of[nodes] = -1  # O(k) reset: the map is clean for reuse
            self._local_map_scratch = local_of
        # Trusted construction: every invariant holds by derivation from
        # this (already validated) graph, so skip the O(nodes + edges)
        # re-validation on the per-request path.
        sub = object.__new__(HeteroGraph)
        sub.node_type = self.node_type[nodes]
        sub.edge_src = src_local
        sub.edge_dst = dst_local
        sub.edge_type = edge_type
        sub.txn_features = self.txn_features[nodes]
        sub.labels = self.labels[nodes]
        sub._csr = None
        sub._version = 0
        return sub, nodes

    def _borrow_local_map(self) -> np.ndarray:
        """Take ownership of the shared all ``-1`` node->local scratch.

        The borrower must reset the entries it wrote and put the array
        back in ``_local_map_scratch``. While borrowed the attribute is
        ``None``, so a concurrent (or re-entrant) caller simply
        allocates its own copy instead of corrupting the shared one.
        """
        scratch = getattr(self, "_local_map_scratch", None)
        if scratch is None or len(scratch) != self.num_nodes:
            return np.full(self.num_nodes, -1, dtype=np.int64)
        self._local_map_scratch = None
        return scratch

    def _candidate_in_edges(self, nodes: np.ndarray) -> np.ndarray:
        """Ids of every edge whose *destination* is in ``nodes``
        (unfiltered CSR gather; callers filter by source membership)."""
        indptr, _, edge_ids_by_dst = self._csr
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        offsets = np.cumsum(counts) - counts
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(starts, counts)
        )
        return edge_ids_by_dst[flat]

    def connected_component(self, seed: int) -> np.ndarray:
        """Node ids of the undirected connected component of ``seed``."""
        visited = np.zeros(self.num_nodes, dtype=bool)
        frontier = [int(seed)]
        visited[seed] = True
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in self.in_neighbors(node):
                    if not visited[neighbor]:
                        visited[neighbor] = True
                        next_frontier.append(int(neighbor))
            frontier = next_frontier
        return np.flatnonzero(visited)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_links(
        node_types: Sequence[int],
        links: Sequence[Tuple[int, int]],
        txn_features: np.ndarray,
        labels: Sequence[int],
    ) -> "HeteroGraph":
        """Build from undirected (txn, entity) links, adding both directions."""
        node_types = np.asarray(node_types, dtype=np.int64)
        src: List[int] = []
        dst: List[int] = []
        etype: List[int] = []
        for a, b in links:
            type_a = NODE_TYPES[node_types[a]]
            type_b = NODE_TYPES[node_types[b]]
            src.append(a)
            dst.append(b)
            etype.append(edge_type_between(type_a, type_b))
            src.append(b)
            dst.append(a)
            etype.append(edge_type_between(type_b, type_a))
        return HeteroGraph(
            node_type=node_types,
            edge_src=np.array(src, dtype=np.int64),
            edge_dst=np.array(dst, dtype=np.int64),
            edge_type=np.array(etype, dtype=np.int64),
            txn_features=txn_features,
            labels=np.asarray(labels, dtype=np.int64),
        )

    def to_networkx(self):
        """Export as an undirected networkx graph (for centrality)."""
        import networkx as nx

        graph = nx.Graph()
        for node in range(self.num_nodes):
            graph.add_node(node, node_type=NODE_TYPES[self.node_type[node]])
        for src, dst in zip(self.edge_src, self.edge_dst):
            graph.add_edge(int(src), int(dst))
        return graph
