"""Heterogeneous transaction graph data structure.

The paper (Sec. 3.1) formulates fraud detection on a heterogeneous
graph whose node-type set is ``{txn, pmt, email, addr, buyer}``. Edges
connect a transaction to each linking entity it uses. Only transaction
nodes carry input features (computed by a risk identifier); entity
nodes start empty and receive representations after the first
convolution layer.

:class:`HeteroGraph` stores the graph in flat numpy arrays — node type
ids, directed edge lists with edge-type ids, transaction features, and
labels — plus a lazily built CSR adjacency for neighbour sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Canonical node-type vocabulary (order defines integer ids).
NODE_TYPES: Tuple[str, ...] = ("txn", "pmt", "email", "addr", "buyer")
NODE_TYPE_IDS: Dict[str, int] = {name: i for i, name in enumerate(NODE_TYPES)}

#: Directed edge-type vocabulary. A transaction connects to each entity
#: type in both directions so messages flow entity->txn and txn->entity.
EDGE_TYPES: Tuple[str, ...] = (
    "txn->pmt",
    "pmt->txn",
    "txn->email",
    "email->txn",
    "txn->addr",
    "addr->txn",
    "txn->buyer",
    "buyer->txn",
)
EDGE_TYPE_IDS: Dict[str, int] = {name: i for i, name in enumerate(EDGE_TYPES)}


def edge_type_between(src_type: str, dst_type: str) -> int:
    """Edge-type id for a directed edge ``src_type -> dst_type``."""
    key = f"{src_type}->{dst_type}"
    if key not in EDGE_TYPE_IDS:
        raise KeyError(f"no edge type between {src_type} and {dst_type}")
    return EDGE_TYPE_IDS[key]


@dataclass
class HeteroGraph:
    """A typed transaction graph in flat-array form.

    Attributes
    ----------
    node_type:
        ``(N,)`` int array of :data:`NODE_TYPES` ids.
    edge_src, edge_dst, edge_type:
        ``(E,)`` int arrays describing directed edges.
    txn_features:
        ``(N, F)`` float array; rows of non-``txn`` nodes are zero.
    labels:
        ``(N,)`` int array: 1 fraud, 0 legit, -1 unlabeled / non-txn.
    """

    node_type: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_type: np.ndarray
    txn_features: np.ndarray
    labels: np.ndarray
    _csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )
    _version: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.node_type = np.asarray(self.node_type, dtype=np.int64)
        self.edge_src = np.asarray(self.edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(self.edge_dst, dtype=np.int64)
        self.edge_type = np.asarray(self.edge_type, dtype=np.int64)
        features = np.asarray(self.txn_features)
        if not np.issubdtype(features.dtype, np.floating):
            features = features.astype(np.float64)
        self.txn_features = features
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ValueError on violation."""
        n = self.num_nodes
        if not (len(self.edge_src) == len(self.edge_dst) == len(self.edge_type)):
            raise ValueError("edge arrays must have equal length")
        if self.txn_features.ndim != 2 or self.txn_features.shape[0] != n:
            raise ValueError("txn_features must be (num_nodes, feature_dim)")
        if self.labels.shape != (n,):
            raise ValueError("labels must be (num_nodes,)")
        if len(self.edge_src) and (
            self.edge_src.min() < 0
            or self.edge_src.max() >= n
            or self.edge_dst.min() < 0
            or self.edge_dst.max() >= n
        ):
            raise ValueError("edge endpoints out of range")
        if len(self.node_type) and (
            self.node_type.min() < 0 or self.node_type.max() >= len(NODE_TYPES)
        ):
            raise ValueError("node types out of range")
        if len(self.edge_type) and (
            self.edge_type.min() < 0 or self.edge_type.max() >= len(EDGE_TYPES)
        ):
            raise ValueError("edge types out of range")
        labeled = self.labels[self.node_type != NODE_TYPE_IDS["txn"]]
        if len(labeled) and np.any(labeled != -1):
            raise ValueError("only txn nodes may carry labels")

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_type)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    @property
    def feature_dim(self) -> int:
        return self.txn_features.shape[1]

    @property
    def txn_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.node_type == NODE_TYPE_IDS["txn"])

    @property
    def labeled_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.labels >= 0)

    def node_type_counts(self) -> Dict[str, int]:
        """Per-type node counts (Table 6 of the paper)."""
        counts = np.bincount(self.node_type, minlength=len(NODE_TYPES))
        return {name: int(counts[i]) for i, name in enumerate(NODE_TYPES)}

    def fraud_rate(self) -> float:
        """Fraction of labeled transactions that are fraudulent."""
        labeled = self.labels[self.labels >= 0]
        if len(labeled) == 0:
            return 0.0
        return float(labeled.mean())

    def edges_per_node(self) -> float:
        """Undirected sparsity measure used in Figure 1 / Table 5.

        The paper counts each transaction-entity link once, while this
        structure stores both directions, hence the halving.
        """
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / 2.0 / self.num_nodes

    # ------------------------------------------------------------------
    # Mutation tracking
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic structure version; caches key on it (see
        :class:`~repro.graph.cache.SubgraphCache`)."""
        return self._version

    def mark_mutated(self, structural: bool = True) -> None:
        """Declare an in-place edit: bumps :attr:`version` (invalidating
        any keyed subgraph caches) and — for *structural* edits — drops
        the CSR so it is rebuilt from the edited edge arrays.

        ``structural=False`` covers edits that change node payload but
        not adjacency (the streaming label feed flipping ``labels``
        entries when a chargeback lands): cached subgraphs still must
        not be served (they snapshot labels), but the CSR stays valid.
        """
        self._version += 1
        if structural:
            self._csr = None

    def append_delta(
        self,
        node_type: Sequence[int],
        labels: Sequence[int],
        txn_features: np.ndarray,
        edge_src: Sequence[int],
        edge_dst: Sequence[int],
        edge_type: Sequence[int],
    ) -> None:
        """Append new nodes/edges *in place*, merging the cached CSR.

        The streaming ingestion path (:class:`repro.stream.builder.
        IncrementalGraphBuilder`) flushes event deltas through this so
        the exact object held by a live :class:`~repro.serving.service.
        ScoringService` grows under the serving workload. Identity is
        preserved (``id(graph)`` and therefore the
        :class:`~repro.graph.cache.SubgraphCache` token stay stable) and
        :attr:`version` is bumped exactly once per delta.

        If a CSR is already built it is *merged* rather than dropped:
        new in-edges are spliced into their destination buckets after
        the existing entries — bit-identical to a full stable rebuild
        (stable argsort keeps old edge ids, which precede the new ones,
        in ascending order within each bucket), at O(E_old + E_new)
        instead of O(E log E). New edges may reference both old and new
        nodes; endpoints are validated against the grown node count.
        """
        new_nt = np.asarray(node_type, dtype=np.int64)
        new_labels = np.asarray(labels, dtype=np.int64)
        new_feat = np.asarray(txn_features, dtype=self.txn_features.dtype)
        if new_feat.ndim != 2 or new_feat.shape != (len(new_nt), self.feature_dim):
            raise ValueError("delta features must be (new_nodes, feature_dim)")
        if new_labels.shape != (len(new_nt),):
            raise ValueError("delta labels must be (new_nodes,)")
        new_src = np.asarray(edge_src, dtype=np.int64)
        new_dst = np.asarray(edge_dst, dtype=np.int64)
        new_et = np.asarray(edge_type, dtype=np.int64)
        if not (len(new_src) == len(new_dst) == len(new_et)):
            raise ValueError("delta edge arrays must have equal length")
        grown = self.num_nodes + len(new_nt)
        if len(new_src) and (
            new_src.min() < 0
            or new_src.max() >= grown
            or new_dst.min() < 0
            or new_dst.max() >= grown
        ):
            raise ValueError("delta edge endpoints out of range")
        if len(new_nt) and (new_nt.min() < 0 or new_nt.max() >= len(NODE_TYPES)):
            raise ValueError("delta node types out of range")
        if len(new_et) and (new_et.min() < 0 or new_et.max() >= len(EDGE_TYPES)):
            raise ValueError("delta edge types out of range")
        entity = new_nt != NODE_TYPE_IDS["txn"]
        if np.any(new_labels[entity] != -1):
            raise ValueError("only txn nodes may carry labels")

        old_num_nodes = self.num_nodes
        old_num_edges = self.num_edges
        csr = self._csr
        if len(new_nt):
            self.node_type = np.concatenate([self.node_type, new_nt])
            self.labels = np.concatenate([self.labels, new_labels])
            self.txn_features = np.concatenate([self.txn_features, new_feat])
            # Scratch map length is keyed to num_nodes; a stale shorter
            # map would be discarded by _borrow_local_map anyway, but
            # drop it eagerly so nothing holds the old size.
            self._local_map_scratch = None
        if len(new_src):
            self.edge_src = np.concatenate([self.edge_src, new_src])
            self.edge_dst = np.concatenate([self.edge_dst, new_dst])
            self.edge_type = np.concatenate([self.edge_type, new_et])
        if csr is not None:
            self._csr = self._merge_csr(csr, old_num_nodes, old_num_edges, new_src, new_dst)
        self._version += 1

    def _merge_csr(
        self,
        csr: Tuple[np.ndarray, np.ndarray, np.ndarray],
        old_num_nodes: int,
        old_num_edges: int,
        new_src: np.ndarray,
        new_dst: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Splice delta edges into an existing in-edge CSR.

        Per destination bucket the result is [old entries in their old
        order, new entries stable-sorted by destination] — exactly what
        ``np.argsort(edge_dst, kind="stable")`` over the concatenated
        edge arrays produces, so callers may treat merged and rebuilt
        CSRs interchangeably (asserted bit-for-bit by the stream tests).
        """
        indptr, src_sorted, eid_sorted = csr
        n = self.num_nodes
        old_counts = np.diff(indptr)
        add_counts = np.bincount(new_dst, minlength=n) if len(new_dst) else np.zeros(n, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
        counts[:old_num_nodes] = old_counts
        counts += add_counts
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        total = old_num_edges + len(new_src)
        out_src = np.empty(total, dtype=np.int64)
        out_eid = np.empty(total, dtype=np.int64)
        if old_num_edges:
            # Old entries keep their relative order; each shifts right by
            # the number of new entries landing in lower buckets.
            shift = new_indptr[:old_num_nodes] - indptr[:-1]
            positions = np.arange(old_num_edges, dtype=np.int64) + np.repeat(shift, old_counts)
            out_src[positions] = src_sorted
            out_eid[positions] = eid_sorted
        if len(new_dst):
            order = np.argsort(new_dst, kind="stable")
            dst_ordered = new_dst[order]
            bucket_starts = np.cumsum(add_counts) - add_counts
            rank = np.arange(len(dst_ordered), dtype=np.int64) - bucket_starts[dst_ordered]
            old_count_of = np.zeros(n, dtype=np.int64)
            old_count_of[:old_num_nodes] = old_counts
            positions = new_indptr[dst_ordered] + old_count_of[dst_ordered] + rank
            out_src[positions] = new_src[order]
            out_eid[positions] = order + old_num_edges
        return (new_indptr, out_src, out_eid)

    def rebuild_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Drop any (possibly delta-merged) CSR and rebuild canonically.

        Compaction calls this after a run of :meth:`append_delta` merges
        to consolidate the adjacency into one freshly sorted layout; the
        result is bit-identical to the merged CSR it replaces, so the
        :attr:`version` is *not* bumped and warm subgraph caches stay
        valid across a compaction.
        """
        self._csr = None
        return self.csr()

    def with_features(self, features: np.ndarray) -> "HeteroGraph":
        """Shallow clone sharing every structure array, with ``features``
        swapped in — O(1), no re-validation, CSR carried over.

        The serving path hydrates KV-fetched feature rows onto cached
        sampled subgraphs through this instead of mutating the shared
        instance, so a :class:`~repro.graph.cache.SubgraphCache` hit can
        never observe another request's features.
        """
        features = np.asarray(features)
        if features.ndim != 2 or features.shape[0] != self.num_nodes:
            raise ValueError("features must be (num_nodes, feature_dim)")
        clone = object.__new__(HeteroGraph)
        clone.node_type = self.node_type
        clone.edge_src = self.edge_src
        clone.edge_dst = self.edge_dst
        clone.edge_type = self.edge_type
        clone.txn_features = features
        clone.labels = self.labels
        clone._csr = self._csr
        clone._version = self._version
        return clone

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """In-edge CSR: ``(indptr, src_by_dst, edge_id_by_dst)``.

        For target node ``v``, its incoming edges occupy the slice
        ``indptr[v]:indptr[v + 1]`` of the returned source and edge-id
        arrays. Built lazily and cached.
        """
        if self._csr is None:
            order = np.argsort(self.edge_dst, kind="stable")
            sorted_dst = self.edge_dst[order]
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            counts = np.bincount(sorted_dst, minlength=self.num_nodes)
            indptr[1:] = np.cumsum(counts)
            self._csr = (indptr, self.edge_src[order], order)
        return self._csr

    def in_neighbors(self, node: int) -> np.ndarray:
        """Source nodes of edges pointing at ``node``."""
        indptr, src_sorted, _ = self.csr()
        return src_sorted[indptr[node] : indptr[node + 1]]

    def in_edges(self, node: int) -> np.ndarray:
        """Edge ids (into the flat edge arrays) pointing at ``node``."""
        indptr, _, edge_ids = self.csr()
        return edge_ids[indptr[node] : indptr[node + 1]]

    def degree(self) -> np.ndarray:
        """In-degree per node (== out-degree for symmetric graphs)."""
        return np.bincount(self.edge_dst, minlength=self.num_nodes)

    # ------------------------------------------------------------------
    # Subgraph extraction
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Sequence[int]) -> Tuple["HeteroGraph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph plus the array mapping local index ->
        original node id. Node order follows the order of ``nodes``.

        Two implementations produce bit-identical output: a dense
        O(N + E) membership pass over every edge, and — when the CSR is
        already built and ``nodes`` is a small fraction of the graph —
        a gather of only the edges incident to ``nodes``
        (O(deg(nodes))), which is what makes per-request neighbourhood
        induction cheap on a large serving graph. Both share one
        borrowed node->local map (amortized O(k) per call, no O(N)
        allocation on the hot path).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        local_of = self._borrow_local_map()
        try:
            index = np.arange(len(nodes), dtype=np.int64)
            local_of[nodes] = index
            if len(nodes) and np.any(local_of[nodes] != index):
                raise ValueError("subgraph nodes must be unique")
            if self._csr is not None and 0 < len(nodes) * 4 < self.num_nodes:
                candidates = self._candidate_in_edges(nodes)
                src_local_all = local_of[self.edge_src[candidates]]
                keep = src_local_all >= 0
                edge_ids = candidates[keep]
                # Ascending edge ids restore original edge order, so
                # this path is bit-identical to the dense keep mask.
                order = np.argsort(edge_ids, kind="stable")
                edge_ids = edge_ids[order]
                src_local = src_local_all[keep][order]
                dst_local = local_of[self.edge_dst[edge_ids]]
                edge_type = self.edge_type[edge_ids]
            else:
                keep = (local_of[self.edge_src] >= 0) & (local_of[self.edge_dst] >= 0)
                src_local = local_of[self.edge_src[keep]]
                dst_local = local_of[self.edge_dst[keep]]
                edge_type = self.edge_type[keep]
        finally:
            local_of[nodes] = -1  # O(k) reset: the map is clean for reuse
            self._local_map_scratch = local_of
        # Trusted construction: every invariant holds by derivation from
        # this (already validated) graph, so skip the O(nodes + edges)
        # re-validation on the per-request path.
        sub = object.__new__(HeteroGraph)
        sub.node_type = self.node_type[nodes]
        sub.edge_src = src_local
        sub.edge_dst = dst_local
        sub.edge_type = edge_type
        sub.txn_features = self.txn_features[nodes]
        sub.labels = self.labels[nodes]
        sub._csr = None
        sub._version = 0
        return sub, nodes

    def _borrow_local_map(self) -> np.ndarray:
        """Take ownership of the shared all ``-1`` node->local scratch.

        The borrower must reset the entries it wrote and put the array
        back in ``_local_map_scratch``. While borrowed the attribute is
        ``None``, so a concurrent (or re-entrant) caller simply
        allocates its own copy instead of corrupting the shared one.
        """
        scratch = getattr(self, "_local_map_scratch", None)
        if scratch is None or len(scratch) != self.num_nodes:
            return np.full(self.num_nodes, -1, dtype=np.int64)
        self._local_map_scratch = None
        return scratch

    def _candidate_in_edges(self, nodes: np.ndarray) -> np.ndarray:
        """Ids of every edge whose *destination* is in ``nodes``
        (unfiltered CSR gather; callers filter by source membership)."""
        indptr, _, edge_ids_by_dst = self._csr
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        offsets = np.cumsum(counts) - counts
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(starts, counts)
        )
        return edge_ids_by_dst[flat]

    def connected_component(self, seed: int) -> np.ndarray:
        """Node ids of the undirected connected component of ``seed``."""
        visited = np.zeros(self.num_nodes, dtype=bool)
        frontier = [int(seed)]
        visited[seed] = True
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in self.in_neighbors(node):
                    if not visited[neighbor]:
                        visited[neighbor] = True
                        next_frontier.append(int(neighbor))
            frontier = next_frontier
        return np.flatnonzero(visited)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_links(
        node_types: Sequence[int],
        links: Sequence[Tuple[int, int]],
        txn_features: np.ndarray,
        labels: Sequence[int],
    ) -> "HeteroGraph":
        """Build from undirected (txn, entity) links, adding both directions."""
        node_types = np.asarray(node_types, dtype=np.int64)
        src: List[int] = []
        dst: List[int] = []
        etype: List[int] = []
        for a, b in links:
            type_a = NODE_TYPES[node_types[a]]
            type_b = NODE_TYPES[node_types[b]]
            src.append(a)
            dst.append(b)
            etype.append(edge_type_between(type_a, type_b))
            src.append(b)
            dst.append(a)
            etype.append(edge_type_between(type_b, type_a))
        return HeteroGraph(
            node_type=node_types,
            edge_src=np.array(src, dtype=np.int64),
            edge_dst=np.array(dst, dtype=np.int64),
            edge_type=np.array(etype, dtype=np.int64),
            txn_features=txn_features,
            labels=np.asarray(labels, dtype=np.int64),
        )

    def to_networkx(self):
        """Export as an undirected networkx graph (for centrality)."""
        import networkx as nx

        graph = nx.Graph()
        for node in range(self.num_nodes):
            graph.add_node(node, node_type=NODE_TYPES[self.node_type[node]])
        for src, dst in zip(self.edge_src, self.edge_dst):
            graph.add_edge(int(src), int(dst))
        return graph
