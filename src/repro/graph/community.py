"""Community extraction around transaction seeds (Sec. 5.1).

The explainer evaluation works on "communities": for a seed
transaction, all connected nodes and edges are taken (the paper's 41
test communities average 81.56 edges). :func:`extract_community`
returns the connected component of the seed as its own
:class:`HeteroGraph` with the seed's local index, optionally capped by
BFS order for pathological components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .hetero import NODE_TYPE_IDS, HeteroGraph


@dataclass
class Community:
    """A seed-centred connected subgraph used by the explainer."""

    graph: HeteroGraph
    seed_local: int
    seed_original: int
    original_ids: np.ndarray

    @property
    def label(self) -> int:
        """Ground-truth label of the seed transaction."""
        return int(self.graph.labels[self.seed_local])

    @property
    def num_buyers(self) -> int:
        return int(np.sum(self.graph.node_type == NODE_TYPE_IDS["buyer"]))

    @property
    def is_simple(self) -> bool:
        """Paper's Table 13 notion: a simple community has one buyer."""
        return self.num_buyers <= 1

    def undirected_edges(self) -> List[tuple]:
        """Unique undirected (u, v) pairs with u < v."""
        pairs = {
            (min(int(s), int(d)), max(int(s), int(d)))
            for s, d in zip(self.graph.edge_src, self.graph.edge_dst)
        }
        return sorted(pairs)


def extract_community(
    graph: HeteroGraph,
    seed: int,
    max_nodes: Optional[int] = None,
    max_hops: Optional[int] = None,
) -> Community:
    """Seed-centred community as a :class:`Community`.

    By default the full connected component of the seed is taken (the
    paper's wording). ``max_hops`` restricts to the BFS ball of that
    radius around the seed — matching the paper's graphs, which are
    themselves built by k-hop seed expansion (Appendix B), so their
    components are seed-centred neighbourhoods.
    """
    if graph.labels[seed] < 0:
        raise ValueError("community seed must be a labeled transaction node")
    if max_hops is not None:
        nodes = _bfs_ball(graph, seed, max_hops, max_nodes)
    elif max_nodes is None:
        nodes = graph.connected_component(seed)
    else:
        nodes = _bfs_capped(graph, seed, max_nodes)
    subgraph, original_ids = graph.subgraph(nodes)
    seed_local = int(np.flatnonzero(original_ids == seed)[0])
    return Community(
        graph=subgraph,
        seed_local=seed_local,
        seed_original=int(seed),
        original_ids=original_ids,
    )


def _bfs_ball(
    graph: HeteroGraph, seed: int, max_hops: int, max_nodes: Optional[int] = None
) -> np.ndarray:
    """Nodes within ``max_hops`` of the seed (optionally size-capped)."""
    visited = {int(seed)}
    frontier = [int(seed)]
    for _ in range(max_hops):
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor in graph.in_neighbors(node):
                neighbor = int(neighbor)
                if neighbor not in visited:
                    if max_nodes is not None and len(visited) >= max_nodes:
                        return np.array(sorted(visited), dtype=np.int64)
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return np.array(sorted(visited), dtype=np.int64)


def _bfs_capped(graph: HeteroGraph, seed: int, max_nodes: int) -> np.ndarray:
    visited = {int(seed)}
    queue = [int(seed)]
    while queue and len(visited) < max_nodes:
        node = queue.pop(0)
        for neighbor in graph.in_neighbors(node):
            neighbor = int(neighbor)
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
                if len(visited) >= max_nodes:
                    break
    return np.array(sorted(visited), dtype=np.int64)


def select_communities(
    graph: HeteroGraph,
    test_nodes: Sequence[int],
    count: int,
    seed: int = 0,
    min_edges: int = 4,
    max_nodes: Optional[int] = 120,
    fraud_count: Optional[int] = None,
    max_hops: Optional[int] = None,
) -> List[Community]:
    """Randomly select ``count`` seed communities from test transactions.

    Mirrors the paper's sample of 41 communities: seeds are drawn from
    the test set and tiny degenerate components are skipped. When
    ``fraud_count`` is given, that many communities are seeded on fraud
    transactions and the rest on legitimate ones (the paper uses 18
    fraud / 23 legit); otherwise seeds are drawn label-blind.
    """
    rng = np.random.default_rng(seed)
    candidates = rng.permutation(np.asarray(test_nodes, dtype=np.int64))

    if fraud_count is None:
        quotas = {0: count, 1: count}
        remaining_total = count
    else:
        if fraud_count > count:
            raise ValueError("fraud_count cannot exceed count")
        quotas = {1: fraud_count, 0: count - fraud_count}
        remaining_total = count

    chosen: List[Community] = []
    used_nodes: set = set()
    for node in candidates:
        if len(chosen) >= remaining_total:
            break
        if int(node) in used_nodes:
            continue
        label = int(graph.labels[node])
        if quotas.get(label, 0) <= 0:
            continue
        community = extract_community(graph, int(node), max_nodes=max_nodes, max_hops=max_hops)
        if len(community.undirected_edges()) < min_edges:
            continue
        used_nodes.update(int(i) for i in community.original_ids)
        chosen.append(community)
        if fraud_count is not None:
            quotas[label] -= 1

    if fraud_count is not None and len(chosen) < count:
        # Soft quota: if one label ran out of eligible seeds, fill the
        # remainder label-blind so callers still get `count` samples.
        for node in candidates:
            if len(chosen) >= count:
                break
            if int(node) in used_nodes:
                continue
            community = extract_community(graph, int(node), max_nodes=max_nodes, max_hops=max_hops)
            if len(community.undirected_edges()) < min_edges:
                continue
            used_nodes.update(int(i) for i in community.original_ids)
            chosen.append(community)
    return chosen
