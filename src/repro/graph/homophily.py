"""Homophily tests over linking-entity types (paper footnote 1).

The paper chose its entity types "based on the homophilic tests [1]":
fraud exhibits homophilic effects, and entities with strong homophilic
effects were kept in the graph. This module implements those tests —
for each entity type, how much more likely two transactions sharing an
entity of that type are to carry the same label than two random
transactions.

Used to validate synthetic workloads (the stolen-card design makes
``pmt`` strongly fraud-homophilic) and as an analysis tool for real
logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .hetero import NODE_TYPE_IDS, NODE_TYPES, HeteroGraph


@dataclass
class HomophilyScore:
    """Homophily of one entity type.

    ``same_label_rate`` — over all transaction pairs sharing an entity
    of this type, the fraction with equal labels.
    ``baseline_rate`` — the same statistic over random transaction
    pairs (label-marginal expectation).
    ``lift`` — ratio of the two; > 1 means homophilic.
    ``fraud_adjacency`` — P(other txn is fraud | this txn is fraud,
    shares the entity), the risk-propagation view.
    """

    entity_type: str
    num_pairs: int
    same_label_rate: float
    baseline_rate: float
    fraud_adjacency: float

    @property
    def lift(self) -> float:
        if self.baseline_rate <= 0:
            return float("inf") if self.same_label_rate > 0 else 1.0
        return self.same_label_rate / self.baseline_rate


def _txn_pairs_through(
    graph: HeteroGraph, entity_type_id: int, max_pairs_per_entity: int, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """(txn, txn) pairs connected through entities of one type."""
    pairs: List[Tuple[int, int]] = []
    entities = np.flatnonzero(graph.node_type == entity_type_id)
    txn_id = NODE_TYPE_IDS["txn"]
    for entity in entities:
        neighbors = graph.in_neighbors(int(entity))
        txns = neighbors[graph.node_type[neighbors] == txn_id]
        labeled = txns[graph.labels[txns] >= 0]
        if len(labeled) < 2:
            continue
        all_pairs = [
            (int(labeled[i]), int(labeled[j]))
            for i in range(len(labeled))
            for j in range(i + 1, len(labeled))
        ]
        if len(all_pairs) > max_pairs_per_entity:
            chosen = rng.choice(len(all_pairs), size=max_pairs_per_entity, replace=False)
            all_pairs = [all_pairs[c] for c in chosen]
        pairs.extend(all_pairs)
    return pairs


def homophily_score(
    graph: HeteroGraph,
    entity_type: str,
    max_pairs_per_entity: int = 50,
    seed: int = 0,
) -> HomophilyScore:
    """Homophily test for one entity type."""
    if entity_type not in NODE_TYPE_IDS or entity_type == "txn":
        raise KeyError(f"entity_type must be a linking entity, got {entity_type!r}")
    rng = np.random.default_rng(seed)
    pairs = _txn_pairs_through(
        graph, NODE_TYPE_IDS[entity_type], max_pairs_per_entity, rng
    )

    labels = graph.labels
    labeled = labels[labels >= 0]
    fraud_rate = float(np.mean(labeled == 1)) if len(labeled) else 0.0
    baseline = fraud_rate**2 + (1 - fraud_rate) ** 2

    if not pairs:
        return HomophilyScore(entity_type, 0, 0.0, baseline, 0.0)

    same = 0
    fraud_pairs = 0
    fraud_adjacent = 0
    for a, b in pairs:
        if labels[a] == labels[b]:
            same += 1
        if labels[a] == 1 or labels[b] == 1:
            fraud_pairs += 1
            if labels[a] == 1 and labels[b] == 1:
                fraud_adjacent += 1
    return HomophilyScore(
        entity_type=entity_type,
        num_pairs=len(pairs),
        same_label_rate=same / len(pairs),
        baseline_rate=baseline,
        fraud_adjacency=fraud_adjacent / fraud_pairs if fraud_pairs else 0.0,
    )


def homophily_report(
    graph: HeteroGraph, max_pairs_per_entity: int = 50, seed: int = 0
) -> Dict[str, HomophilyScore]:
    """Homophily scores for every linking entity type."""
    return {
        entity_type: homophily_score(
            graph, entity_type, max_pairs_per_entity=max_pairs_per_entity, seed=seed
        )
        for entity_type in NODE_TYPES
        if entity_type != "txn"
    }


def render_homophily_report(scores: Dict[str, HomophilyScore]) -> str:
    """Text table of the homophily tests."""
    lines = [
        f"{'entity':8s} {'pairs':>7s} {'same-label':>11s} {'baseline':>9s} "
        f"{'lift':>6s} {'fraud-adj':>10s}"
    ]
    for name, score in scores.items():
        lift = f"{score.lift:6.2f}" if np.isfinite(score.lift) else "   inf"
        lines.append(
            f"{name:8s} {score.num_pairs:7d} {score.same_label_rate:11.3f} "
            f"{score.baseline_rate:9.3f} {lift} {score.fraud_adjacency:10.3f}"
        )
    return "\n".join(lines)
