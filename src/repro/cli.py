"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``      print Table-2-style stats for the simulated datasets
``train``         train a model on a preset dataset, optionally save it
``evaluate``      load a saved model and evaluate on a preset dataset
``explain``       explain one transaction's prediction (text + DOT)
``pipeline``      run the Appendix-B label pipeline and print each stage
``score``         score transactions through the online ScoringService
``serve``         replay the deterministic chaos demo (``--demo``)
``healthcheck``   exercise a replicated feature tier and dump replica health
``bench-sampler`` time the vectorized sampler fast path vs the reference path
``check``         run invariant audits + the differential fuzzer (CI gate)

Datasets are fully regenerable from (name, seed, scale), so commands
take those instead of data files; model weights persist as ``.npz``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from .data import load_dataset
from .explain import render_dot, render_text
from .graph import extract_community
from .models import DetectorConfig, GATModel, GEMModel, XFraudDetectorPlus
from .nn.serialization import load_state, save_state
from .reliability import CheckpointManager
from .train import TrainConfig, Trainer

MODEL_CHOICES = {
    "detector+": XFraudDetectorPlus,
    "gat": GATModel,
    "gem": GEMModel,
}


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="ebay-small-sim",
        choices=["ebay-small-sim", "ebay-large-sim", "ebay-xlarge-sim"],
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.5)


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="detector+", choices=sorted(MODEL_CHOICES))
    parser.add_argument("--hidden-dim", type=int, default=64)
    parser.add_argument("--heads", type=int, default=4)
    parser.add_argument("--layers", type=int, default=2)


def _build_model(args, feature_dim: int):
    config = DetectorConfig(
        feature_dim=feature_dim,
        hidden_dim=args.hidden_dim,
        num_heads=args.heads,
        num_layers=args.layers,
        seed=args.seed,
    )
    return MODEL_CHOICES[args.model](config)


def _try_load_state(model, path: str) -> Optional[int]:
    """Load saved weights; on a bad --load path print one line and
    return exit code 2 instead of a raw traceback."""
    try:
        load_state(model, path)
    except (FileNotFoundError, ValueError, KeyError) as error:
        message = str(error) or error.__class__.__name__
        print(f"error: cannot load model state: {message}", file=sys.stderr)
        return 2
    return None


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="xFraud reproduction command line"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    datasets = commands.add_parser("datasets", help="print dataset statistics")
    _add_dataset_args(datasets)

    train = commands.add_parser("train", help="train a model")
    _add_dataset_args(train)
    _add_model_args(train)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--batch-size", type=int, default=2048)
    train.add_argument("--lr", type=float, default=5e-3)
    train.add_argument("--save", default=None, help="path to save model state (.npz)")
    train.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write a crash-safe checkpoint here after every epoch",
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    train.add_argument(
        "--keep-last",
        type=int,
        default=3,
        help="checkpoints retained under --checkpoint-dir",
    )
    train.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a chrome://tracing JSON of the fit/epoch span tree here",
    )
    train.add_argument(
        "--elastic",
        action="store_true",
        help="train under the elastic self-healing supervisor",
    )
    train.add_argument(
        "--workers",
        type=int,
        default=8,
        help="elastic worker count (with --elastic)",
    )
    train.add_argument(
        "--chaos",
        action="store_true",
        help="with --elastic: kill 2 of 8 workers mid-run, rejoin 1, and "
        "exit nonzero unless the run self-heals within --chaos-tolerance "
        "of the fault-free curve",
    )
    train.add_argument(
        "--chaos-tolerance",
        type=float,
        default=0.1,
        help="max |AUC(chaos) - AUC(fault-free)| the gate accepts",
    )
    train.add_argument(
        "--stop-after-epoch",
        type=int,
        default=None,
        metavar="E",
        help="with --elastic: checkpoint epoch E then exit (kill-and-resume tests)",
    )
    train.add_argument(
        "--kill-at",
        action="append",
        default=[],
        metavar="E:W[,W...]",
        help="with --elastic: kill workers W at epoch E (repeatable)",
    )
    train.add_argument(
        "--rejoin-at",
        action="append",
        default=[],
        metavar="E:W[,W...]",
        help="with --elastic: rejoin workers W at epoch E (repeatable)",
    )

    evaluate = commands.add_parser("evaluate", help="evaluate a saved model")
    _add_dataset_args(evaluate)
    _add_model_args(evaluate)
    evaluate.add_argument("--load", required=True, help="saved model state (.npz)")

    explain = commands.add_parser("explain", help="explain one transaction")
    _add_dataset_args(explain)
    _add_model_args(explain)
    explain.add_argument("--load", default=None, help="saved model state (.npz)")
    explain.add_argument("--epochs", type=int, default=6, help="detector epochs if training")
    explain.add_argument(
        "--node", type=int, default=None, help="transaction node id (default: first fraud test node)"
    )
    explain.add_argument("--explainer-epochs", type=int, default=50)
    explain.add_argument("--dot", action="store_true", help="also print Graphviz DOT")

    pipeline = commands.add_parser("pipeline", help="Appendix-B label pipeline stages")
    pipeline.add_argument("--seed", type=int, default=0)
    pipeline.add_argument("--buyers", type=int, default=400)

    score = commands.add_parser("score", help="score transactions online")
    _add_dataset_args(score)
    _add_model_args(score)
    score.add_argument("--load", default=None, help="saved model state (.npz)")
    score.add_argument("--epochs", type=int, default=2, help="detector epochs if training")
    score.add_argument(
        "--node",
        type=int,
        action="append",
        default=None,
        help="transaction node id(s); default: first 5 test nodes",
    )
    score.add_argument(
        "--deadline-ms", type=float, default=50.0, help="per-request latency budget"
    )

    serve = commands.add_parser(
        "serve", help="run the online scoring service demo (chaos storyline)"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--scale", type=float, default=0.25)
    serve.add_argument("--epochs", type=int, default=2)
    serve.add_argument("--requests", type=int, default=40)
    serve.add_argument("--burst", type=int, default=20)
    serve.add_argument(
        "--demo",
        action="store_true",
        help="replay the scripted KV-outage incident on a simulated clock",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="print the Prometheus-text metrics exposition after the run",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a chrome://tracing JSON of per-request span trees here",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="micro-batch size for score_batch/drain (default: coalesce all)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="feature-store replicas; N > 1 turns the incident into a "
        "replica kill + silent corruption handled by failover, hedging, "
        "quarantine, and anti-entropy (service stays on the GNN rung)",
    )
    serve.add_argument(
        "--hedge-quantile",
        type=float,
        default=0.95,
        metavar="Q",
        help="per-replica latency quantile that arms a hedged backup read",
    )
    serve.add_argument(
        "--health",
        action="store_true",
        help="print the per-replica health table after the run (needs --replicas > 1)",
    )

    healthcheck = commands.add_parser(
        "healthcheck",
        help="exercise a replicated feature tier and dump per-replica health",
    )
    healthcheck.add_argument("--seed", type=int, default=0)
    healthcheck.add_argument(
        "--replicas", type=int, default=3, metavar="N", help="replica count"
    )
    healthcheck.add_argument(
        "--keys", type=int, default=64, metavar="N", help="synthetic keys to write/read"
    )
    healthcheck.add_argument(
        "--kill-replica",
        type=int,
        default=None,
        metavar="R",
        help="kill replica R for the middle third of the sweep (recovers before the end)",
    )
    healthcheck.add_argument(
        "--metrics",
        action="store_true",
        help="also print the Prometheus-text exposition (kv_replica_* gauges)",
    )
    healthcheck.add_argument(
        "--stream-events",
        type=int,
        default=48,
        metavar="N",
        help="also replay N live events through the streaming scorer and "
        "report stream lag / WAL segments / last-compaction version "
        "(0 disables the stream section)",
    )

    stream = commands.add_parser(
        "stream",
        help="streaming ingestion: WAL + incremental graph + online scoring",
    )
    stream.add_argument(
        "--demo",
        action="store_true",
        help="replay the deterministic event stream through the full "
        "ingest->score->feedback loop (ManualClock), twice, and diff "
        "the verdict streams byte-for-byte",
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--scale", type=float, default=0.25)
    stream.add_argument("--epochs", type=int, default=2)
    stream.add_argument(
        "--events", type=int, default=None, metavar="N", help="cap the event stream"
    )
    stream.add_argument("--batch-size", type=int, default=16, metavar="N")
    stream.add_argument(
        "--compact-every",
        type=int,
        default=64,
        metavar="N",
        help="events between delta-CSR compactions",
    )
    stream.add_argument(
        "--label-delay",
        type=float,
        default=4.0,
        metavar="S",
        help="chargeback lag on the simulated clock",
    )
    stream.add_argument(
        "--runs",
        type=int,
        default=2,
        metavar="N",
        help="replays to run and byte-diff (>= 1)",
    )
    stream.add_argument(
        "--no-drift-burst",
        action="store_true",
        help="skip the deterministic feature shift on the stream tail",
    )
    stream.add_argument("--no-finetune", action="store_true")
    stream.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="persist event-log segments under DIR (default: temp dir)",
    )
    stream.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="checkpoint online fine-tunes under DIR",
    )
    stream.add_argument(
        "--metrics",
        action="store_true",
        help="also print the Prometheus-text exposition (stream_* series)",
    )

    bench_sampler = commands.add_parser(
        "bench-sampler",
        help="benchmark the vectorized sampler fast path vs the reference path",
    )
    bench_sampler.add_argument("--seed", type=int, default=0)
    bench_sampler.add_argument(
        "--buyers", type=int, default=400, help="synthetic-graph size knob"
    )
    bench_sampler.add_argument(
        "--batch-size",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="batch size(s) to time (repeatable; default 1, 16, 128)",
    )
    bench_sampler.add_argument(
        "--targets", type=int, default=128, help="targets scored per timed pass"
    )
    bench_sampler.add_argument("--repeats", type=int, default=3)
    bench_sampler.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless vectorized/reference >= X at the largest batch "
        "size (and the paths sample identical subgraphs)",
    )

    check = commands.add_parser(
        "check",
        help="run the correctness harness: invariant audits + differential fuzzing",
    )
    check.add_argument(
        "--fuzz",
        type=int,
        default=0,
        metavar="N",
        help="differential fuzz trials after the audits (0 = audits only)",
    )
    check.add_argument("--seed", type=int, default=0, help="base fuzz seed")
    check.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict fuzzing to the named scenario(s) (repeatable)",
    )
    check.add_argument(
        "--skip-audit",
        action="store_true",
        help="skip the invariant audits (fuzz only)",
    )
    check.add_argument(
        "--case",
        default=None,
        metavar="SCENARIO",
        help="replay one fuzz case: --case NAME --seed S --size K",
    )
    check.add_argument(
        "--size", type=int, default=3, help="case size for --case replay"
    )
    check.add_argument(
        "--keep-going",
        action="store_true",
        help="collect every fuzz divergence instead of stopping at the first",
    )
    check.add_argument(
        "--list",
        action="store_true",
        dest="list_checks",
        help="list registered invariant checkers and fuzz scenarios, then exit",
    )

    return parser


# ----------------------------------------------------------------------
def _cmd_datasets(args) -> int:
    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    summary = bundle.summary()
    print(f"dataset        : {summary['dataset']}")
    print(f"features       : {summary['features']}")
    print(f"nodes / edges  : {summary['num_nodes']:,} / {summary['num_edges']:,}")
    print(f"fraud rate     : {summary['fraud_pct']}%")
    print(f"edges per node : {summary['edges_per_node']}")
    print(f"node types     : {summary['node_type_counts']}")
    return 0


def _cmd_train(args) -> int:
    if args.elastic:
        return _cmd_train_elastic(args)
    manager = None
    resume_from = None
    if args.checkpoint_dir:
        manager = CheckpointManager(args.checkpoint_dir, keep_last=args.keep_last)
        if args.resume:
            resume_from = manager.latest()
            if resume_from is None:
                print(
                    f"error: --resume given but no checkpoints in {args.checkpoint_dir}",
                    file=sys.stderr,
                )
                return 2
    elif args.resume:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    model = _build_model(args, bundle.graph.feature_dim)
    tracer = None
    if args.trace_out:
        from .obs import Tracer

        tracer = Tracer()
    trainer = Trainer(
        model,
        TrainConfig(epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.lr),
        tracer=tracer,
    )
    if resume_from is not None:
        print(f"resuming from {resume_from}")
    result = trainer.fit(
        bundle.graph,
        bundle.train_nodes,
        eval_nodes=bundle.test_nodes,
        checkpoint=manager,
        resume_from=resume_from,
    )
    metrics = trainer.evaluate(bundle.graph, bundle.test_nodes)
    timing = result.epoch_time_percentiles()
    print(
        f"trained {args.model} for {len(result.history)} epochs "
        f"({result.seconds_per_epoch:.2f}s/epoch, "
        f"p50={timing['p50']:.2f}s p95={timing['p95']:.2f}s p99={timing['p99']:.2f}s)"
    )
    print(
        f"test: accuracy={metrics['accuracy']:.4f} ap={metrics['ap']:.4f} "
        f"auc={metrics['auc']:.4f}"
    )
    if args.save:
        path = save_state(model, args.save)
        print(f"saved model state to {path}")
    if tracer is not None:
        from .obs import write_chrome_trace

        events = write_chrome_trace(tracer.spans(), args.trace_out)
        print(f"wrote {events} trace events to {args.trace_out} (open in chrome://tracing)")
    return 0


# Scripted chaos for the CI gate: kill 2 of 8 workers at epoch 1 (the
# detector must evict them and re-shard), rejoin one at epoch 3 (probing
# readmission), slow one worker 4x at epoch 2 (backup execution), and
# corrupt one gradient at epoch 2 (quarantine). Deterministic on the
# supervisor's ManualClock, so the gate replays bit-for-bit.
_CHAOS_WORKERS = 8
_CHAOS_MIN_EPOCHS = 5
_CHAOS_KILL = {1: [2, 5]}
_CHAOS_REJOIN = {3: [5]}
_CHAOS_SLOW = {2: {1: 4.0}}
_CHAOS_CORRUPT = {2: [3]}


def _elastic_run(args, bundle, fault_plan=None, checkpoint=None):
    """One supervised run; returns (result, ElasticTrainer)."""
    from .train import ElasticTrainer

    model = _build_model(args, bundle.graph.feature_dim)
    trainer = ElasticTrainer(
        model,
        bundle.graph,
        bundle.train_nodes,
        num_workers=args.workers,
        config=TrainConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.lr,
            seed=args.seed,
        ),
        fault_plan=fault_plan,
        checkpoint=checkpoint,
    )
    result = trainer.fit(
        bundle.graph,
        bundle.test_nodes,
        resume=bool(args.resume),
        stop_after_epoch=args.stop_after_epoch,
    )
    return result, trainer


def _parse_schedule(specs):
    """Parse repeated ``E:W[,W...]`` flags into {epoch: [worker ids]}."""
    schedule = {}
    for spec in specs:
        epoch, _, workers = spec.partition(":")
        schedule.setdefault(int(epoch), []).extend(
            int(w) for w in workers.split(",") if w
        )
    return schedule


def _cmd_train_elastic(args) -> int:
    from .reliability import FaultPlan
    from .train import SkipBudgetExhaustedError

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)

    if not args.chaos:
        plan = None
        kills = _parse_schedule(args.kill_at)
        rejoins = _parse_schedule(args.rejoin_at)
        if kills or rejoins:
            plan = FaultPlan(
                num_workers=args.workers, worker_kill=kills, worker_rejoin=rejoins
            )
        try:
            result, _ = _elastic_run(
                args, bundle, fault_plan=plan, checkpoint=args.checkpoint_dir
            )
        except SkipBudgetExhaustedError as error:
            print(f"ABORT: {error}", file=sys.stderr)
            return 2
        print(f"elastic training over {args.workers} workers:")
        print(result.describe())
        if result.metrics:
            print(
                f"test: accuracy={result.metrics['accuracy']:.4f} "
                f"ap={result.metrics['ap']:.4f} auc={result.metrics['auc']:.4f}"
            )
        return 0

    # ---- deterministic chaos gate (CI) --------------------------------
    if args.workers != _CHAOS_WORKERS or args.epochs < _CHAOS_MIN_EPOCHS:
        print(
            f"error: --chaos is scripted for --workers {_CHAOS_WORKERS} "
            f"and --epochs >= {_CHAOS_MIN_EPOCHS}",
            file=sys.stderr,
        )
        return 2
    print("chaos gate: fault-free baseline ...")
    baseline, _ = _elastic_run(args, bundle)
    plan = FaultPlan(
        num_workers=args.workers,
        worker_kill=_CHAOS_KILL,
        worker_rejoin=_CHAOS_REJOIN,
        worker_slow=_CHAOS_SLOW,
        grad_corrupt=_CHAOS_CORRUPT,
    )
    print("chaos gate: kill 2/8 at epoch 1, rejoin 1 at epoch 3 ...")
    try:
        chaos, _ = _elastic_run(args, bundle, fault_plan=plan, checkpoint=args.checkpoint_dir)
    except SkipBudgetExhaustedError as error:
        print(f"ABORT: {error}", file=sys.stderr)
        return 2
    print(chaos.describe())

    failures = []
    evicted = sorted(w for record in chaos.history for w in record.evicted)
    if evicted != sorted(w for ws in _CHAOS_KILL.values() for w in ws):
        failures.append(f"expected evictions {_CHAOS_KILL}, saw {evicted}")
    rejoined = sorted(w for record in chaos.history for w in record.rejoined)
    if rejoined != sorted(w for ws in _CHAOS_REJOIN.values() for w in ws):
        failures.append(f"expected rejoins {_CHAOS_REJOIN}, saw {rejoined}")
    if chaos.total_backups < 1:
        failures.append("straggler backup never fired")
    if chaos.total_quarantined < 1:
        failures.append("corrupt gradient was never quarantined")
    if chaos.total_rollbacks < 1:
        failures.append("eviction did not trigger a checkpoint rollback")
    base_auc = baseline.metrics.get("auc", float("nan"))
    chaos_auc = chaos.metrics.get("auc", float("nan"))
    delta = abs(base_auc - chaos_auc)
    if not delta <= args.chaos_tolerance:
        failures.append(
            f"chaos AUC {chaos_auc:.4f} vs fault-free {base_auc:.4f}: "
            f"|delta| {delta:.4f} > tolerance {args.chaos_tolerance}"
        )
    print(
        f"fault-free auc={base_auc:.4f} chaos auc={chaos_auc:.4f} "
        f"delta={delta:.4f} (tolerance {args.chaos_tolerance})"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos gate passed: evicted, re-sharded, rolled back, readmitted, converged")
    return 0


def _cmd_evaluate(args) -> int:
    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    model = _build_model(args, bundle.graph.feature_dim)
    code = _try_load_state(model, args.load)
    if code is not None:
        return code
    trainer = Trainer(model, TrainConfig(epochs=0))
    metrics = trainer.evaluate(bundle.graph, bundle.test_nodes)
    print(
        f"test: accuracy={metrics['accuracy']:.4f} ap={metrics['ap']:.4f} "
        f"auc={metrics['auc']:.4f}"
    )
    return 0


def _cmd_explain(args) -> int:
    from .explain import ExplainerConfig, GNNExplainer

    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    model = _build_model(args, bundle.graph.feature_dim)
    if args.load:
        code = _try_load_state(model, args.load)
        if code is not None:
            return code
    else:
        print("no --load given; training a detector first ...")
        Trainer(
            model, TrainConfig(epochs=args.epochs, batch_size=2048, learning_rate=5e-3)
        ).fit(bundle.graph, bundle.train_nodes)

    if args.node is not None:
        node = args.node
        if node < 0 or node >= bundle.graph.num_nodes or bundle.graph.labels[node] < 0:
            print(f"error: node {node} is not a labeled transaction", file=sys.stderr)
            return 2
    else:
        fraud_tests = [n for n in bundle.test_nodes if bundle.graph.labels[n] == 1]
        node = int(fraud_tests[0]) if fraud_tests else int(bundle.test_nodes[0])

    community = extract_community(bundle.graph, node, max_nodes=100)
    score = model.predict_proba(community.graph, [community.seed_local])[0]
    explainer = GNNExplainer(model, ExplainerConfig(epochs=args.explainer_epochs))
    explanation = explainer.explain(community.graph, community.seed_local)
    weights = explanation.undirected_edge_weights(community.graph)

    print(f"transaction node {node}: risk score {score:.4f} "
          f"(truth: {'fraud' if community.label == 1 else 'legit'})")
    print(render_text(community, weights, top_edges=8))
    top = explanation.top_features(community.seed_local, k=5)
    print(f"top feature dims for the seed: {top.tolist()}")
    if args.dot:
        print(render_dot(community, weights))
    return 0


def _cmd_pipeline(args) -> int:
    from .data import GeneratorConfig, TransactionGenerator
    from .rules import appendix_b_pipeline

    generator = TransactionGenerator(
        GeneratorConfig(num_benign_buyers=args.buyers, seed=args.seed)
    )
    raw = generator.generate()
    result = appendix_b_pipeline(raw)
    print(result.describe())
    if len(result.rules):
        print("\nmined platform rules:")
        print(result.rules.describe())
    return 0


def _cmd_score(args) -> int:
    from .serving import ScoreRequest, ScoringService, ServiceConfig

    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    model = _build_model(args, bundle.graph.feature_dim)
    if args.load:
        code = _try_load_state(model, args.load)
        if code is not None:
            return code
    elif args.epochs > 0:
        print(f"no --load given; training {args.model} for {args.epochs} epochs ...")
        Trainer(model, TrainConfig(epochs=args.epochs, batch_size=2048)).fit(
            bundle.graph, bundle.train_nodes
        )

    nodes = args.node if args.node else [int(n) for n in bundle.test_nodes[:5]]
    for node in nodes:
        if node < 0 or node >= bundle.graph.num_nodes or bundle.graph.labels[node] < 0:
            print(f"error: node {node} is not a labeled transaction", file=sys.stderr)
            return 2

    with ScoringService(
        model,
        bundle.graph,
        config=ServiceConfig(deadline_s=args.deadline_ms / 1000.0),
    ) as service:
        for node in nodes:
            response = service.score(ScoreRequest(node=node))
            print(
                f"node {response.node:6d}: score={response.score:.4f} "
                f"verdict={response.verdict:5s} rung={response.rung} "
                f"latency={response.latency_s * 1000:.2f}ms"
            )
        print()
        print(service.stats.describe())
    return 0


def _cmd_serve(args) -> int:
    from .serving import run_demo

    if not args.demo:
        print(
            "error: only the deterministic demo is implemented; pass --demo",
            file=sys.stderr,
        )
        return 2
    if args.batch_size is not None and args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.replicas < 1:
        print("error: --replicas must be >= 1", file=sys.stderr)
        return 2
    registry = None
    if args.metrics:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    replicated = args.replicas > 1
    tier = f"{args.replicas}-replica feature tier" if replicated else "single feature store"
    print(
        f"replaying scripted incident: {args.requests} requests + burst of "
        f"{args.burst} on a simulated clock (seed={args.seed}, {tier}) ..."
    )
    result = run_demo(
        seed=args.seed,
        scale=args.scale,
        epochs=args.epochs,
        requests=args.requests,
        burst=args.burst,
        registry=registry,
        trace=bool(args.trace_out),
        batch_size=args.batch_size,
        replicas=args.replicas,
        hedge_quantile=args.hedge_quantile,
    )
    transitions = " -> ".join(result.stats.breaker_state_path()) or "closed"
    for response in result.responses[:8]:
        print(
            f"  node {response.node:6d}: verdict={response.verdict:5s} "
            f"rung={response.rung:5s} "
            f"degraded={response.degraded_reason or '-'}"
        )
    print("  ...")
    print()
    print(result.stats.describe())
    print(f"\nbreaker journey : {transitions}")
    print(f"shed with verdict: {len(result.shed_responses)} (all rung=prior)")
    if replicated and result.anti_entropy is not None:
        print(result.anti_entropy.describe())
    if args.health and result.feature_store is not None:
        print()
        print(result.feature_store.describe())
    if args.trace_out:
        from .obs import write_chrome_trace

        events = write_chrome_trace(result.service.tracer.spans(), args.trace_out)
        print(f"wrote {events} trace events to {args.trace_out} (open in chrome://tracing)")
    if registry is not None:
        print()
        print(registry.render(), end="")
    if replicated:
        return _check_replicated_run(result)
    return 0


def _check_replicated_run(result) -> int:
    """CI-facing assertions for ``serve --demo --replicas N``: the
    replica kill and silent corruption must be fully absorbed — zero
    KV failures reach the service, no storage-attributed degradations,
    at least one per-replica breaker journeys through open (proof the
    failover actually exercised), and every breaker recovers."""
    stats = result.stats
    failures = []
    if stats.kv_failures != 0:
        failures.append(f"kv_failures={stats.kv_failures} (expected 0)")
    storage_degraded = {
        reason: count
        for reason, count in stats.degraded_reasons.items()
        if "kv" in reason or "feature" in reason or "storage" in reason
    }
    if storage_degraded:
        failures.append(f"storage-attributed degradations: {storage_degraded}")
    paths = stats.replica_breaker_paths()
    if not any("open" in path for path in paths.values()):
        failures.append("no replica breaker ever opened — failover not exercised")
    not_recovered = {r: p for r, p in paths.items() if p and p[-1] != "closed"}
    if not_recovered:
        failures.append(f"replica breakers did not recover: {not_recovered}")
    if result.anti_entropy is not None and result.anti_entropy.unrepairable:
        failures.append(
            f"anti-entropy left {result.anti_entropy.unrepairable} copies unrepairable"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("\nok: replica failover absorbed — zero storage-attributed degradations")
    return 0


def _cmd_healthcheck(args) -> int:
    """Exercise a small replicated tier end to end and print its health.

    Synthetic and self-contained: N in-memory replicas on a simulated
    clock, a write + read sweep over ``--keys`` keys, optionally a
    scripted kill of one replica for the middle third of the sweep, an
    anti-entropy pass, and finally the per-replica health table (plus
    the Prometheus text exposition with ``--metrics``). Exits 1 if any
    replica is still dead at the end — the shape a real deployment's
    liveness probe would take.
    """
    from .obs import MetricsRegistry
    from .reliability.faults import FaultPlan, ManualClock, SlowKVStore
    from .storage import InMemoryKVStore, ReplicatedConfig, ReplicatedKVStore

    if args.replicas < 1 or args.keys < 1:
        print("error: --replicas and --keys must be >= 1", file=sys.stderr)
        return 2
    if args.kill_replica is not None and not (0 <= args.kill_replica < args.replicas):
        print("error: --kill-replica out of range", file=sys.stderr)
        return 2

    clock = ManualClock()
    registry = MetricsRegistry()
    backings = [InMemoryKVStore() for _ in range(args.replicas)]
    replicas = [SlowKVStore(b, clock, delay_s=0.001) for b in backings]
    # One read per key advances the clock ~1ms; the kill window covers
    # the middle third of the sweep and ends well before the final
    # probe reads, so a healthy run always recovers.
    sweep_s = args.keys * 0.001
    replica_kill = {}
    if args.kill_replica is not None:
        replica_kill = {args.kill_replica: [(sweep_s / 3.0, 2.0 * sweep_s / 3.0)]}
    plan = FaultPlan(num_workers=args.replicas, seed=args.seed, replica_kill=replica_kill)
    config = ReplicatedConfig(
        replication_factor=min(2, args.replicas),
        suspect_after=1,
        dead_after=2,
        probe_interval_s=sweep_s / 10.0,
        concurrent_hedge=False,
    )
    store = ReplicatedKVStore(
        plan.wrap_replicas(replicas, clock), config=config, clock=clock, seed=args.seed
    ).instrument(registry)

    for index in range(args.keys):
        store.put(f"hc/{index}", f"value-{index}".encode())
    for _ in range(3):  # three sweeps: before, during, and after the kill
        for index in range(args.keys):
            store.get(f"hc/{index}")
    report = store.anti_entropy(repair=True)
    clock.advance(config.probe_interval_s * 2)
    for index in range(args.keys):  # final sweep re-probes anything dead
        store.get(f"hc/{index}")
    store.export_health()  # refresh the kv_replica_* gauges

    print(store.describe())
    print()
    print(report.describe())
    if args.metrics:
        print()
        print(registry.render(), end="")
    dead = [health.index for health in store.health if health.state == "dead"]

    if args.stream_events > 0:
        # Streaming-plane health alongside the replica table: a tiny
        # untrained replay is enough to surface lag, WAL segmentation,
        # and compaction bookkeeping.
        from .stream import run_stream_demo

        result = run_stream_demo(
            seed=args.seed,
            scale=0.1,
            epochs=0,
            max_events=max(8, args.stream_events * 2),
            batch_size=8,
            compact_every=16,
            drift_burst=False,
            finetune=False,
        )
        print()
        print(result.health.describe())

    if dead:
        print(f"\nFAIL: replicas still dead at end of sweep: {dead}", file=sys.stderr)
        return 1
    print("\nok: all replicas serving")
    return 0


def _cmd_stream(args) -> int:
    """Deterministic replay-and-score gate behind ``repro stream --demo``.

    Runs the scripted stream ``--runs`` times with identical seeds and
    byte-diffs the verdict streams: any nondeterminism in WAL framing,
    incremental graph maintenance, cache keying, sampling, or the
    feedback plane shows up as a digest mismatch and a non-zero exit.
    Also enforces the delta-vs-compacted subgraph gate each run.
    """
    from .obs import MetricsRegistry
    from .stream import run_stream_demo

    if not args.demo:
        print("error: only --demo mode is implemented", file=sys.stderr)
        return 2
    if args.runs < 1:
        print("error: --runs must be >= 1", file=sys.stderr)
        return 2

    results = []
    registry = MetricsRegistry() if args.metrics else None
    for run in range(args.runs):
        wal_dir = (
            os.path.join(args.wal_dir, f"run-{run}") if args.wal_dir is not None else None
        )
        checkpoint_dir = (
            os.path.join(args.checkpoint_dir, f"run-{run}")
            if args.checkpoint_dir is not None
            else None
        )
        results.append(
            run_stream_demo(
                seed=args.seed,
                scale=args.scale,
                epochs=args.epochs,
                max_events=args.events,
                batch_size=args.batch_size,
                compact_every=args.compact_every,
                label_delay_s=args.label_delay,
                drift_burst=not args.no_drift_burst,
                finetune=not args.no_finetune,
                wal_dir=wal_dir,
                checkpoint_dir=checkpoint_dir,
                registry=registry if run == 0 else None,
            )
        )

    first = results[0]
    print(
        f"stream demo: {first.warmup_events} warmup + {first.streamed_events} "
        f"streamed events (seed {args.seed}, scale {args.scale})"
    )
    print()
    print(first.health.describe())
    print()
    auc = first.online_auc
    print(f"prequential auc     : {'n/a' if auc != auc else f'{auc:.4f}'}")
    print(f"drift alerts        : {len(first.drift_reports)}")
    for report in first.drift_reports[:3]:
        print(
            f"  [{report.signal}] psi={report.psi:.3f} ks={report.ks:.3f} "
            f"over {report.samples} samples"
        )
    print(f"verdict digest      : {first.verdict_digest:#010x}")
    print(f"final graph version : {first.graph_version}")

    failures = []
    for run, result in enumerate(results[1:], start=1):
        if result.verdict_lines != first.verdict_lines:
            failures.append(f"run {run}: verdict stream diverged from run 0")
        if result.graph_version != first.graph_version:
            failures.append(
                f"run {run}: final graph version {result.graph_version} "
                f"!= {first.graph_version}"
            )
    for run, result in enumerate(results):
        if not result.subgraph_gate_passed:
            failures.append(f"run {run}: delta-vs-compacted subgraph gate failed")

    if args.metrics:
        print()
        print(registry.render(), end="")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.runs > 1:
        print(f"\nok: {args.runs} replays byte-identical, subgraph gate passed")
    else:
        print("\nok: subgraph gate passed")
    return 0


def _cmd_bench_sampler(args) -> int:
    from .graph.benchmark import (
        DEFAULT_BATCH_SIZES,
        build_bench_graph,
        check_fastpath,
        render_fastpath_report,
        run_fastpath_benchmark,
    )

    batch_sizes = tuple(args.batch_size) if args.batch_size else DEFAULT_BATCH_SIZES
    if any(size < 1 for size in batch_sizes) or args.buyers < 1 or args.targets < 1:
        print(
            "error: --batch-size, --buyers, and --targets must be >= 1",
            file=sys.stderr,
        )
        return 2
    print(
        f"building synthetic graph (buyers={args.buyers}, seed={args.seed}) ..."
    )
    graph = build_bench_graph(num_buyers=args.buyers, seed=args.seed)
    print(
        f"graph: {graph.num_nodes:,} nodes / {graph.num_edges:,} edges; "
        f"timing batch sizes {list(batch_sizes)} x{args.repeats} repeats"
    )
    results = run_fastpath_benchmark(
        graph,
        batch_sizes=batch_sizes,
        total_targets=args.targets,
        repeats=args.repeats,
        seed=args.seed,
    )
    print()
    print(render_fastpath_report(results))
    if args.min_speedup is not None:
        failures = check_fastpath(
            results, args.min_speedup, at_batch_size=max(batch_sizes)
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"\nok: equivalence holds and speedup >= {args.min_speedup:.1f}x "
            f"at batch {max(batch_sizes)}"
        )
    return 0


def _cmd_check(args) -> int:
    from .check import REGISTRY, SCENARIOS, run_audits, run_case, run_fuzz

    if args.list_checks:
        print("invariant checkers:")
        for check in REGISTRY.values():
            print(f"  {check.name:28s} [{check.layer}] falsifies: {check.falsifies}")
        print("fuzz scenarios:")
        for name in SCENARIOS:
            print(f"  {name}")
        return 0

    if args.case is not None:
        detail = run_case(args.case, args.seed, args.size)
        if detail is None:
            print(f"OK    {args.case} seed={args.seed} size={args.size}")
            return 0
        print(f"FAIL  {args.case} seed={args.seed} size={args.size}: {detail}")
        return 1

    failed = False
    if not args.skip_audit:
        results = run_audits()
        width = max(len(result.name) for result in results)
        for result in results:
            status = "PASS" if result.passed else "FAIL"
            print(f"{status}  {result.name:{width}s}  [{result.layer}]")
            for violation in result.violations:
                print(f"        {violation}")
        bad = sum(1 for result in results if not result.passed)
        failed = failed or bad > 0
        print(f"audits: {len(results) - bad}/{len(results)} passed")

    if args.fuzz > 0:
        report = run_fuzz(
            args.fuzz,
            seed=args.seed,
            names=args.scenario,
            stop_on_first=not args.keep_going,
            progress=lambda line: print(f"fuzz: {line}"),
        )
        spread = ", ".join(
            f"{name}={count}" for name, count in report.per_scenario.items()
        )
        print(f"fuzz: {report.trials} trials ({spread})")
        for failure in report.failures:
            print(
                f"FAIL  {failure.scenario} seed={failure.seed} size={failure.size}: "
                f"{failure.detail}"
            )
            print(
                f"      shrunk to seed={failure.shrunk_seed} size={failure.shrunk_size} "
                f"in {failure.shrink_steps} attempts: {failure.shrunk_detail}"
            )
            print(f"      repro: {failure.repro_command()}")
        failed = failed or not report.ok
        if report.ok:
            print("fuzz: no divergence")

    return 1 if failed else 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "explain": _cmd_explain,
    "pipeline": _cmd_pipeline,
    "score": _cmd_score,
    "serve": _cmd_serve,
    "healthcheck": _cmd_healthcheck,
    "stream": _cmd_stream,
    "bench-sampler": _cmd_bench_sampler,
    "check": _cmd_check,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
