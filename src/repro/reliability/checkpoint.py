"""Crash-safe training checkpoints (Appendix H.5: daily retrains).

A checkpoint captures *everything* a training run needs to continue as
if it had never stopped: model parameters, optimizer moments, every RNG
the run draws from (trainer shuffling + module dropout), and the
early-stopping bookkeeping. Restoring one therefore reproduces the
uninterrupted run bit for bit — asserted by the kill-and-resume test.

Durability discipline:

* every file is written atomically — temp file in the same directory,
  ``fsync``, then ``os.replace`` (a crash leaves either the old file or
  the new one, never a torn write);
* ``MANIFEST.json`` records a CRC32 per checkpoint and is itself
  written atomically; :meth:`CheckpointManager.load` verifies the CRC
  before trusting an archive;
* rotation keeps the newest ``keep_last`` checkpoints.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

_MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_FORMAT = "repro-ckpt-manifest-v1"
_CHECKPOINT_FORMAT = "repro-ckpt-v1"
_META_KEY = "__meta__"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, truncated, or fails its checksum."""


def fsync_dir(directory: str) -> None:
    """fsync a directory so renames/unlinks inside it are durable."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash never leaves a torn file."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    fsync_dir(directory)


# -- RNG capture --------------------------------------------------------
def _iter_modules(module, prefix: str = "") -> Iterator[Tuple[str, object]]:
    yield prefix, module
    for name, child in getattr(module, "_modules", {}).items():
        yield from _iter_modules(child, prefix=f"{prefix}{name}.")


def collect_rng_states(module) -> Dict[str, dict]:
    """Snapshot every ``np.random.Generator`` owned by the module tree.

    Dropout layers (and the heterogeneous conv's attention dropout)
    consume their generator during training, so resuming bit-exactly
    requires restoring these alongside the parameters.
    """
    states: Dict[str, dict] = {}
    for path, mod in _iter_modules(module):
        for attr, value in vars(mod).items():
            if isinstance(value, np.random.Generator):
                states[f"{path}{attr}"] = value.bit_generator.state
    return states


def restore_rng_states(module, states: Dict[str, dict]) -> None:
    """Restore generator states captured by :func:`collect_rng_states`."""
    for path, mod in _iter_modules(module):
        for attr, value in vars(mod).items():
            key = f"{path}{attr}"
            if isinstance(value, np.random.Generator) and key in states:
                value.bit_generator.state = states[key]


# -- training state -----------------------------------------------------
@dataclass
class TrainingState:
    """Complete snapshot of a training run after ``epoch`` finished."""

    epoch: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict
    rng_states: Dict
    best_state: Optional[Dict[str, np.ndarray]] = None
    best_auc: float = 0.0
    epochs_since_best: int = 0
    history: List[Dict] = field(default_factory=list)


def _encode_checkpoint(state: TrainingState) -> bytes:
    """Flatten a :class:`TrainingState` into one ``.npz`` byte blob."""
    arrays: Dict[str, np.ndarray] = {}
    for name, value in state.model_state.items():
        arrays[f"model::{name}"] = value
    if state.best_state is not None:
        for name, value in state.best_state.items():
            arrays[f"best::{name}"] = value
    optim_scalars: Dict[str, object] = {}
    optim_array_fields: Dict[str, int] = {}
    for key, value in state.optimizer_state.items():
        if isinstance(value, list) and all(isinstance(item, np.ndarray) for item in value):
            optim_array_fields[key] = len(value)
            for index, item in enumerate(value):
                arrays[f"optim::{key}::{index:04d}"] = item
        elif isinstance(value, np.ndarray):
            optim_array_fields[key] = -1  # single array, not a list
            arrays[f"optim::{key}::single"] = value
        else:
            optim_scalars[key] = value
    meta = {
        "format": _CHECKPOINT_FORMAT,
        "epoch": state.epoch,
        "best_auc": state.best_auc,
        "epochs_since_best": state.epochs_since_best,
        "history": state.history,
        "rng_states": state.rng_states,
        "optim_scalars": optim_scalars,
        "optim_array_fields": optim_array_fields,
        "has_best": state.best_state is not None,
    }
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def _decode_checkpoint(blob: bytes, origin: str) -> TrainingState:
    try:
        archive = np.load(io.BytesIO(blob), allow_pickle=False)
    except (ValueError, OSError) as error:
        raise CheckpointError(f"{origin}: not a checkpoint archive: {error}") from error
    with archive:
        if _META_KEY not in archive.files:
            raise CheckpointError(f"{origin}: missing checkpoint metadata")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        if meta.get("format") != _CHECKPOINT_FORMAT:
            raise CheckpointError(f"{origin}: unsupported format {meta.get('format')!r}")
        model_state: Dict[str, np.ndarray] = {}
        best_state: Dict[str, np.ndarray] = {}
        optim_lists: Dict[str, Dict[int, np.ndarray]] = {}
        optim_state: Dict = dict(meta["optim_scalars"])
        for key in archive.files:
            if key == _META_KEY:
                continue
            section, _, rest = key.partition("::")
            if section == "model":
                model_state[rest] = archive[key]
            elif section == "best":
                best_state[rest] = archive[key]
            elif section == "optim":
                name, _, index = rest.partition("::")
                if index == "single":
                    optim_state[name] = archive[key]
                else:
                    optim_lists.setdefault(name, {})[int(index)] = archive[key]
        for name, expected in meta["optim_array_fields"].items():
            if expected == -1:
                continue
            items = optim_lists.get(name, {})
            if len(items) != expected:
                raise CheckpointError(f"{origin}: optimizer field {name!r} is incomplete")
            optim_state[name] = [items[i] for i in range(expected)]
    return TrainingState(
        epoch=int(meta["epoch"]),
        model_state=model_state,
        optimizer_state=optim_state,
        rng_states=meta["rng_states"],
        best_state=best_state if meta["has_best"] else None,
        best_auc=float(meta["best_auc"]),
        epochs_since_best=int(meta["epochs_since_best"]),
        history=list(meta["history"]),
    )


# -- manager ------------------------------------------------------------
class CheckpointManager:
    """Rotating, checksummed checkpoints under one directory."""

    def __init__(self, directory: str, keep_last: int = 3) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = directory
        self.keep_last = keep_last
        os.makedirs(directory, exist_ok=True)

    # -- manifest -------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST_NAME)

    def _read_manifest(self) -> Dict:
        if not os.path.exists(self.manifest_path):
            return {"format": _MANIFEST_FORMAT, "checkpoints": []}
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as error:
                raise CheckpointError(f"{self.manifest_path}: corrupt manifest: {error}") from error
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise CheckpointError(
                f"{self.manifest_path}: unsupported manifest format {manifest.get('format')!r}"
            )
        return manifest

    def _write_manifest(self, manifest: Dict) -> None:
        atomic_write_bytes(
            self.manifest_path, json.dumps(manifest, indent=2).encode("utf-8")
        )

    def checkpoints(self) -> List[Dict]:
        """Manifest entries (oldest first) whose files still exist."""
        manifest = self._read_manifest()
        return [
            entry
            for entry in manifest["checkpoints"]
            if os.path.exists(os.path.join(self.directory, entry["file"]))
        ]

    def latest(self) -> Optional[str]:
        """Path of the newest checkpoint, or ``None``."""
        entries = self.checkpoints()
        if not entries:
            return None
        newest = max(entries, key=lambda entry: entry["epoch"])
        return os.path.join(self.directory, newest["file"])

    # -- save / load ----------------------------------------------------
    def save(self, state: TrainingState) -> str:
        """Atomically write one checkpoint; rotate old ones out.

        Rotation ordering is part of the durability contract: the
        manifest (the pointer to the newest checkpoint) is written and
        directory-fsynced *before* any stale archive is unlinked, and
        the unlinks are fsynced afterwards. A crash at any point
        therefore leaves a manifest whose newest entry exists on disk —
        at worst with an orphaned stale archive alongside it, never
        with the newest checkpoint unreachable.
        """
        blob = _encode_checkpoint(state)
        filename = f"ckpt-{state.epoch:06d}.npz"
        path = os.path.join(self.directory, filename)
        atomic_write_bytes(path, blob)

        manifest = self._read_manifest()
        entries = [e for e in manifest["checkpoints"] if e["file"] != filename]
        entries.append(
            {"file": filename, "epoch": state.epoch, "crc32": zlib.crc32(blob), "size": len(blob)}
        )
        entries.sort(key=lambda entry: entry["epoch"])
        stale_entries = []
        while len(entries) > self.keep_last:
            stale_entries.append(entries.pop(0))
        manifest["checkpoints"] = entries
        self._write_manifest(manifest)
        for stale in stale_entries:
            stale_path = os.path.join(self.directory, stale["file"])
            if os.path.exists(stale_path):
                os.remove(stale_path)
        if stale_entries:
            fsync_dir(self.directory)
        return path

    def load(self, path: Optional[str] = None) -> TrainingState:
        """Load (and CRC-verify) a checkpoint; default: the newest."""
        if path is None:
            path = self.latest()
            if path is None:
                raise CheckpointError(f"no checkpoints in {self.directory}")
        if not os.path.exists(path):
            raise CheckpointError(f"checkpoint {path} does not exist")
        with open(path, "rb") as handle:
            blob = handle.read()
        entry = next(
            (
                e
                for e in self._read_manifest()["checkpoints"]
                if e["file"] == os.path.basename(path)
            ),
            None,
        )
        if entry is not None:
            if len(blob) != entry["size"] or zlib.crc32(blob) != entry["crc32"]:
                raise CheckpointError(f"{path}: checksum mismatch (truncated or corrupt)")
        return _decode_checkpoint(blob, origin=path)
