"""repro.reliability — fault tolerance for training and storage.

Production xFraud (Sec. 3.3, Appendix H.5) retrains daily over a
KV-store-backed graph; this subsystem supplies the durability layer a
deployment needs: crash-safe checkpoint/resume, deterministic failure
injection for the simulated DDP cluster, and checksummed, retryable
storage reads.
"""

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    TrainingState,
    atomic_write_bytes,
    collect_rng_states,
    fsync_dir,
    restore_rng_states,
)
from .faults import (
    CorruptKVStore,
    FaultEvent,
    FaultPlan,
    FlakyKVStore,
    ManualClock,
    OutageKVStore,
    SleepKVStore,
    SlowKVStore,
)
from .retry import RetryPolicy, RetryingKVStore, TransientReadError, retry_call

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "TrainingState",
    "atomic_write_bytes",
    "collect_rng_states",
    "fsync_dir",
    "restore_rng_states",
    "CorruptKVStore",
    "FaultEvent",
    "FaultPlan",
    "FlakyKVStore",
    "ManualClock",
    "OutageKVStore",
    "SleepKVStore",
    "SlowKVStore",
    "RetryPolicy",
    "RetryingKVStore",
    "TransientReadError",
    "retry_call",
]
