"""Deterministic retry with exponential backoff and jitter.

Transient read faults are a fact of life for a KV-store-backed
production graph (Appendix H.5: the deployed system reads features
from a remote store on every scoring request). :func:`retry_call`
implements capped exponential backoff whose jitter is drawn from a
*seeded* generator, so a retry schedule is reproducible — the same
property the rest of this reproduction demands of training.

:class:`RetryingKVStore` wraps any :class:`~repro.storage.kvstore.KVStore`
and retries reads that raise :class:`TransientReadError` (injected by
:class:`~repro.reliability.faults.FlakyKVStore`, or raised by real
transports) or :class:`~repro.storage.kvstore.CorruptStoreError`
(checksum failures, which may be transient bit-flips in transit). When
retries are exhausted the *original* typed error is re-raised — callers
always see a checksum failure as :class:`CorruptStoreError`, never
garbage bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type

import numpy as np

from ..storage.kvstore import CorruptStoreError, KVStore, propagate_instrument


class TransientReadError(IOError):
    """A read failed for a reason that may succeed on retry."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded (deterministic) jitter.

    The delay before retry ``i`` (0-based) is
    ``min(base_delay * multiplier**i, max_delay) * (1 + jitter * u_i)``
    with ``u_i`` drawn from ``default_rng(seed)`` — two policies with
    the same fields produce identical schedules.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delays(self) -> List[float]:
        """The full backoff schedule (``max_attempts - 1`` sleeps)."""
        rng = np.random.default_rng(self.seed)
        schedule = []
        for attempt in range(self.max_attempts - 1):
            base = min(self.base_delay * self.multiplier**attempt, self.max_delay)
            schedule.append(base * (1.0 + self.jitter * float(rng.random())))
        return schedule


def _annotate(error: BaseException, note: str) -> None:
    """Attach ``note`` to an exception: ``__notes__`` on 3.11+, args before."""
    add_note = getattr(error, "add_note", None)
    if callable(add_note):
        add_note(note)
    else:  # Python < 3.11: notes surface through the args tuple instead.
        error.args = (*error.args, note)


def retry_call(
    fn: Callable[[], object],
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (TransientReadError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
):
    """Call ``fn`` up to ``policy.max_attempts`` times.

    Only exceptions in ``retry_on`` are retried; anything else (e.g.
    ``KeyError`` for a genuinely missing key) propagates immediately.
    ``sleep`` is injectable so tests (and simulated-clock serving) can
    assert the backoff schedule without real delays.

    After the final attempt the last error is re-raised with the retry
    history attached: ``retry_attempts`` / ``retry_backoff_s``
    attributes plus a note (``__notes__`` on 3.11+, appended to
    ``args`` on older interpreters) summarising attempts and total
    backoff slept.
    """
    policy = policy or RetryPolicy()
    schedule = policy.delays()
    last: Optional[BaseException] = None
    slept = 0.0
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as error:
            last = error
            if attempt < len(schedule):
                delay = schedule[attempt]
                if on_retry is not None:
                    on_retry(attempt, error, delay)
                sleep(delay)
                slept += delay
    assert last is not None
    last.retry_attempts = policy.max_attempts
    last.retry_backoff_s = slept
    _annotate(
        last,
        f"retry_call: {policy.max_attempts} attempts exhausted "
        f"({slept:.4f}s total backoff)",
    )
    raise last


class RetryingKVStore(KVStore):
    """Read-retry wrapper around any KV-store.

    ``retries`` counts the retry sleeps taken over the wrapper's
    lifetime (observability for the fault-injection harness).
    """

    def __init__(
        self,
        store: KVStore,
        policy: Optional[RetryPolicy] = None,
        retry_on: Tuple[Type[BaseException], ...] = (TransientReadError, CorruptStoreError),
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.store = store
        self.policy = policy or RetryPolicy()
        self.retry_on = retry_on
        self.retries = 0
        self._sleep = sleep
        self._reads_total = None
        self._read_seconds = None
        self._retries_total = None

    def instrument(self, registry) -> "RetryingKVStore":
        """Attach read/retry counters + latency histograms to a
        :class:`repro.obs.registry.MetricsRegistry`; joins the shared
        ``kv_reads_total`` / ``kv_read_seconds`` family under
        ``store="retrying"``. Returns self for chaining.

        Instrumentation propagates *inward*: the wrapped store (and any
        deeper layer reachable through ``.store``) is instrumented too,
        so composition order never decides whether the backing store's
        metrics exist — instrumenting the outermost wrapper is always
        enough. Inner layers without an ``instrument`` method (e.g. the
        fault injectors) are transparently walked through."""
        self._reads_total = registry.counter(
            "kv_reads_total", "KV feature reads issued.", labels=("store",)
        )
        self._read_seconds = registry.histogram(
            "kv_read_seconds",
            "Latency of KV feature reads (per chunk, retries included).",
            labels=("store",),
        )
        self._retries_total = registry.counter(
            "kv_retries_total", "Retry sleeps taken on KV reads.", labels=("store",)
        )
        propagate_instrument(self.store, registry)
        return self

    def _count(self, attempt: int, error: BaseException, delay: float) -> None:
        self.retries += 1
        if self._retries_total is not None:
            self._retries_total.inc(store="retrying")

    def get(self, key: str) -> bytes:
        started = time.perf_counter() if self._read_seconds is not None else 0.0
        try:
            return retry_call(
                lambda: self.store.get(key),
                policy=self.policy,
                retry_on=self.retry_on,
                sleep=self._sleep,
                on_retry=self._count,
            )
        finally:
            if self._read_seconds is not None:
                self._read_seconds.observe(time.perf_counter() - started, store="retrying")
                self._reads_total.inc(store="retrying")

    def put(self, key: str, value: bytes) -> None:
        self.store.put(key, value)

    def contains(self, key: str) -> bool:
        return self.store.contains(key)

    def keys(self) -> List[str]:
        return self.store.keys()

    def close(self) -> None:
        self.store.close()
