"""Seeded failure injection for the simulated DDP cluster and KV-store.

The paper's 16-machine cluster (Sec. 3.3.2) is synchronous: one dead
worker stalls every epoch. :class:`FaultPlan` generates the failures a
production deployment actually sees — transient worker crashes,
stragglers, flaky reads — deterministically from a seed, so a degraded
run is exactly reproducible. :class:`~repro.train.distributed.DistributedTrainer`
consumes the plan to exercise graceful degradation: crashed workers are
excluded from the gradient all-reduce for that round and rejoin the
next, with every event recorded in the epoch history.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..storage.kvstore import KVStore
from .retry import TransientReadError


class ManualClock:
    """A hand-advanced monotonic clock for deterministic chaos tests.

    Drop-in for ``time.monotonic`` wherever a ``clock=`` parameter is
    accepted (deadlines, token buckets, circuit breakers): calling the
    instance returns the current simulated time, :meth:`advance` moves
    it forward. Sharing one clock between a scripted-latency store and
    a :class:`~repro.serving.deadline.Deadline` lets a test burn a
    request's budget one simulated read at a time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self.now += float(seconds)
        return self.now

    def sleep(self, seconds: float) -> None:
        """``time.sleep`` stand-in: advancing instead of blocking."""
        self.advance(seconds)

CRASH = "crash"
STRAGGLER = "straggler"
RECOVERY = "recovery"

# Elastic-training event kinds (repro.train.elastic). KILL/REJOIN are
# *scheduled* by a plan; EVICTION/BACKUP/QUARANTINE are *decisions* the
# supervisor records in response.
KILL = "kill"
REJOIN = "rejoin"
EVICTION = "evict"
BACKUP = "backup"
QUARANTINE = "quarantine"

GRAD_CORRUPT_MODES = ("nan", "bitflip")


@dataclass(frozen=True)
class FaultEvent:
    """One observed fault or recovery, recorded in the epoch history."""

    epoch: int
    worker_id: int
    kind: str  # "crash" | "straggler" | "recovery"
    detail: str = ""


class FaultPlan:
    """Deterministic per-epoch fault schedule for ``num_workers`` workers.

    Faults for epoch ``e`` are drawn from ``default_rng([seed, e])``, so
    the plan is a pure function of ``(seed, epoch)`` — re-running an
    epoch re-produces its faults. A scripted ``crash_schedule``
    (epoch -> worker ids) overrides the probabilistic draw for those
    epochs. At least one worker always survives: a synchronous cluster
    with zero live workers has nothing to degrade to.

    The same plan also scripts *storage-replica* faults for a
    :class:`~repro.storage.replicated.ReplicatedKVStore`:
    ``replica_kill`` (replica -> outage windows), ``replica_corrupt``
    (replica -> bit-flip windows) and ``replica_slow`` (replica ->
    per-read delay) are applied by :meth:`wrap_replicas`, which layers
    the matching fault injector around each replica store.

    For the **elastic** supervisor (:mod:`repro.train.elastic`) a plan
    additionally scripts membership-level faults, all keyed by epoch:

    * ``worker_kill`` — epoch -> workers that die *permanently* at that
      epoch (heartbeats stop; the failure detector must evict them);
    * ``worker_rejoin`` — epoch -> previously killed workers asking to
      be readmitted (they re-enter via the probing state);
    * ``worker_slow`` — epoch -> {worker: latency multiplier >= 1} for
      that epoch only (the straggler-mitigation trigger);
    * ``grad_corrupt`` — epoch -> {worker: mode} where mode is ``nan``
      (poisoned values) or ``bitflip`` (checksum mismatch); a plain
      sequence of worker ids means ``nan``.

    Unlike ``crash_schedule`` (transient, auto-rejoin next epoch),
    ``worker_kill`` removes a worker until an explicit ``worker_rejoin``.
    """

    def __init__(
        self,
        num_workers: int,
        crash_prob: float = 0.0,
        straggler_prob: float = 0.0,
        straggler_slowdown: float = 3.0,
        max_failures_per_epoch: Optional[int] = None,
        crash_schedule: Optional[Mapping[int, Sequence[int]]] = None,
        replica_kill: Optional[Mapping[int, Sequence[Tuple[float, float]]]] = None,
        replica_corrupt: Optional[Mapping[int, Sequence[Tuple[float, float]]]] = None,
        replica_slow: Optional[Mapping[int, float]] = None,
        worker_kill: Optional[Mapping[int, Sequence[int]]] = None,
        worker_rejoin: Optional[Mapping[int, Sequence[int]]] = None,
        worker_slow: Optional[Mapping[int, Mapping[int, float]]] = None,
        grad_corrupt: Optional[Mapping[int, object]] = None,
        seed: int = 0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        self.num_workers = num_workers
        self.crash_prob = crash_prob
        self.straggler_prob = straggler_prob
        self.straggler_slowdown = straggler_slowdown
        self.max_failures_per_epoch = (
            num_workers - 1 if max_failures_per_epoch is None else max_failures_per_epoch
        )
        self.crash_schedule = (
            {int(e): [int(w) for w in ws] for e, ws in crash_schedule.items()}
            if crash_schedule
            else {}
        )
        self.replica_kill = self._windows_by_replica(replica_kill)
        self.replica_corrupt = self._windows_by_replica(replica_corrupt)
        self.replica_slow = (
            {int(r): float(d) for r, d in replica_slow.items()} if replica_slow else {}
        )
        for replica, delay in self.replica_slow.items():
            if delay < 0:
                raise ValueError(f"replica_slow[{replica}] must be >= 0")
        self.worker_kill = self._ids_by_epoch(worker_kill, "worker_kill")
        self.worker_rejoin = self._ids_by_epoch(worker_rejoin, "worker_rejoin")
        self.worker_slow = self._slowdowns_by_epoch(worker_slow)
        self.grad_corrupt = self._corruptions_by_epoch(grad_corrupt)
        self.seed = seed

    def _ids_by_epoch(
        self, schedule: Optional[Mapping[int, Sequence[int]]], name: str
    ) -> Dict[int, List[int]]:
        if not schedule:
            return {}
        validated: Dict[int, List[int]] = {}
        for epoch, workers in schedule.items():
            ids = sorted(int(w) for w in workers)
            for worker in ids:
                if not 0 <= worker < self.num_workers:
                    raise ValueError(f"{name}[{epoch}] worker {worker} out of range")
            validated[int(epoch)] = ids
        return validated

    def _slowdowns_by_epoch(
        self, schedule: Optional[Mapping[int, Mapping[int, float]]]
    ) -> Dict[int, Dict[int, float]]:
        if not schedule:
            return {}
        validated: Dict[int, Dict[int, float]] = {}
        for epoch, slowdowns in schedule.items():
            entry: Dict[int, float] = {}
            for worker, factor in slowdowns.items():
                worker, factor = int(worker), float(factor)
                if not 0 <= worker < self.num_workers:
                    raise ValueError(f"worker_slow[{epoch}] worker {worker} out of range")
                if factor < 1.0:
                    raise ValueError(f"worker_slow[{epoch}][{worker}] must be >= 1")
                entry[worker] = factor
            validated[int(epoch)] = entry
        return validated

    def _corruptions_by_epoch(
        self, schedule: Optional[Mapping[int, object]]
    ) -> Dict[int, Dict[int, str]]:
        if not schedule:
            return {}
        validated: Dict[int, Dict[int, str]] = {}
        for epoch, spec in schedule.items():
            entry: Dict[int, str] = {}
            items = spec.items() if isinstance(spec, Mapping) else [(w, "nan") for w in spec]
            for worker, mode in items:
                worker = int(worker)
                if not 0 <= worker < self.num_workers:
                    raise ValueError(f"grad_corrupt[{epoch}] worker {worker} out of range")
                if mode not in GRAD_CORRUPT_MODES:
                    raise ValueError(
                        f"grad_corrupt[{epoch}][{worker}] mode {mode!r} not in "
                        f"{GRAD_CORRUPT_MODES}"
                    )
                entry[worker] = mode
            validated[int(epoch)] = entry
        return validated

    # -- elastic accessors ----------------------------------------------
    def kills_at(self, epoch: int) -> List[int]:
        """Workers scheduled to die permanently at ``epoch``."""
        return list(self.worker_kill.get(int(epoch), []))

    def rejoins_at(self, epoch: int) -> List[int]:
        """Previously killed workers asking to rejoin at ``epoch``."""
        return list(self.worker_rejoin.get(int(epoch), []))

    def slow_at(self, epoch: int) -> Dict[int, float]:
        """Worker -> latency multiplier for ``epoch`` (absent = 1.0)."""
        return dict(self.worker_slow.get(int(epoch), {}))

    def corrupt_at(self, epoch: int) -> Dict[int, str]:
        """Worker -> gradient corruption mode for ``epoch``."""
        return dict(self.grad_corrupt.get(int(epoch), {}))

    @staticmethod
    def _windows_by_replica(
        schedule: Optional[Mapping[int, Sequence[Tuple[float, float]]]]
    ) -> Dict[int, List[Tuple[float, float]]]:
        if not schedule:
            return {}
        validated: Dict[int, List[Tuple[float, float]]] = {}
        for replica, windows in schedule.items():
            for start, stop in windows:
                if start < 0 or stop < start:
                    raise ValueError(
                        f"bad fault window ({start}, {stop}) for replica {replica}"
                    )
            validated[int(replica)] = [(float(a), float(b)) for a, b in windows]
        return validated

    def wrap_replicas(
        self, stores: Sequence[KVStore], clock: Optional[ManualClock] = None
    ) -> List[KVStore]:
        """Layer this plan's replica faults around each store in order.

        Stacking order per replica (outermost first): kill (outage) →
        corrupt → slow — so a killed replica fails fast without
        advancing simulated time, and corruption applies to bytes the
        (possibly slowed) inner read produced. Replica indices outside
        ``stores`` are ignored, mirroring ``crash_schedule``.
        """
        if self.replica_slow and clock is None:
            raise ValueError("replica_slow needs a ManualClock to advance")
        wrapped: List[KVStore] = []
        for index, store in enumerate(stores):
            layered = store
            if index in self.replica_slow:
                layered = SlowKVStore(layered, clock, delay_s=self.replica_slow[index])
            if index in self.replica_corrupt:
                layered = CorruptKVStore(
                    layered,
                    windows=self.replica_corrupt[index],
                    clock=clock,
                    seed=self.seed * 1000003 + index,
                )
            if index in self.replica_kill:
                layered = OutageKVStore(
                    layered, windows=self.replica_kill[index], clock=clock
                )
            wrapped.append(layered)
        return wrapped

    def epoch_faults(self, epoch: int) -> Dict[int, str]:
        """Worker-id -> fault kind for one synchronisation round."""
        rng = np.random.default_rng([self.seed, int(epoch)])
        crash_draw = rng.random(self.num_workers)
        straggle_draw = rng.random(self.num_workers)

        if epoch in self.crash_schedule:
            crashed = [w for w in self.crash_schedule[epoch] if 0 <= w < self.num_workers]
        else:
            crashed = [w for w in range(self.num_workers) if crash_draw[w] < self.crash_prob]
        crashed = crashed[: self.max_failures_per_epoch]
        if len(crashed) >= self.num_workers:
            # Keep the lowest-id worker alive; total loss is an outage,
            # not a degradation this harness models.
            crashed = [w for w in crashed if w != min(crashed)]

        faults = {w: CRASH for w in crashed}
        for worker in range(self.num_workers):
            if worker not in faults and straggle_draw[worker] < self.straggler_prob:
                faults[worker] = STRAGGLER
        return faults


class FlakyKVStore(KVStore):
    """Inject deterministic transient read faults into any KV-store.

    ``fail_first`` makes the first N reads of *each key* raise
    :class:`TransientReadError` (then succeed) — the shape retry logic
    must beat. ``fail_rate`` additionally fails reads at random from a
    seeded generator.
    """

    def __init__(
        self,
        store: KVStore,
        fail_first: int = 0,
        fail_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.store = store
        self.fail_first = fail_first
        self.fail_rate = fail_rate
        self.injected = 0
        self._attempts: Dict[str, int] = {}
        self._rng = np.random.default_rng(seed)

    def get(self, key: str) -> bytes:
        seen = self._attempts.get(key, 0)
        if seen < self.fail_first:
            self._attempts[key] = seen + 1
            self.injected += 1
            raise TransientReadError(f"injected fault for {key!r} (attempt {seen + 1})")
        if self.fail_rate and float(self._rng.random()) < self.fail_rate:
            self.injected += 1
            raise TransientReadError(f"injected random fault for {key!r}")
        return self.store.get(key)

    def put(self, key: str, value: bytes) -> None:
        self.store.put(key, value)

    def contains(self, key: str) -> bool:
        return self.store.contains(key)

    def keys(self) -> List[str]:
        return self.store.keys()

    def close(self) -> None:
        self.store.close()


class OutageKVStore(KVStore):
    """Script a total KV outage over read-index or clock windows.

    Without a ``clock``, reads are numbered globally (0-based, counting
    every ``get`` including failed ones) and a read whose index falls
    in any half-open ``[start, stop)`` window raises
    :class:`TransientReadError`. With a ``clock`` (e.g.
    :class:`ManualClock`), windows are in *seconds on that clock* —
    the natural scripting unit when a circuit breaker sits in front,
    since an open breaker stops reads and would otherwise freeze a
    read-counted outage forever.

    Either way this is the deterministic shape of a store that goes
    *down* — every read fails for a stretch — which is what trips a
    breaker, as opposed to :class:`FlakyKVStore`'s per-key transient
    blips that retries absorb.
    """

    def __init__(
        self,
        store: KVStore,
        windows: Sequence[Tuple[float, float]] = (),
        clock: Optional[ManualClock] = None,
    ) -> None:
        for start, stop in windows:
            if start < 0 or stop < start:
                raise ValueError(f"bad outage window ({start}, {stop})")
        self.store = store
        self.windows = [(float(start), float(stop)) for start, stop in windows]
        self.clock = clock
        self.reads = 0
        self.injected = 0

    def _down(self, position: float) -> bool:
        return any(start <= position < stop for start, stop in self.windows)

    def get(self, key: str) -> bytes:
        index = self.reads
        self.reads += 1
        position = float(self.clock()) if self.clock is not None else float(index)
        if self._down(position):
            self.injected += 1
            raise TransientReadError(
                f"scripted outage at {'t=' if self.clock else 'read #'}{position:g} "
                f"reading {key!r}"
            )
        return self.store.get(key)

    def put(self, key: str, value: bytes) -> None:
        self.store.put(key, value)

    def contains(self, key: str) -> bool:
        return self.store.contains(key)

    def keys(self) -> List[str]:
        return self.store.keys()

    def close(self) -> None:
        self.store.close()


class SlowKVStore(KVStore):
    """A straggling store: each read advances a :class:`ManualClock`.

    Simulated latency, not real sleeping — the shared clock is also
    what the request's deadline watches, so a test can script "feature
    reads take 2ms each against a 10ms budget" and observe the deadline
    machinery fire deterministically.
    """

    def __init__(self, store: KVStore, clock: ManualClock, delay_s: float = 0.001) -> None:
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        self.store = store
        self.clock = clock
        self.delay_s = float(delay_s)

    def get(self, key: str) -> bytes:
        self.clock.advance(self.delay_s)
        return self.store.get(key)

    def put(self, key: str, value: bytes) -> None:
        self.store.put(key, value)

    def contains(self, key: str) -> bool:
        return self.store.contains(key)

    def keys(self) -> List[str]:
        return self.store.keys()

    def close(self) -> None:
        self.store.close()


class SleepKVStore(KVStore):
    """A *real-time* straggler: each read blocks ``delay_s`` of wall
    clock. The wall-clock sibling of :class:`SlowKVStore`, for
    benchmarks (and hedging tests) that measure true latency rather
    than simulated time. ``delay_s`` is mutable, so a scenario can slow
    one replica mid-run."""

    def __init__(self, store: KVStore, delay_s: float = 0.001) -> None:
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        self.store = store
        self.delay_s = float(delay_s)

    def get(self, key: str) -> bytes:
        time.sleep(self.delay_s)
        return self.store.get(key)

    def put(self, key: str, value: bytes) -> None:
        self.store.put(key, value)

    def contains(self, key: str) -> bool:
        return self.store.contains(key)

    def keys(self) -> List[str]:
        return self.store.keys()

    def close(self) -> None:
        self.store.close()


class CorruptKVStore(KVStore):
    """Deterministically bit-flip values read during scripted windows.

    The *quiet* failure mode checksums exist for: unlike
    :class:`OutageKVStore`'s loud errors, a corrupt read returns
    successfully — with garbage bytes. The flipped byte position is a
    pure function of ``(seed, key)``, so a given key is corrupted the
    same way on every read in a window. Windows follow
    :class:`OutageKVStore` semantics: clock seconds with a ``clock``,
    global 0-based read indices without.
    """

    def __init__(
        self,
        store: KVStore,
        windows: Sequence[Tuple[float, float]] = (),
        clock: Optional[ManualClock] = None,
        seed: int = 0,
    ) -> None:
        for start, stop in windows:
            if start < 0 or stop < start:
                raise ValueError(f"bad corruption window ({start}, {stop})")
        self.store = store
        self.windows = [(float(start), float(stop)) for start, stop in windows]
        self.clock = clock
        self.seed = int(seed)
        self.reads = 0
        self.injected = 0

    def _corrupting(self, position: float) -> bool:
        return any(start <= position < stop for start, stop in self.windows)

    def get(self, key: str) -> bytes:
        index = self.reads
        self.reads += 1
        value = self.store.get(key)
        position = float(self.clock()) if self.clock is not None else float(index)
        if self._corrupting(position) and value:
            self.injected += 1
            flipped = bytearray(value)
            slot = (zlib.crc32(key.encode("utf-8")) ^ self.seed) % len(flipped)
            flipped[slot] ^= 0xFF
            return bytes(flipped)
        return value

    def put(self, key: str, value: bytes) -> None:
        self.store.put(key, value)

    def contains(self, key: str) -> bool:
        return self.store.contains(key)

    def keys(self) -> List[str]:
        return self.store.keys()

    def close(self) -> None:
        self.store.close()
