"""Observability counters for the online scoring service.

One :class:`ServiceStats` block per service instance: admission
outcomes, per-rung response counts, breaker transitions, retry /
deadline / KV-failure tallies, and end-to-end latency percentiles via
the shared :func:`~repro.train.metrics.latency_percentiles` helper.

Memory is bounded: latency samples and (label, score) outcome pairs
live in :class:`~repro.obs.registry.Reservoir` samples, so a service
that runs for months holds O(1) state while percentiles and online AUC
stay statistically faithful. With a
:class:`~repro.obs.registry.MetricsRegistry` attached, every tally is
mirrored into labelled registry metrics (``service_request_latency_seconds``
histograms per rung, shed/degraded counters) for Prometheus-text
exposition alongside the human-readable :meth:`describe` block.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..obs.registry import MetricsRegistry, Reservoir
from ..train.metrics import latency_percentiles, roc_auc

#: Reservoir capacity for latency / outcome samples. Large enough that
#: p99 over the retained sample tracks the stream, small enough that a
#: long-running service never grows.
DEFAULT_RESERVOIR_SIZE = 4096


class ServiceStats:
    """Mutable counter block for one :class:`~repro.serving.service.ScoringService`."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        seed: int = 0,
    ) -> None:
        self.received = 0
        self.admitted = 0
        self.completed = 0
        self.shed: Counter = Counter()  # shed reason -> count
        self.rungs: Counter = Counter()  # "gnn" | "rules" | "prior" -> count
        self.degraded_reasons: Counter = Counter()
        self.deadline_hits = 0
        self.kv_failures = 0
        self.kv_retries = 0
        self.breaker_transitions: List[Tuple[str, str]] = []
        # replica index -> [(from, to), ...] for per-replica breakers
        # (replicated feature stores); the global list above keeps its
        # shape for the single-store path.
        self.replica_breaker_transitions: Dict[int, List[Tuple[str, str]]] = {}
        self._latencies = Reservoir(reservoir_size, seed=seed)
        self._outcomes = Reservoir(reservoir_size, seed=seed)  # (label, score)
        self.registry = registry
        if registry is not None:
            self._latency_hist = registry.histogram(
                "service_request_latency_seconds",
                "End-to-end latency of admitted scoring requests.",
                labels=("rung",),
            )
            self._shed_counter = registry.counter(
                "service_shed_total", "Requests shed with a verdict.", labels=("reason",)
            )
            self._degraded_counter = registry.counter(
                "service_degraded_total",
                "Responses produced below the GNN rung.",
                labels=("reason",),
            )
            self._admitted_counter = registry.counter(
                "service_admitted_total", "Requests admitted for scoring."
            )
        else:
            self._latency_hist = None
            self._shed_counter = None
            self._degraded_counter = None
            self._admitted_counter = None

    # -- recording ------------------------------------------------------
    def record_admitted(self) -> None:
        self.received += 1
        self.admitted += 1
        if self._admitted_counter is not None:
            self._admitted_counter.inc()

    def record_shed(self, reason: str) -> None:
        self.received += 1
        self.shed[reason] += 1
        if self._shed_counter is not None:
            self._shed_counter.inc(reason=reason)

    def record_response(self, rung: str, latency_s: float, degraded_reason: Optional[str] = None) -> None:
        self.completed += 1
        self.rungs[rung] += 1
        self._latencies.add(float(latency_s))
        if degraded_reason:
            self.degraded_reasons[degraded_reason] += 1
        if self._latency_hist is not None:
            self._latency_hist.observe(float(latency_s), rung=rung)
        if degraded_reason and self._degraded_counter is not None:
            self._degraded_counter.inc(reason=degraded_reason)

    def record_breaker_transition(self, from_state: str, to_state: str) -> None:
        self.breaker_transitions.append((from_state, to_state))

    def record_replica_breaker_transition(
        self, replica: int, from_state: str, to_state: str
    ) -> None:
        self.replica_breaker_transitions.setdefault(int(replica), []).append(
            (from_state, to_state)
        )

    def record_outcome(self, label: int, score: float) -> None:
        """Optionally track (truth, score) pairs for online AUC."""
        self._outcomes.add((int(label), float(score)))

    # -- reporting ------------------------------------------------------
    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    @property
    def latencies_s(self) -> List[float]:
        """Retained latency sample (bounded; uniform over the stream)."""
        return self._latencies.values()

    def latency_summary(self) -> Dict[str, float]:
        return latency_percentiles(self._latencies.values())

    def auc(self) -> float:
        """Online AUC over recorded outcomes.

        NaN — not an exception — when the window is empty or
        single-class (a shed-heavy or all-benign degraded window).
        """
        outcomes = self._outcomes.values()
        if not outcomes:
            return float("nan")
        labels = [label for label, _ in outcomes]
        scores = [score for _, score in outcomes]
        return roc_auc(labels, scores, default=float("nan"))

    def breaker_state_path(self) -> Tuple[str, ...]:
        """Visited breaker states in order (leading with "closed")."""
        if not self.breaker_transitions:
            return ()
        return (self.breaker_transitions[0][0],) + tuple(t for _, t in self.breaker_transitions)

    def replica_breaker_paths(self) -> Dict[int, Tuple[str, ...]]:
        """Per-replica breaker journeys, same shape as
        :meth:`breaker_state_path` (replicas with no transitions are
        absent)."""
        paths: Dict[int, Tuple[str, ...]] = {}
        for replica, transitions in sorted(self.replica_breaker_transitions.items()):
            if transitions:
                paths[replica] = (transitions[0][0],) + tuple(t for _, t in transitions)
        return paths

    def snapshot(self) -> Dict[str, object]:
        latency = self.latency_summary()
        return {
            "received": self.received,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": dict(self.shed),
            "rungs": dict(self.rungs),
            "degraded_reasons": dict(self.degraded_reasons),
            "deadline_hits": self.deadline_hits,
            "kv_failures": self.kv_failures,
            "kv_retries": self.kv_retries,
            "breaker_transitions": list(self.breaker_transitions),
            "replica_breaker_transitions": {
                replica: list(transitions)
                for replica, transitions in self.replica_breaker_transitions.items()
            },
            "latency_s": latency,
            "auc": self.auc(),
        }

    def describe(self) -> str:
        """Human-readable counter block (the ``repro serve`` epilogue)."""
        latency = self.latency_summary()
        shed = ", ".join(f"{k}={v}" for k, v in sorted(self.shed.items())) or "none"
        rungs = ", ".join(f"{k}={v}" for k, v in sorted(self.rungs.items())) or "none"
        path = " -> ".join(self.breaker_state_path()) or "closed (no transitions)"
        lines = [
            f"requests      : {self.received} received, {self.admitted} admitted, "
            f"{self.total_shed} shed ({shed})",
            f"responses     : {self.completed} completed; rungs: {rungs}",
            f"degradations  : deadline_hits={self.deadline_hits} "
            f"kv_failures={self.kv_failures} kv_retries={self.kv_retries}",
            f"breaker       : {path}",
            f"latency (s)   : p50={latency['p50']:.6f} p95={latency['p95']:.6f} "
            f"p99={latency['p99']:.6f}",
        ]
        for replica, replica_path in self.replica_breaker_paths().items():
            lines.append(f"breaker[r{replica}]   : {' -> '.join(replica_path)}")
        return "\n".join(lines)
