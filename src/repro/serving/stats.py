"""Observability counters for the online scoring service.

One :class:`ServiceStats` block per service instance: admission
outcomes, per-rung response counts, breaker transitions, retry /
deadline / KV-failure tallies, and end-to-end latency percentiles via
the shared :func:`~repro.train.metrics.latency_percentiles` helper.

Everything here is plain counters and lists — cheap enough to update
on every request — and :meth:`snapshot` / :meth:`describe` render the
block the ``repro serve`` CLI prints after a run.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..train.metrics import latency_percentiles, roc_auc


class ServiceStats:
    """Mutable counter block for one :class:`~repro.serving.service.ScoringService`."""

    def __init__(self) -> None:
        self.received = 0
        self.admitted = 0
        self.completed = 0
        self.shed: Counter = Counter()  # shed reason -> count
        self.rungs: Counter = Counter()  # "gnn" | "rules" | "prior" -> count
        self.degraded_reasons: Counter = Counter()
        self.deadline_hits = 0
        self.kv_failures = 0
        self.kv_retries = 0
        self.breaker_transitions: List[Tuple[str, str]] = []
        self.latencies_s: List[float] = []
        self._outcomes: List[Tuple[int, float]] = []  # (label, score)

    # -- recording ------------------------------------------------------
    def record_admitted(self) -> None:
        self.received += 1
        self.admitted += 1

    def record_shed(self, reason: str) -> None:
        self.received += 1
        self.shed[reason] += 1

    def record_response(self, rung: str, latency_s: float, degraded_reason: Optional[str] = None) -> None:
        self.completed += 1
        self.rungs[rung] += 1
        self.latencies_s.append(float(latency_s))
        if degraded_reason:
            self.degraded_reasons[degraded_reason] += 1

    def record_breaker_transition(self, from_state: str, to_state: str) -> None:
        self.breaker_transitions.append((from_state, to_state))

    def record_outcome(self, label: int, score: float) -> None:
        """Optionally track (truth, score) pairs for online AUC."""
        self._outcomes.append((int(label), float(score)))

    # -- reporting ------------------------------------------------------
    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    def latency_summary(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies_s)

    def auc(self) -> float:
        """Online AUC over recorded outcomes.

        NaN — not an exception — when the window is empty or
        single-class (a shed-heavy or all-benign degraded window).
        """
        if not self._outcomes:
            return float("nan")
        labels = [label for label, _ in self._outcomes]
        scores = [score for _, score in self._outcomes]
        return roc_auc(labels, scores, default=float("nan"))

    def breaker_state_path(self) -> Tuple[str, ...]:
        """Visited breaker states in order (leading with "closed")."""
        if not self.breaker_transitions:
            return ()
        return (self.breaker_transitions[0][0],) + tuple(t for _, t in self.breaker_transitions)

    def snapshot(self) -> Dict[str, object]:
        latency = self.latency_summary()
        return {
            "received": self.received,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": dict(self.shed),
            "rungs": dict(self.rungs),
            "degraded_reasons": dict(self.degraded_reasons),
            "deadline_hits": self.deadline_hits,
            "kv_failures": self.kv_failures,
            "kv_retries": self.kv_retries,
            "breaker_transitions": list(self.breaker_transitions),
            "latency_s": latency,
            "auc": self.auc(),
        }

    def describe(self) -> str:
        """Human-readable counter block (the ``repro serve`` epilogue)."""
        latency = self.latency_summary()
        shed = ", ".join(f"{k}={v}" for k, v in sorted(self.shed.items())) or "none"
        rungs = ", ".join(f"{k}={v}" for k, v in sorted(self.rungs.items())) or "none"
        path = " -> ".join(self.breaker_state_path()) or "closed (no transitions)"
        lines = [
            f"requests      : {self.received} received, {self.admitted} admitted, "
            f"{self.total_shed} shed ({shed})",
            f"responses     : {self.completed} completed; rungs: {rungs}",
            f"degradations  : deadline_hits={self.deadline_hits} "
            f"kv_failures={self.kv_failures} kv_retries={self.kv_retries}",
            f"breaker       : {path}",
            f"latency (s)   : p50={latency['p50']:.6f} p95={latency['p95']:.6f} "
            f"p99={latency['p99']:.6f}",
        ]
        return "\n".join(lines)
