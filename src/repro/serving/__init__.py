"""repro.serving — the fault-tolerant online scoring service.

The paper's xFraud is a *deployed* detector: scores must come back
while the transaction is in flight, under heavy traffic, over a
KV-store that sometimes fails (Sec. 3.3, Appendix H.5). This package
supplies that online path:

* :class:`Deadline` — per-request monotonic-clock latency budgets,
  propagated through sampling and feature fetch;
* :class:`TokenBucket` / :class:`AdmissionQueue` — admission control
  that sheds overload with a verdict instead of blocking;
* :class:`CircuitBreaker` — closed/open/half-open protection around
  KV feature reads, with retries composed *inside* the breaker;
* :class:`ScoringService` — the three-rung degradation ladder
  (GNN → rules → static prior), every response tagged with its rung;
* :class:`ServiceStats` — admitted/shed/degraded/breaker counters and
  p50/p95/p99 latency.
"""

from .admission import SHED_QUEUE_FULL, SHED_RATE_LIMITED, AdmissionQueue, TokenBucket
from .breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerTransition,
    CircuitBreaker,
    CircuitOpenError,
)
from .deadline import Deadline, DeadlineExceeded
from .demo import DemoResult, build_demo_service, run_demo
from .service import (
    RUNG_GNN,
    RUNG_PRIOR,
    RUNG_RULES,
    FeatureFetchError,
    ScoreRequest,
    ScoreResponse,
    ScoringService,
    ServiceConfig,
)
from .stats import ServiceStats

__all__ = [
    "AdmissionQueue",
    "TokenBucket",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMITED",
    "CircuitBreaker",
    "CircuitOpenError",
    "BreakerTransition",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Deadline",
    "DeadlineExceeded",
    "ScoringService",
    "ServiceConfig",
    "ScoreRequest",
    "ScoreResponse",
    "FeatureFetchError",
    "RUNG_GNN",
    "RUNG_RULES",
    "RUNG_PRIOR",
    "ServiceStats",
    "DemoResult",
    "build_demo_service",
    "run_demo",
]
