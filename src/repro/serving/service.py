"""The fault-tolerant online scoring service (the deployed xFraud path).

:class:`ScoringService` wraps the detector's production inference path
(``predict_proba_sampled``) in the machinery a latency-bounded fraud
scorer needs to survive heavy traffic and partial outages:

* **Admission control** — a :class:`~repro.serving.admission.TokenBucket`
  rate limiter plus a bounded queue; overload requests are *shed with a
  verdict* (the static prior), never blocked or errored.
* **Deadline budgets** — every admitted request carries a
  :class:`~repro.serving.deadline.Deadline` on a monotonic clock,
  propagated through neighbour sampling and KV feature fetch; the
  budget can be overrun by at most one pipeline stage.
* **Circuit breaking** — KV-store feature reads run *retries inside a
  breaker*: one :func:`~repro.reliability.retry.retry_call` (absorbing
  transient blips) is one breaker outcome, and a store that is truly
  down opens the breaker so subsequent requests degrade instantly
  instead of burning their deadlines on doomed reads.
* **Graceful degradation** — a three-rung ladder: full GNN score →
  :class:`~repro.rules.miner.RuleSet` risk score over the raw request
  features → configurable static prior. Every response is tagged with
  the rung that produced it and, when degraded, the reason.

Chaos behaviour is scripted through :mod:`repro.reliability.faults`
(:class:`OutageKVStore`, :class:`SlowKVStore`, :class:`ManualClock`),
keeping every degradation scenario deterministic and replayable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..graph.cache import SubgraphCache
from ..graph.hetero import HeteroGraph
from ..graph.sampling import stack_subgraphs
from ..util import batched
from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..reliability.retry import RetryPolicy, TransientReadError, retry_call
from ..rules.miner import RuleSet
from ..storage.kvstore import CorruptStoreError, KVStore
from ..storage.loader import _decode_array
from ..storage.replicated import AllReplicasFailedError, ReplicatedKVStore
from .admission import SHED_RATE_LIMITED, AdmissionQueue, TokenBucket
from .breaker import CircuitBreaker, CircuitOpenError
from .deadline import Deadline, DeadlineExceeded
from .stats import ServiceStats

RUNG_GNN = "gnn"
RUNG_RULES = "rules"
RUNG_PRIOR = "prior"

VERDICT_FRAUD = "fraud"
VERDICT_LEGIT = "legit"


class FeatureFetchError(RuntimeError):
    """KV feature reads failed beyond what retries could absorb."""


@dataclass
class ServiceConfig:
    """Operating envelope of one :class:`ScoringService` instance."""

    deadline_s: float = 0.050
    fraud_threshold: float = 0.5
    static_prior: float = 0.02
    queue_capacity: int = 64
    rate: float = float("inf")  # admitted requests/s (inf = unlimited)
    burst: float = 128.0  # token-bucket capacity
    fetch_chunk: int = 32  # feature rows per breaker-guarded read
    # Micro-batching: requests per coalesced sampler-call/forward in
    # score_batch / drain. None = coalesce the whole call into one
    # micro-batch (one forward per degradation rung, however many
    # requests arrive together).
    batch_size: Optional[int] = None
    breaker_failure_threshold: float = 0.5
    breaker_window: int = 8
    breaker_min_calls: int = 4
    breaker_cooldown_s: float = 0.25
    breaker_half_open_probes: int = 2
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(max_attempts=3))

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if not 0.0 <= self.static_prior <= 1.0:
            raise ValueError("static_prior must be within [0, 1]")
        if self.fetch_chunk < 1:
            raise ValueError("fetch_chunk must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1 (or None for unbounded)")


@dataclass
class ScoreRequest:
    """One transaction to score.

    ``features`` are the raw transaction features the request carries
    (production requests always do); the rules rung scores them when
    the GNN path is unavailable. When omitted, the service falls back
    to the in-memory graph's feature row for the node.
    """

    node: int
    features: Optional[np.ndarray] = None
    deadline_s: Optional[float] = None


@dataclass
class ScoreResponse:
    """The verdict for one request, tagged with how it was produced."""

    node: int
    score: float
    verdict: str  # "fraud" | "legit"
    rung: str  # "gnn" | "rules" | "prior"
    admitted: bool
    latency_s: float = 0.0
    shed_reason: Optional[str] = None
    degraded_reason: Optional[str] = None
    deadline_remaining_s: Optional[float] = None


class _BatchMember:
    """One request's mutable state while it rides a micro-batch."""

    __slots__ = ("request", "deadline", "degraded_reason", "rung", "score")

    def __init__(self, request: ScoreRequest, deadline: Deadline) -> None:
        self.request = request
        self.deadline = deadline
        self.degraded_reason: Optional[str] = None
        self.rung: Optional[str] = None
        self.score: float = 0.0

    @property
    def live(self) -> bool:
        """Still on the GNN rung: no degradation recorded yet."""
        return self.degraded_reason is None


class _DeadlineGroup:
    """Duck-typed deadline over every request in one micro-batch.

    Samplers and the KV fetch path accept any object with ``check`` /
    ``remaining``; this one fans a stage check out to each member's own
    :class:`Deadline`. A member whose budget is spent is *individually*
    demoted — it records the same ``deadline:<stage>`` reason it would
    have received on the sequential path and drops out of the batch —
    while the survivors keep going. Only when every member has expired
    does ``check`` raise, aborting the shared work. That is how a batch
    preserves per-request deadline verdicts: expiry is per member, the
    exception is per batch.
    """

    def __init__(self, members: Sequence[_BatchMember], on_expire: Callable) -> None:
        self._members = list(members)
        self._on_expire = on_expire

    @property
    def live(self) -> List[_BatchMember]:
        return [member for member in self._members if member.live]

    def check(self, stage: str) -> None:
        expired_all = True
        for member in self._members:
            if not member.live:
                continue
            if member.deadline.expired():
                member.degraded_reason = f"deadline:{stage}"
                self._on_expire(member)
            else:
                expired_all = False
        if expired_all:
            survivors = [m.deadline for m in self._members]
            budget = max((d.budget_s for d in survivors), default=0.0)
            elapsed = max((d.elapsed() for d in survivors), default=0.0)
            raise DeadlineExceeded(stage, budget, elapsed)

    def remaining(self) -> float:
        """Budget of the healthiest member — the retry/backoff bound."""
        return max((m.deadline.remaining() for m in self.live), default=0.0)

    def expired(self) -> bool:
        return not self.live


class ScoringService:
    """Online scorer with admission control, breaker, and degradation.

    Parameters
    ----------
    model:
        Anything exposing ``predict_proba`` (and ideally a ``sampler``,
        like :class:`~repro.models.detector.XFraudDetectorPlus`).
    graph:
        The serving graph. With a ``feature_store`` the graph supplies
        *structure* (edges, types, labels) while feature rows are
        hydrated per request from the store — the paper's deployment
        shape (Sec. 3.3.3); without one the in-memory features serve.
    feature_store:
        Optional :class:`~repro.storage.kvstore.KVStore` holding
        ``feat/{node}`` rows (the :class:`~repro.storage.loader.GraphStore`
        layout). Reads go through retry-inside-breaker. A
        :class:`~repro.storage.replicated.ReplicatedKVStore` is detected
        and wired differently: the service builds one
        :class:`~repro.serving.breaker.CircuitBreaker` *per replica*
        (same config knobs, names ``feature-replica-<i>``) and injects
        them into the store, whose failover/hedging machinery replaces
        the global breaker + retry layer on the fetch path.
    rules:
        Optional :class:`~repro.rules.miner.RuleSet` powering the
        middle degradation rung.
    clock:
        Monotonic clock for deadlines / rate limiting / breaker
        cool-downs; inject a
        :class:`~repro.reliability.faults.ManualClock` for determinism.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when set, every
        request emits one span tree (admission → sample →
        feature_fetch → forward → rung) on the same clock the
        deadlines use.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        set, latency tallies back onto registry histograms
        (``service_request_latency_seconds`` per rung,
        ``kv_read_seconds`` per feature chunk) and the model's
        neighbour sampler is instrumented with hop counters.
    cache:
        Optional :class:`~repro.graph.cache.SubgraphCache`. When set,
        sampler calls (single-request and micro-batched) go through
        ``cache.get_or_sample`` keyed on (targets, sampler config,
        graph version); with a ``registry`` the cache's
        hit/miss/eviction counters are exported automatically.
    """

    def __init__(
        self,
        model,
        graph: HeteroGraph,
        feature_store: Optional[KVStore] = None,
        rules: Optional[RuleSet] = None,
        config: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
        own_store: bool = False,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[SubgraphCache] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.feature_store = feature_store
        self.rules = rules
        self.config = config or ServiceConfig()
        self.cache = cache
        if cache is not None and registry is not None:
            cache.instrument(registry)
        self._clock = clock
        # Retry backoff sleeps on the same (possibly simulated) clock
        # the deadlines watch, so chaos tests see backoff burn budget.
        self._sleep = sleep if sleep is not None else getattr(clock, "sleep", time.sleep)
        self._own_store = own_store
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry
        if registry is not None:
            self._kv_read_seconds = registry.histogram(
                "kv_read_seconds",
                "Latency of KV feature reads (per chunk, retries included).",
                labels=("store",),
            )
            self._kv_reads_total = registry.counter(
                "kv_reads_total", "KV feature reads issued.", labels=("store",)
            )
            sampler = getattr(model, "sampler", None)
            if sampler is not None and hasattr(sampler, "instrument"):
                sampler.instrument(registry)
        else:
            self._kv_read_seconds = None
            self._kv_reads_total = None
        self.stats = ServiceStats(registry=registry)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            window=self.config.breaker_window,
            min_calls=self.config.breaker_min_calls,
            cooldown_s=self.config.breaker_cooldown_s,
            half_open_probes=self.config.breaker_half_open_probes,
            clock=clock,
            name="feature-store",
            on_transition=self.stats.record_breaker_transition,
        )
        # A replicated store demotes the breaker to per-replica scope:
        # one breaker per replica (same knobs), injected duck-typed so
        # storage never imports serving. The global breaker stays for
        # plain stores and for the non-replicated code path.
        self.replica_breakers: List[CircuitBreaker] = []
        self._replicated = isinstance(feature_store, ReplicatedKVStore)
        if self._replicated:
            for index in range(len(feature_store.replicas)):
                self.replica_breakers.append(
                    CircuitBreaker(
                        failure_threshold=self.config.breaker_failure_threshold,
                        window=self.config.breaker_window,
                        min_calls=self.config.breaker_min_calls,
                        cooldown_s=self.config.breaker_cooldown_s,
                        half_open_probes=self.config.breaker_half_open_probes,
                        clock=clock,
                        name=f"feature-replica-{index}",
                        on_transition=(
                            lambda from_state, to_state, index=index: (
                                self.stats.record_replica_breaker_transition(
                                    index, from_state, to_state
                                )
                            )
                        ),
                    )
                )
            feature_store.set_replica_breakers(
                self.replica_breakers, open_error=CircuitOpenError
            )
            if registry is not None:
                feature_store.instrument(registry)
        self.bucket = TokenBucket(self.config.rate, self.config.burst, clock=clock)
        self.queue = AdmissionQueue(self.config.queue_capacity, bucket=self.bucket)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._own_store and self.feature_store is not None:
            self.feature_store.close()
            self.feature_store = None

    def __enter__(self) -> "ScoringService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public scoring API --------------------------------------------
    def score(self, request: Union[int, ScoreRequest]) -> ScoreResponse:
        """Score one request synchronously; always returns a verdict."""
        request = self._coerce(request)
        with self.tracer.span("request", node=request.node) as span:
            with self.tracer.span("admission") as admission:
                admitted = self.bucket.try_acquire()
                admission.set("admitted", admitted)
            if not admitted:
                self.stats.record_shed(SHED_RATE_LIMITED)
                span.set("outcome", "shed").set("shed_reason", SHED_RATE_LIMITED)
                return self._shed_response(request, SHED_RATE_LIMITED)
            self.stats.record_admitted()
            response = self._score_admitted(request)
            span.set("rung", response.rung)
            if response.degraded_reason:
                span.set("degraded_reason", response.degraded_reason)
            return response

    def score_batch(self, requests: Sequence[Union[int, ScoreRequest]]) -> List[ScoreResponse]:
        """Score many requests with micro-batched execution.

        Admission is still per request — the token bucket is consulted
        once per request in arrival order, so any request that would be
        shed alone is shed here too, with the identical verdict. The
        admitted remainder is coalesced into micro-batches of
        ``config.batch_size`` (``None`` = all at once), each executing
        one cache-keyed singleton sample per target stacked into ONE
        disjoint forward graph, ONE batched KV feature fetch, and one
        ``no_grad`` forward per degradation rung actually used — not
        one per request. Scores are identical to sequential scoring
        (within float noise); responses come back in request order.
        """
        coerced = [self._coerce(request) for request in requests]
        responses: List[Optional[ScoreResponse]] = [None] * len(coerced)
        admitted: List[int] = []
        for position, request in enumerate(coerced):
            with self.tracer.span("admission", node=request.node) as admission:
                ok = self.bucket.try_acquire()
                admission.set("admitted", ok)
            if ok:
                self.stats.record_admitted()
                admitted.append(position)
            else:
                self.stats.record_shed(SHED_RATE_LIMITED)
                responses[position] = self._shed_response(request, SHED_RATE_LIMITED)
        batch_size = self.config.batch_size or max(len(admitted), 1)
        for positions in batched(admitted, batch_size):
            group_responses = self._score_admitted_batch(
                [coerced[p] for p in positions]
            )
            for position, response in zip(positions, group_responses):
                responses[position] = response
        return [response for response in responses if response is not None]

    def warm_cache(self, targets: Sequence[int]) -> int:
        """Pre-sample hot targets into the subgraph cache (no scoring).

        Returns the number of targets newly sampled; 0 when the service
        has no cache or no sampler. Startup warming turns first-hit
        latency into cache hits for known-hot buyers/cards.
        """
        sampler = getattr(self.model, "sampler", None)
        if self.cache is None or sampler is None or not hasattr(sampler, "cache_key"):
            return 0
        before = self.cache.misses
        for target in targets:
            self.cache.get_or_sample(self.graph, sampler, [int(target)])
        return self.cache.misses - before

    def submit(self, request: Union[int, ScoreRequest]) -> Optional[ScoreResponse]:
        """Enqueue a request; returns a shed response immediately when
        the backlog is full or the rate limiter denies, else ``None``
        (the verdict arrives from :meth:`drain`)."""
        request = self._coerce(request)
        admitted, reason = self.queue.offer(request)
        if not admitted:
            self.stats.record_shed(reason)
            return self._shed_response(request, reason)
        self.stats.record_admitted()
        return None

    def drain(self) -> List[ScoreResponse]:
        """Serve the queued backlog FIFO, micro-batched; one verdict per
        admitted request (admission already happened in :meth:`submit`)."""
        backlog = list(self.queue.drain())
        if not backlog:
            return []
        batch_size = self.config.batch_size or len(backlog)
        responses: List[ScoreResponse] = []
        for group in batched(backlog, batch_size):
            responses.extend(self._score_admitted_batch(group))
        return responses

    # -- internals ------------------------------------------------------
    def _coerce(self, request: Union[int, ScoreRequest]) -> ScoreRequest:
        if not isinstance(request, ScoreRequest):
            request = ScoreRequest(node=int(request))
        if not 0 <= request.node < self.graph.num_nodes:
            raise ValueError(f"node {request.node} outside the serving graph")
        return request

    def _request_features(self, request: ScoreRequest) -> Optional[np.ndarray]:
        if request.features is not None:
            return np.asarray(request.features, dtype=np.float64)
        row = np.asarray(self.graph.txn_features[request.node], dtype=np.float64)
        if self.feature_store is not None and not row.any():
            # KV-backed deployments carry raw features on the request;
            # an all-zero in-memory row is a structure-only placeholder,
            # so the rules rung has nothing to score -> static prior.
            return None
        return row

    def _shed_response(self, request: ScoreRequest, reason: str) -> ScoreResponse:
        score = self.config.static_prior
        return ScoreResponse(
            node=request.node,
            score=score,
            verdict=self._verdict(score),
            rung=RUNG_PRIOR,
            admitted=False,
            shed_reason=reason,
        )

    def _verdict(self, score: float) -> str:
        return VERDICT_FRAUD if score >= self.config.fraud_threshold else VERDICT_LEGIT

    def _score_admitted(self, request: ScoreRequest) -> ScoreResponse:
        started = self._clock()
        budget = request.deadline_s if request.deadline_s is not None else self.config.deadline_s
        deadline = Deadline(budget, clock=self._clock)
        degraded_reason: Optional[str] = None
        rung: Optional[str] = None
        score = 0.0
        try:
            score = self._gnn_score(request, deadline)
            rung = RUNG_GNN
        except DeadlineExceeded as error:
            self.stats.deadline_hits += 1
            degraded_reason = f"deadline:{error.stage}"
        except CircuitOpenError:
            degraded_reason = "breaker_open"
        except FeatureFetchError:
            degraded_reason = "kv_unavailable"
        # The "rung" span covers verdict production: the fallback walk
        # when degraded, a zero-width marker on the healthy GNN path.
        with self.tracer.span("rung", degraded=degraded_reason or "") as rung_span:
            if rung is None:
                rung, score = self._fallback(request)
            rung_span.set("rung", rung)
        latency = self._clock() - started
        self.stats.record_response(rung, latency, degraded_reason)
        label = int(self.graph.labels[request.node])
        if label >= 0:
            self.stats.record_outcome(label, score)
        return ScoreResponse(
            node=request.node,
            score=float(score),
            verdict=self._verdict(score),
            rung=rung,
            admitted=True,
            latency_s=latency,
            degraded_reason=degraded_reason,
            deadline_remaining_s=deadline.remaining(),
        )

    # -- micro-batched scoring ----------------------------------------
    def _score_admitted_batch(self, requests: Sequence[ScoreRequest]) -> List[ScoreResponse]:
        """Score already-admitted requests as ONE coalesced unit.

        One cache-keyed singleton sample per target (stacked into a
        single disjoint forward graph, so verdicts match sequential
        scoring), one batched KV fetch, one forward per degradation
        rung used. Per-request
        deadline semantics ride on :class:`_DeadlineGroup`; breaker and
        KV failures demote every member still on the GNN rung, exactly
        as they would have demoted each request scored alone.
        """
        if len(requests) == 1:
            # A singleton batch gains nothing from coalescing; reuse the
            # sequential path (identical spans, stats, and verdicts).
            return [self._score_admitted(requests[0])]
        started = self._clock()
        members: List[_BatchMember] = []
        for request in requests:
            budget = (
                request.deadline_s if request.deadline_s is not None else self.config.deadline_s
            )
            members.append(_BatchMember(request, Deadline(budget, clock=self._clock)))
        group = _DeadlineGroup(members, on_expire=self._record_deadline_hit)
        with self.tracer.span("batch", size=len(members)) as batch_span:
            try:
                self._gnn_score_batch(group)
            except DeadlineExceeded:
                pass  # every member already carries its deadline:<stage> reason
            except CircuitOpenError:
                for member in group.live:
                    member.degraded_reason = "breaker_open"
            except FeatureFetchError:
                for member in group.live:
                    member.degraded_reason = "kv_unavailable"
            self._fallback_batch(members)
            batch_span.set(
                "gnn_scored", sum(1 for m in members if m.rung == RUNG_GNN)
            )
        responses: List[ScoreResponse] = []
        latency = self._clock() - started
        for member in members:
            with self.tracer.span("request", node=member.request.node, batched=True) as span:
                span.set("rung", member.rung)
                if member.degraded_reason:
                    span.set("degraded_reason", member.degraded_reason)
            self.stats.record_response(member.rung, latency, member.degraded_reason)
            label = int(self.graph.labels[member.request.node])
            if label >= 0:
                self.stats.record_outcome(label, member.score)
            responses.append(
                ScoreResponse(
                    node=member.request.node,
                    score=float(member.score),
                    verdict=self._verdict(member.score),
                    rung=member.rung,
                    admitted=True,
                    latency_s=latency,
                    degraded_reason=member.degraded_reason,
                    deadline_remaining_s=member.deadline.remaining(),
                )
            )
        return responses

    def _record_deadline_hit(self, member: _BatchMember) -> None:
        self.stats.deadline_hits += 1

    def _gnn_score_batch(self, group: _DeadlineGroup) -> None:
        """Rung 0 for a whole micro-batch: assigns score+rung to every
        member that survives sampling, fetch, and forward."""
        group.check("admission")
        sampler = getattr(self.model, "sampler", None)
        if sampler is None:
            if self.feature_store is not None:
                targets = np.array([m.request.node for m in group.live], dtype=np.int64)
                with self.tracer.span("feature_fetch", rows=int(len(targets))):
                    self._fetch_features(targets, group)
            group.check("model forward")
            live = group.live
            with self.tracer.span("forward", targets=len(live)):
                probs = self.model.predict_proba(
                    self.graph, [m.request.node for m in live]
                )
            for member, prob in zip(live, probs):
                member.score, member.rung = float(prob), RUNG_GNN
            return
        cohort = group.live
        parts: List = []
        sampled_members: List[_BatchMember] = []
        with self.tracer.span("sample", targets=len(cohort)) as sample_span:
            # One singleton sample per member, stacked block-diagonally
            # below. Sampling the *union* of targets instead would leak
            # each request's neighbourhood into the others' attention
            # normalisation (the induced subgraph carries cross-target
            # edges, and shared nodes reached at different hop depths
            # draw differently), making a score depend on batch
            # composition — repro.check's single-vs-batched scenario
            # falsifies exactly that. Singleton samples are also what
            # warm_cache() pre-loads, so cache hits survive any batch
            # composition.
            for member in cohort:
                if not member.live:
                    continue  # demoted while an earlier member sampled
                parts.append(self._sample(sampler, [member.request.node], group))
                sampled_members.append(member)
            sample_span.set(
                "sampled_nodes", int(sum(len(p.original_ids) for p in parts))
            )
        survivors = [
            (member, part)
            for member, part in zip(sampled_members, parts)
            if member.live
        ]
        if not survivors:
            return
        sampled = stack_subgraphs([part for _, part in survivors])
        forward_graph = sampled.graph
        if self.feature_store is not None:
            # Components may repeat an original id (two targets sampling
            # the same hub): fetch each row once, scatter to every copy.
            unique_ids, inverse = np.unique(sampled.original_ids, return_inverse=True)
            with self.tracer.span("feature_fetch", rows=int(len(unique_ids))):
                rows = self._fetch_features(unique_ids, group)[inverse]
            # Hydrate onto an O(1) clone: the sampled subgraphs may live
            # in the SubgraphCache and must never carry another
            # request's feature rows.
            forward_graph = sampled.graph.with_features(
                rows.astype(sampled.graph.txn_features.dtype, copy=False)
            )
        group.check("model forward")
        live = [member for member, _ in survivors if member.live]
        locals_ = [
            int(local)
            for (member, _), local in zip(survivors, sampled.target_local)
            if member.live
        ]
        if not live:
            return
        with self.tracer.span("forward", targets=len(live)):
            probs = self.model.predict_proba(forward_graph, locals_)
        for member, prob in zip(live, probs):
            member.score, member.rung = float(prob), RUNG_GNN

    def _fallback_batch(self, members: Sequence[_BatchMember]) -> None:
        """Rungs 1–2 for every member the GNN rung did not score: ONE
        rules pass over the stacked request features, prior for the rest."""
        pending = [member for member in members if member.rung is None]
        if not pending:
            return
        with self.tracer.span("rung", batch=len(pending)) as rung_span:
            if self.rules is not None and len(self.rules):
                featured = [
                    (member, self._request_features(member.request))
                    for member in pending
                ]
                scoreable = [(m, f) for m, f in featured if f is not None]
                if scoreable:
                    matrix = np.stack([features for _, features in scoreable])
                    scores = self.rules.risk_scores(matrix)
                    for (member, _), score in zip(scoreable, scores):
                        member.rung, member.score = RUNG_RULES, float(score)
            for member in pending:
                if member.rung is None:
                    member.rung, member.score = RUNG_PRIOR, self.config.static_prior
            rung_span.set("rules", sum(1 for m in pending if m.rung == RUNG_RULES))

    # -- rung 0: full GNN ----------------------------------------------
    def _sample(self, sampler, targets: Sequence[int], deadline):
        """Sampler call, via the subgraph cache when one is configured."""
        if self.cache is not None and hasattr(sampler, "cache_key"):
            return self.cache.get_or_sample(self.graph, sampler, targets, deadline=deadline)
        return sampler.sample(self.graph, targets, deadline=deadline)

    def _gnn_score(self, request: ScoreRequest, deadline: Deadline) -> float:
        deadline.check("admission")
        sampler = getattr(self.model, "sampler", None)
        if sampler is None:
            # No sampling stage (plain detector): full-graph scoring
            # under the same deadline bound.
            if self.feature_store is not None:
                with self.tracer.span("feature_fetch", rows=1):
                    self._fetch_features(np.array([request.node]), deadline)
            deadline.check("model forward")
            with self.tracer.span("forward"):
                return float(self.model.predict_proba(self.graph, [request.node])[0])
        with self.tracer.span("sample") as sample_span:
            sampled = self._sample(sampler, [request.node], deadline)
            sample_span.set("sampled_nodes", int(len(sampled.original_ids)))
        forward_graph = sampled.graph
        if self.feature_store is not None:
            with self.tracer.span("feature_fetch", rows=int(len(sampled.original_ids))):
                rows = self._fetch_features(sampled.original_ids, deadline)
            # Never written in place: the subgraph may be shared via the
            # SubgraphCache, so features ride an O(1) structural clone.
            forward_graph = sampled.graph.with_features(
                rows.astype(sampled.graph.txn_features.dtype, copy=False)
            )
        deadline.check("model forward")
        with self.tracer.span("forward"):
            return float(self.model.predict_proba(forward_graph, sampled.target_local)[0])

    def _fetch_features(self, node_ids: np.ndarray, deadline: Deadline) -> np.ndarray:
        """Hydrate feature rows from the KV-store, retries inside the breaker.

        The deadline is checked once per chunk, and a retry whose
        backoff would outlive the budget is abandoned early — the
        degradation ladder is always cheaper than a doomed wait.

        A :class:`~repro.storage.replicated.ReplicatedKVStore` carries
        its own failover, hedging, and per-replica breakers, so the
        global breaker and the retry layer step aside — wrapping the
        store's internal failover loop in another retry would
        double-penalise a replica blip, and a global breaker would turn
        one dead replica into a whole-tier outage (the exact failure
        mode replication exists to remove). Only
        :class:`~repro.storage.replicated.AllReplicasFailedError` —
        every owner down or corrupt — demotes the request.
        """
        store = self.feature_store

        def on_retry(attempt: int, error: BaseException, delay: float) -> None:
            self.stats.kv_retries += 1
            if deadline.remaining() <= delay:
                raise error  # stop retrying: the budget dies before the backoff ends

        rows: List[np.ndarray] = []
        node_ids = np.asarray(node_ids, dtype=np.int64)
        for chunk in batched(node_ids, self.config.fetch_chunk):
            deadline.check("feature fetch")

            def read_chunk(chunk=chunk):
                return [_decode_array(store.get(f"feat/{int(node)}")) for node in chunk]

            chunk_started = self._clock()
            try:
                if self._replicated:
                    fetched = read_chunk()
                else:
                    fetched = self.breaker.call(
                        lambda: retry_call(
                            read_chunk,
                            policy=self.config.retry,
                            retry_on=(TransientReadError, CorruptStoreError),
                            sleep=self._sleep,
                            on_retry=on_retry,
                        )
                    )
            except CircuitOpenError:
                raise
            except (
                TransientReadError,
                CorruptStoreError,
                AllReplicasFailedError,
            ) as error:
                self.stats.kv_failures += 1
                raise FeatureFetchError(str(error)) from error
            finally:
                # Chunk latency on the service clock (simulated reads
                # under a ManualClock land in the histogram too).
                if self._kv_read_seconds is not None:
                    self._kv_read_seconds.observe(
                        self._clock() - chunk_started, store="feature-store"
                    )
                    self._kv_reads_total.inc(len(chunk), store="feature-store")
            rows.extend(fetched)
        return np.stack(rows)

    # -- rungs 1 and 2: rules, then static prior -----------------------
    def _fallback(self, request: ScoreRequest):
        features = self._request_features(request)
        if self.rules is not None and len(self.rules) and features is not None:
            score = float(self.rules.risk_scores(features[None, :])[0])
            return RUNG_RULES, score
        return RUNG_PRIOR, self.config.static_prior
