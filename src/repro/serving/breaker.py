"""Circuit breaker guarding the KV-store feature reads.

A scoring request that keeps hammering a down KV-store burns its whole
deadline budget inside retries; a :class:`CircuitBreaker` notices the
failure rate, *opens*, and lets requests fail over to the rules rung
instantly until a cool-down passes, then *half-opens* to probe the
store with a bounded number of trial reads before closing again.

Retries compose *inside* the breaker: one :func:`~repro.reliability.retry.retry_call`
invocation (all its attempts) is a single breaker outcome, so a read
that succeeds on attempt 3 counts as a success and a read that exhausts
its retries counts as one failure — the breaker reacts to the store
being *down*, not to individual transient blips the retry layer already
absorbs.

States follow the classic closed → open → half-open → closed machine,
with a sliding outcome window for the failure rate and an injectable
monotonic clock for deterministic chaos tests. Every transition is
recorded (and mirrored into :class:`~repro.serving.stats.ServiceStats`
via ``on_transition``) so operators can replay an incident.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """The breaker is open: the guarded dependency is presumed down."""

    def __init__(self, name: str, retry_in_s: float) -> None:
        super().__init__(f"circuit {name!r} is open (retry in {retry_in_s:.3f}s)")
        self.name = name
        self.retry_in_s = retry_in_s


@dataclass(frozen=True)
class BreakerTransition:
    """One observed state change, timestamped on the breaker's clock."""

    at: float
    from_state: str
    to_state: str
    reason: str = ""


class CircuitBreaker:
    """Sliding-window failure-rate breaker with half-open probing.

    Closed: calls flow; the last ``window`` outcomes are kept and the
    breaker opens when at least ``min_calls`` are recorded and the
    failure fraction reaches ``failure_threshold``. Open: calls raise
    :class:`CircuitOpenError` until ``cooldown_s`` elapses, then the
    breaker half-opens. Half-open: up to ``half_open_probes`` calls are
    let through; all succeeding closes the breaker (window reset), any
    failure re-opens it and restarts the cool-down.
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 8,
        min_calls: int = 4,
        cooldown_s: float = 0.25,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
        name: str = "kv",
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if window < 1 or min_calls < 1 or half_open_probes < 1:
            raise ValueError("window, min_calls and half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self.name = name
        self._clock = clock
        self._on_transition = on_transition
        self.state = CLOSED
        self.transitions: List[BreakerTransition] = []
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------
    def _transition(self, to_state: str, reason: str) -> None:
        if to_state == self.state:
            return
        event = BreakerTransition(self._clock(), self.state, to_state, reason)
        self.transitions.append(event)
        previous, self.state = self.state, to_state
        if self._on_transition is not None:
            self._on_transition(previous, to_state)

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - (sum(self._outcomes) / len(self._outcomes))

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now? (May move open → half-open.)"""
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._probes_in_flight = 0
                self._probe_successes = 0
                self._transition(HALF_OPEN, "cooldown elapsed")
            else:
                return False
        if self.state == HALF_OPEN:
            return self._probes_in_flight < self.half_open_probes
        return True

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._outcomes.clear()
                self._transition(CLOSED, "probes succeeded")
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._opened_at = self._clock()
            self._transition(OPEN, "half-open probe failed")
            return
        self._outcomes.append(False)
        if (
            self.state == CLOSED
            and len(self._outcomes) >= self.min_calls
            and self._failure_rate() >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self._transition(OPEN, f"failure rate {self._failure_rate():.2f}")

    def call(self, fn: Callable[[], object]):
        """Run ``fn`` through the breaker.

        Raises :class:`CircuitOpenError` without calling ``fn`` when
        open; otherwise records the outcome and re-raises failures.
        """
        if not self.allow():
            retry_in = max(0.0, self.cooldown_s - (self._clock() - self._opened_at))
            raise CircuitOpenError(self.name, retry_in)
        if self.state == HALF_OPEN:
            self._probes_in_flight += 1
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    def transition_path(self) -> Tuple[str, ...]:
        """The visited states in order, starting from closed."""
        if not self.transitions:
            return (self.state,)
        return (self.transitions[0].from_state,) + tuple(t.to_state for t in self.transitions)
