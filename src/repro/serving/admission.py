"""Admission control: token-bucket rate limiting + a bounded queue.

An online scorer under heavy traffic must *shed* load it cannot serve
within deadline rather than queue it unboundedly (a verdict delivered
after the transaction completed is worthless). Two mechanisms compose:

* :class:`TokenBucket` — smooths the admitted rate to ``rate``
  requests/s with bursts up to ``capacity``; refills continuously on
  an injectable monotonic clock.
* :class:`AdmissionQueue` — a bounded FIFO backlog. ``offer`` never
  blocks: a request is either queued or rejected immediately with a
  typed shed reason, and the service converts the rejection into a
  static-prior verdict (reject-with-verdict, never reject-with-error).

Both are deterministic under a
:class:`~repro.reliability.faults.ManualClock`, which is how the chaos
tests script deadline storms and burst arrivals.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Callable, Deque, Optional, Tuple

SHED_QUEUE_FULL = "queue_full"
SHED_RATE_LIMITED = "rate_limited"


class TokenBucket:
    """Continuous-refill token bucket (``rate`` tokens/s, burst ``capacity``)."""

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 and not math.isinf(rate):
            raise ValueError("rate must be positive (or inf to disable limiting)")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        if math.isinf(self.rate):
            self._tokens = self.capacity
        else:
            self._tokens = min(self.capacity, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class AdmissionQueue:
    """Bounded backlog with immediate, typed load-shedding.

    ``offer`` admits a request only if the bucket grants a token *and*
    the backlog has room; the order matters — a full queue sheds before
    consuming a token, so rate capacity is not burned on requests that
    were never going to be served.
    """

    def __init__(
        self,
        capacity: int,
        bucket: Optional[TokenBucket] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.bucket = bucket
        self._queue: Deque[object] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def offer(self, item: object) -> Tuple[bool, Optional[str]]:
        """Queue ``item`` or return ``(False, shed_reason)`` immediately."""
        if len(self._queue) >= self.capacity:
            return False, SHED_QUEUE_FULL
        if self.bucket is not None and not self.bucket.try_acquire():
            return False, SHED_RATE_LIMITED
        self._queue.append(item)
        return True, None

    def take(self) -> object:
        """Pop the oldest queued item (raises IndexError when empty)."""
        return self._queue.popleft()

    def drain(self):
        """Yield queued items FIFO until the backlog is empty."""
        while self._queue:
            yield self._queue.popleft()
