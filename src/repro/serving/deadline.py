"""Per-request deadline budgets on a monotonic clock.

Fraud scoring is a latency-bounded online decision (Appendix H.5: the
deployed system must answer while the transaction is in flight). A
:class:`Deadline` is created once per request and *propagated* through
every stage that can stall — neighbour sampling, KV feature fetch,
model forward — so a slow stage surfaces as a typed
:class:`DeadlineExceeded` carrying the stage name, which the service
converts into a degraded verdict rather than an error.

The clock is injectable (``clock=time.monotonic`` by default) so chaos
tests drive deadlines with a :class:`~repro.reliability.faults.ManualClock`
and stay fully deterministic. Samplers and models take the deadline as
a duck-typed optional argument (they only call :meth:`check`), keeping
``repro.graph`` / ``repro.models`` free of serving imports.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional


class DeadlineExceeded(RuntimeError):
    """A request ran out of its latency budget.

    ``stage`` names where the budget died ("sampling hop 1",
    "feature-fetch", ...), which the degradation ladder records in the
    response so operators can see *which* stage is slow.
    """

    def __init__(self, stage: str, budget_s: float, elapsed_s: float) -> None:
        super().__init__(
            f"deadline exceeded during {stage}: "
            f"{elapsed_s * 1000:.1f}ms elapsed of {budget_s * 1000:.1f}ms budget"
        )
        self.stage = stage
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class Deadline:
    """A monotonic-clock latency budget for one scoring request."""

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s <= 0 and not math.isinf(budget_s):
            raise ValueError("budget_s must be positive (or inf for no deadline)")
        self.budget_s = float(budget_s)
        self._clock = clock
        self.started = clock()

    @classmethod
    def never(cls, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline that never expires (offline / batch paths)."""
        return cls(math.inf, clock=clock)

    def elapsed(self) -> float:
        return self._clock() - self.started

    def remaining(self) -> float:
        """Seconds left; negative once the budget is blown."""
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        Called at stage boundaries (per sampling hop, per feature-fetch
        chunk), so a request overruns its budget by at most one stage —
        the "one sampling step" bound the chaos tests assert.
        """
        elapsed = self.elapsed()
        if elapsed >= self.budget_s:
            raise DeadlineExceeded(stage, self.budget_s, elapsed)
