"""Deterministic chaos demo behind ``repro serve --demo``.

Builds a small serving stack end to end — dataset, briefly-trained
detector+, mined platform rules, a KV feature store — then replays a
scripted incident on a :class:`~repro.reliability.faults.ManualClock`:

1. *steady state*: KV reads are healthy (but slow enough to cost
   simulated time), requests score on the full GNN rung;
2. *outage*: a scripted read-index window makes every KV read fail, the
   retry layer exhausts, the circuit breaker opens, and requests fail
   over to the rules rung;
3. *recovery*: the cool-down elapses, half-open probes succeed, the
   breaker closes and the GNN rung returns;
4. *burst*: a queue-capacity-busting burst demonstrates load shedding
   with static-prior verdicts.

With ``--replicas N`` (N > 1) the feature tier becomes a
:class:`~repro.storage.replicated.ReplicatedKVStore` and the incident
changes character: the same outage window now *kills replica 1* (and,
with three or more replicas, a few of replica 2's feature rows are
silently bit-flipped on disk). The service stays on the GNN rung
throughout — reads fail over, the corrupt replica is quarantined, an
anti-entropy pass repairs the divergent rows, and the dead replica is
probed back to health — so the printed story is zero degradations with
per-replica breaker journeys showing the failover instead.

Everything runs on simulated time, so the printed ``ServiceStats``
block — rung mix, breaker transition path, latency percentiles — is
bit-reproducible for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..data import load_dataset
from ..graph.cache import SubgraphCache
from ..models import DetectorConfig, XFraudDetectorPlus
from ..obs.registry import MetricsRegistry
from ..obs.trace import Tracer
from ..reliability.faults import FaultPlan, ManualClock, OutageKVStore, SlowKVStore
from ..reliability.retry import RetryPolicy
from ..rules.miner import MinerConfig, RuleMiner
from ..storage.kvstore import InMemoryKVStore, KVStore
from ..storage.loader import GraphStore
from ..storage.replicated import AntiEntropyReport, ReplicatedConfig, ReplicatedKVStore
from ..train import TrainConfig, Trainer
from .service import ScoreRequest, ScoreResponse, ScoringService, ServiceConfig
from .stats import ServiceStats


@dataclass
class DemoResult:
    """Everything the CLI (and tests) need from one demo run."""

    responses: List[ScoreResponse]
    shed_responses: List[ScoreResponse]
    stats: ServiceStats
    service: ScoringService
    # Replicated-tier extras (None on the single-store storyline): the
    # store outlives service.close() for health reporting.
    feature_store: Optional[KVStore] = None
    anti_entropy: Optional[AntiEntropyReport] = None


def build_demo_service(
    seed: int = 0,
    scale: float = 0.25,
    epochs: int = 2,
    outage_window: Tuple[float, float] = (0.15, 0.45),
    read_delay_s: float = 0.002,
    deadline_s: float = 0.5,
    registry: Optional[MetricsRegistry] = None,
    trace: bool = False,
    batch_size: Optional[int] = None,
    cache_capacity: int = 256,
    replicas: int = 1,
    hedge_quantile: float = 0.95,
) -> Tuple[ScoringService, "np.ndarray", ManualClock]:
    """Assemble the chaos-instrumented service; returns (service, test_nodes, clock).

    ``registry`` backs the service's stats with metric histograms;
    ``trace`` attaches a :class:`~repro.obs.trace.Tracer` on the demo's
    :class:`ManualClock`, so span timestamps live on the same simulated
    timeline as the scripted outage (reach it via ``service.tracer``).
    ``batch_size`` bounds the serving micro-batches (``None`` = one
    coalesced batch per ``score_batch``/``drain`` call); the subgraph
    cache (``cache_capacity`` entries) fronts every sampler call and
    reports hit/miss/eviction counters through ``registry``.

    ``replicas > 1`` swaps the single faulted store for a fully
    replicated tier: the outage window becomes a replica-1 kill, three
    or more replicas additionally get a handful of replica-2 feature
    rows bit-flipped on disk, and the service wires per-replica
    breakers automatically.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    bundle = load_dataset("ebay-small-sim", seed=seed, scale=scale)
    graph = bundle.graph

    model = XFraudDetectorPlus(DetectorConfig(feature_dim=graph.feature_dim, seed=seed))
    if epochs > 0:
        Trainer(model, TrainConfig(epochs=epochs, batch_size=512, seed=seed)).fit(
            graph, bundle.train_nodes
        )

    # Platform rules mined from the raw transaction log (Appendix B) —
    # the feature-only middle rung of the degradation ladder.
    rules = RuleMiner(MinerConfig(seed=seed)).fit(
        bundle.log.feature_matrix(), bundle.log.labels()
    )

    clock = ManualClock()
    if replicas > 1:
        store = _build_replicated_store(
            graph,
            clock,
            replicas=replicas,
            seed=seed,
            outage_window=outage_window,
            read_delay_s=read_delay_s,
            hedge_quantile=hedge_quantile,
            hot_nodes=[int(n) for n in bundle.test_nodes[:64]],
        )
    else:
        backing = InMemoryKVStore()
        GraphStore(backing).save(graph)
        store = SlowKVStore(
            OutageKVStore(backing, windows=[outage_window], clock=clock),
            clock,
            delay_s=read_delay_s,
        )

    config = ServiceConfig(
        deadline_s=deadline_s,
        queue_capacity=8,
        breaker_min_calls=2,
        breaker_window=4,
        breaker_cooldown_s=0.05,
        breaker_half_open_probes=1,
        retry=RetryPolicy(max_attempts=2, base_delay=0.001, seed=seed),
        static_prior=float(graph.fraud_rate()),
        batch_size=batch_size,
    )
    tracer = Tracer(clock=clock) if trace else None
    service = ScoringService(
        model,
        graph,
        feature_store=store,
        rules=rules,
        config=config,
        clock=clock,
        own_store=True,
        tracer=tracer,
        registry=registry,
        cache=SubgraphCache(capacity=cache_capacity),
    )
    return service, np.asarray(bundle.test_nodes, dtype=np.int64), clock


def _build_replicated_store(
    graph,
    clock: ManualClock,
    replicas: int,
    seed: int,
    outage_window: Tuple[float, float],
    read_delay_s: float,
    hedge_quantile: float,
    hot_nodes: Optional[List[int]] = None,
    poison_rows: int = 3,
) -> ReplicatedKVStore:
    """The replicated incident: N slow replicas, replica 1 killed over
    the outage window, and (with >= 3 replicas) ``poison_rows`` of
    replica 2's feature rows bit-flipped on disk — persistent
    divergence for the quarantine + anti-entropy acts. ``hot_nodes``
    lists nodes the demo will actually score, so the poisoned rows are
    ones whose primary read lands on the corrupt replica and the
    quarantine act fires during the run."""
    backings = [InMemoryKVStore() for _ in range(replicas)]
    slowed = [SlowKVStore(backing, clock, delay_s=read_delay_s) for backing in backings]
    plan = FaultPlan(
        num_workers=replicas,
        seed=seed,
        replica_kill={1: [outage_window]},
    )
    config = ReplicatedConfig(
        replication_factor=replicas,
        hedge_quantile=hedge_quantile,
        concurrent_hedge=False,  # deterministic on the ManualClock
        suspect_after=1,
        dead_after=2,
        probe_interval_s=0.05,
    )
    store = ReplicatedKVStore(
        plan.wrap_replicas(slowed, clock), config=config, clock=clock, seed=seed
    )
    GraphStore(store).save(graph)
    if replicas > 2 and poison_rows > 0:
        # Flip one byte in a few of replica 2's copies — preferring
        # rows whose primary owner is replica 2 so the ledger CRC check
        # fires during the run (quarantine), not just at anti-entropy.
        candidates = list(hot_nodes or []) + list(range(graph.num_nodes))
        seen = set()
        poisoned = 0
        for node in candidates:
            key = f"feat/{node}"
            if key in seen or not backings[2].contains(key):
                continue
            seen.add(key)
            if store.owners(key)[0] != 2 and hot_nodes:
                continue
            raw = bytearray(backings[2].get(key))
            raw[len(raw) // 2] ^= 0xFF
            backings[2].put(key, bytes(raw))
            poisoned += 1
            if poisoned >= poison_rows:
                break
    return store


def run_demo(
    seed: int = 0,
    scale: float = 0.25,
    epochs: int = 2,
    requests: int = 40,
    burst: int = 20,
    registry: Optional[MetricsRegistry] = None,
    trace: bool = False,
    batch_size: Optional[int] = None,
    replicas: int = 1,
    hedge_quantile: float = 0.95,
) -> DemoResult:
    """Replay the scripted incident; see the module docstring for acts."""
    service, test_nodes, clock = build_demo_service(
        seed=seed,
        scale=scale,
        epochs=epochs,
        registry=registry,
        trace=trace,
        batch_size=batch_size,
        replicas=replicas,
        hedge_quantile=hedge_quantile,
    )
    feature_store = service.feature_store
    nodes = test_nodes[:requests]

    responses: List[ScoreResponse] = []
    for node in nodes:
        request = ScoreRequest(
            node=int(node), features=service.graph.txn_features[int(node)]
        )
        responses.append(service.score(request))
        # Inter-arrival gap: lets the breaker cool-down elapse so the
        # recovery act (half-open -> closed) happens inside the run.
        clock.advance(0.02)

    # Replicated storyline: an anti-entropy pass heals the divergence
    # the scripted corruption left behind (and resurrects the
    # quarantined replica), before the burst act.
    anti_entropy: Optional[AntiEntropyReport] = None
    if isinstance(feature_store, ReplicatedKVStore):
        anti_entropy = feature_store.anti_entropy(repair=True)
        clock.advance(0.1)

    # Act 4: a burst beyond queue capacity -> bounded-queue shedding.
    shed_responses: List[ScoreResponse] = []
    burst_nodes = test_nodes[: max(burst, 1)]
    for node in burst_nodes:
        shed = service.submit(int(node))
        if shed is not None:
            shed_responses.append(shed)
    responses.extend(service.drain())

    if isinstance(feature_store, ReplicatedKVStore):
        feature_store.export_health()
    service.close()
    return DemoResult(
        responses=responses,
        shed_responses=shed_responses,
        stats=service.stats,
        service=service,
        feature_store=feature_store if replicas > 1 else None,
        anti_entropy=anti_entropy,
    )
