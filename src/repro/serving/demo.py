"""Deterministic chaos demo behind ``repro serve --demo``.

Builds a small serving stack end to end — dataset, briefly-trained
detector+, mined platform rules, a KV feature store — then replays a
scripted incident on a :class:`~repro.reliability.faults.ManualClock`:

1. *steady state*: KV reads are healthy (but slow enough to cost
   simulated time), requests score on the full GNN rung;
2. *outage*: a scripted read-index window makes every KV read fail, the
   retry layer exhausts, the circuit breaker opens, and requests fail
   over to the rules rung;
3. *recovery*: the cool-down elapses, half-open probes succeed, the
   breaker closes and the GNN rung returns;
4. *burst*: a queue-capacity-busting burst demonstrates load shedding
   with static-prior verdicts.

Everything runs on simulated time, so the printed ``ServiceStats``
block — rung mix, breaker transition path, latency percentiles — is
bit-reproducible for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..data import load_dataset
from ..graph.cache import SubgraphCache
from ..models import DetectorConfig, XFraudDetectorPlus
from ..obs.registry import MetricsRegistry
from ..obs.trace import Tracer
from ..reliability.faults import ManualClock, OutageKVStore, SlowKVStore
from ..reliability.retry import RetryPolicy
from ..rules.miner import MinerConfig, RuleMiner
from ..storage.kvstore import InMemoryKVStore
from ..storage.loader import GraphStore
from ..train import TrainConfig, Trainer
from .service import ScoreRequest, ScoreResponse, ScoringService, ServiceConfig
from .stats import ServiceStats


@dataclass
class DemoResult:
    """Everything the CLI (and tests) need from one demo run."""

    responses: List[ScoreResponse]
    shed_responses: List[ScoreResponse]
    stats: ServiceStats
    service: ScoringService


def build_demo_service(
    seed: int = 0,
    scale: float = 0.25,
    epochs: int = 2,
    outage_window: Tuple[float, float] = (0.15, 0.45),
    read_delay_s: float = 0.002,
    deadline_s: float = 0.5,
    registry: Optional[MetricsRegistry] = None,
    trace: bool = False,
    batch_size: Optional[int] = None,
    cache_capacity: int = 256,
) -> Tuple[ScoringService, "np.ndarray", ManualClock]:
    """Assemble the chaos-instrumented service; returns (service, test_nodes, clock).

    ``registry`` backs the service's stats with metric histograms;
    ``trace`` attaches a :class:`~repro.obs.trace.Tracer` on the demo's
    :class:`ManualClock`, so span timestamps live on the same simulated
    timeline as the scripted outage (reach it via ``service.tracer``).
    ``batch_size`` bounds the serving micro-batches (``None`` = one
    coalesced batch per ``score_batch``/``drain`` call); the subgraph
    cache (``cache_capacity`` entries) fronts every sampler call and
    reports hit/miss/eviction counters through ``registry``.
    """
    bundle = load_dataset("ebay-small-sim", seed=seed, scale=scale)
    graph = bundle.graph

    model = XFraudDetectorPlus(DetectorConfig(feature_dim=graph.feature_dim, seed=seed))
    if epochs > 0:
        Trainer(model, TrainConfig(epochs=epochs, batch_size=512, seed=seed)).fit(
            graph, bundle.train_nodes
        )

    # Platform rules mined from the raw transaction log (Appendix B) —
    # the feature-only middle rung of the degradation ladder.
    rules = RuleMiner(MinerConfig(seed=seed)).fit(
        bundle.log.feature_matrix(), bundle.log.labels()
    )

    backing = InMemoryKVStore()
    GraphStore(backing).save(graph)
    clock = ManualClock()
    store = SlowKVStore(
        OutageKVStore(backing, windows=[outage_window], clock=clock),
        clock,
        delay_s=read_delay_s,
    )

    config = ServiceConfig(
        deadline_s=deadline_s,
        queue_capacity=8,
        breaker_min_calls=2,
        breaker_window=4,
        breaker_cooldown_s=0.05,
        breaker_half_open_probes=1,
        retry=RetryPolicy(max_attempts=2, base_delay=0.001, seed=seed),
        static_prior=float(graph.fraud_rate()),
        batch_size=batch_size,
    )
    tracer = Tracer(clock=clock) if trace else None
    service = ScoringService(
        model,
        graph,
        feature_store=store,
        rules=rules,
        config=config,
        clock=clock,
        own_store=True,
        tracer=tracer,
        registry=registry,
        cache=SubgraphCache(capacity=cache_capacity),
    )
    return service, np.asarray(bundle.test_nodes, dtype=np.int64), clock


def run_demo(
    seed: int = 0,
    scale: float = 0.25,
    epochs: int = 2,
    requests: int = 40,
    burst: int = 20,
    registry: Optional[MetricsRegistry] = None,
    trace: bool = False,
    batch_size: Optional[int] = None,
) -> DemoResult:
    """Replay the scripted incident; see the module docstring for acts."""
    service, test_nodes, clock = build_demo_service(
        seed=seed,
        scale=scale,
        epochs=epochs,
        registry=registry,
        trace=trace,
        batch_size=batch_size,
    )
    nodes = test_nodes[:requests]

    responses: List[ScoreResponse] = []
    for node in nodes:
        request = ScoreRequest(
            node=int(node), features=service.graph.txn_features[int(node)]
        )
        responses.append(service.score(request))
        # Inter-arrival gap: lets the breaker cool-down elapse so the
        # recovery act (half-open -> closed) happens inside the run.
        clock.advance(0.02)

    # Act 4: a burst beyond queue capacity -> bounded-queue shedding.
    shed_responses: List[ScoreResponse] = []
    burst_nodes = test_nodes[: max(burst, 1)]
    for node in burst_nodes:
        shed = service.submit(int(node))
        if shed is not None:
            shed_responses.append(shed)
    responses.extend(service.drain())

    service.close()
    return DemoResult(
        responses=responses,
        shed_responses=shed_responses,
        stats=service.stats,
        service=service,
    )
