"""Seeded random fixtures for the correctness harness.

Everything here is a pure function of a :class:`numpy.random.Generator`
— same seed, same graph / delta / event stream — which is what makes a
failing fuzz case replayable and *shrinkable*: the harness only ever
needs to remember ``(scenario, seed, size)`` to reproduce a divergence.

The generators deliberately bias toward the shapes that break graph
code: hub entities shared by many transactions, isolated nodes with no
edges, single-node graphs, deltas that wire new transactions to both
old and new entities, and event streams whose ids collide so the
incremental builder must dedup.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..data.events import TxnEvent
from ..graph.hetero import EDGE_TYPE_IDS, NODE_TYPE_IDS, HeteroGraph

__all__ = ["random_hetero_graph", "random_delta", "random_events"]

_ENTITY_KINDS = ("pmt", "email", "addr", "buyer")


def _pick_entity(rng: np.random.Generator, pool: int) -> int:
    """Skewed entity choice: index 0 becomes a hub in larger pools."""
    if pool == 1 or rng.random() < 0.3:
        return 0
    return int(rng.integers(0, pool))


def random_hetero_graph(
    rng: np.random.Generator,
    num_txns: int,
    feature_dim: int = 6,
) -> HeteroGraph:
    """A random but structurally valid transaction graph.

    ``num_txns`` transaction nodes, each linked (both directions) to
    one entity of a random subset of the four entity kinds; small
    entity pools produce hub nodes, and with some probability an extra
    unlinked entity is added so isolated nodes are exercised too.
    """
    num_txns = max(1, int(num_txns))
    node_types: List[int] = [NODE_TYPE_IDS["txn"]] * num_txns
    links: List[Tuple[int, int]] = []
    for kind in _ENTITY_KINDS:
        pool = int(rng.integers(1, max(2, num_txns // 2) + 1))
        if rng.random() < 0.15:
            pool += 1  # one entity more than ever gets linked: isolated node
        base = len(node_types)
        node_types.extend([NODE_TYPE_IDS[kind]] * pool)
        for txn in range(num_txns):
            if rng.random() < 0.85:  # not every txn carries every kind
                links.append((txn, base + _pick_entity(rng, pool)))
    features = np.zeros((len(node_types), feature_dim))
    features[:num_txns] = rng.normal(size=(num_txns, feature_dim))
    labels = np.full(len(node_types), -1, dtype=np.int64)
    labels[:num_txns] = rng.integers(0, 2, size=num_txns)
    return HeteroGraph.from_links(node_types, links, features, labels)


def random_delta(
    rng: np.random.Generator,
    graph: HeteroGraph,
    num_new_txns: int,
) -> Dict[str, np.ndarray]:
    """``append_delta`` kwargs wiring new txns to old *and* new entities."""
    num_new_txns = max(1, int(num_new_txns))
    base = graph.num_nodes
    node_type: List[int] = [NODE_TYPE_IDS["txn"]] * num_new_txns
    edge_src: List[int] = []
    edge_dst: List[int] = []
    edge_type: List[int] = []

    existing_by_kind = {
        kind: np.flatnonzero(graph.node_type == NODE_TYPE_IDS[kind])
        for kind in _ENTITY_KINDS
    }
    for local_txn in range(num_new_txns):
        txn = base + local_txn
        for kind in _ENTITY_KINDS:
            if rng.random() < 0.3:
                continue
            pool = existing_by_kind[kind]
            if len(pool) and rng.random() < 0.6:
                entity = int(pool[int(rng.integers(0, len(pool)))])
            else:
                entity = base + len(node_type)
                node_type.append(NODE_TYPE_IDS[kind])
            edge_src.append(txn)
            edge_dst.append(entity)
            edge_type.append(EDGE_TYPE_IDS[f"txn->{kind}"])
            edge_src.append(entity)
            edge_dst.append(txn)
            edge_type.append(EDGE_TYPE_IDS[f"{kind}->txn"])

    features = np.zeros((len(node_type), graph.feature_dim), dtype=graph.txn_features.dtype)
    features[:num_new_txns] = rng.normal(size=(num_new_txns, graph.feature_dim))
    labels = np.full(len(node_type), -1, dtype=np.int64)
    labels[:num_new_txns] = rng.integers(0, 2, size=num_new_txns)
    return {
        "node_type": np.asarray(node_type, dtype=np.int64),
        "labels": labels,
        "txn_features": features,
        "edge_src": np.asarray(edge_src, dtype=np.int64),
        "edge_dst": np.asarray(edge_dst, dtype=np.int64),
        "edge_type": np.asarray(edge_type, dtype=np.int64),
    }


def random_events(
    rng: np.random.Generator,
    count: int,
    feature_dim: int = 4,
    start_txn_id: int = 0,
) -> List[TxnEvent]:
    """A time-ordered stream of random :class:`TxnEvent`.

    Entity ids are drawn from small pools so repeats (and therefore
    builder dedup) are common; some events carry ``buyer_id=None``
    (guest checkout) and a revealed label.
    """
    count = max(1, int(count))
    events: List[TxnEvent] = []
    timestamp = float(rng.uniform(0.0, 10.0))
    for offset in range(count):
        timestamp += float(rng.uniform(0.01, 1.0))
        events.append(
            TxnEvent(
                txn_id=start_txn_id + offset,
                buyer_id=None if rng.random() < 0.2 else int(rng.integers(0, 5)),
                email_id=int(rng.integers(0, 6)),
                pmt_id=int(rng.integers(0, 4)),
                addr_id=int(rng.integers(0, 5)),
                timestamp=timestamp,
                features=rng.normal(size=feature_dim),
                label=int(rng.integers(-1, 2)),
            )
        )
    return events
