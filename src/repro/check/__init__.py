"""Differential correctness harness: invariant audits + seeded fuzzing.

Two halves, one purpose — falsify the stack's equivalence claims before
production traffic does:

* :mod:`repro.check.invariants` — a registry of per-layer checkers,
  each a deterministic experiment that must come back with zero
  violations (and must *detect* seeded corruption when self-testing).
* :mod:`repro.check.fuzz` — differential scenarios driving fast paths
  against their executable specs on ``(seed, size)``-determined random
  inputs, with greedy shrinking to a minimal repro on divergence.

``repro check [--fuzz N --seed S]`` runs both and exits non-zero on any
violation; CI gates on it.
"""

from .fuzz import SCENARIOS, FuzzFailure, FuzzReport, run_case, run_fuzz, shrink
from .gen import random_delta, random_events, random_hetero_graph
from .invariants import (
    REGISTRY,
    CheckResult,
    InvariantCheck,
    csr_violations,
    ledger_violations,
    run_audits,
    subgraph_equal,
    wal_violations,
)

__all__ = [
    "SCENARIOS",
    "REGISTRY",
    "CheckResult",
    "FuzzFailure",
    "FuzzReport",
    "InvariantCheck",
    "csr_violations",
    "ledger_violations",
    "random_delta",
    "random_events",
    "random_hetero_graph",
    "run_audits",
    "run_case",
    "run_fuzz",
    "shrink",
    "subgraph_equal",
    "wal_violations",
]
