"""Invariant registry: executable statements of what must always hold.

Each checker is a small deterministic experiment over one layer of the
stack — it builds its own seeded fixture, drives the real production
code paths, and returns a list of violation strings (empty = the
invariant held). The registry is what ``repro check`` runs and what CI
gates on; the same low-level audit helpers (:func:`csr_violations`,
:func:`wal_violations`, :func:`ledger_violations`) are reused by the
differential fuzzer in :mod:`repro.check.fuzz` so a fuzz case and an
audit disagree about nothing.

Checkers must be *self-falsifying* where practical: after asserting the
invariant holds on a healthy fixture, they corrupt the fixture and
assert the detection machinery actually fires. A checker that cannot
catch the fault it exists for is itself a violation.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..graph.hetero import HeteroGraph
from .gen import random_delta, random_events, random_hetero_graph

__all__ = [
    "CheckResult",
    "InvariantCheck",
    "REGISTRY",
    "csr_violations",
    "wal_violations",
    "ledger_violations",
    "subgraph_equal",
    "run_audits",
]


@dataclass
class InvariantCheck:
    """One registered checker: what layer it guards and what it falsifies."""

    name: str
    layer: str
    falsifies: str
    fn: Callable[[], List[str]]


@dataclass
class CheckResult:
    name: str
    layer: str
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


REGISTRY: Dict[str, InvariantCheck] = {}


def invariant(name: str, layer: str, falsifies: str):
    """Register a checker function under ``name``."""

    def decorate(fn: Callable[[], List[str]]) -> Callable[[], List[str]]:
        if name in REGISTRY:
            raise ValueError(f"duplicate invariant checker {name!r}")
        REGISTRY[name] = InvariantCheck(name=name, layer=layer, falsifies=falsifies, fn=fn)
        return fn

    return decorate


def run_audits(names: Optional[List[str]] = None) -> List[CheckResult]:
    """Run every registered checker (or the named subset), in order."""
    selected = list(REGISTRY) if names is None else list(names)
    results = []
    for name in selected:
        if name not in REGISTRY:
            raise KeyError(f"unknown invariant checker {name!r}")
        check = REGISTRY[name]
        results.append(
            CheckResult(name=check.name, layer=check.layer, violations=check.fn())
        )
    return results


# ----------------------------------------------------------------------
# Reusable audit helpers (shared with the fuzzer)
# ----------------------------------------------------------------------
def csr_violations(graph: HeteroGraph) -> List[str]:
    """Falsify the in-edge CSR against the flat edge arrays.

    The CSR contract (``HeteroGraph.csr``): ``indptr`` is a monotone
    prefix-sum over in-degrees; position ``i`` holds edge
    ``eid[i]`` with ``edge_dst[eid[i]]`` equal to the bucket node and
    ``edge_src[eid[i]] == src[i]``; ``eid`` is a permutation of the
    edge ids that is *stable* (ascending within each bucket), which is
    the canonical form ``_merge_csr`` must preserve.
    """
    problems: List[str] = []
    indptr, src, eid = graph.csr()
    num_nodes, num_edges = graph.num_nodes, graph.num_edges
    if indptr.shape != (num_nodes + 1,):
        return [f"indptr shape {indptr.shape} != ({num_nodes + 1},)"]
    if num_nodes >= 0 and (indptr[0] != 0 or indptr[-1] != num_edges):
        problems.append(
            f"indptr endpoints ({indptr[0]}, {indptr[-1]}) != (0, {num_edges})"
        )
    if np.any(np.diff(indptr) < 0):
        # Per-bucket checks below repeat by np.diff(indptr); negative
        # spans would crash them, so report and stop here.
        problems.append("indptr not monotone non-decreasing")
        return problems
    if len(src) != num_edges or len(eid) != num_edges:
        return problems + [
            f"csr arrays have {len(src)}/{len(eid)} entries for {num_edges} edges"
        ]
    if num_edges == 0:
        return problems
    if eid.min() < 0 or eid.max() >= num_edges or len(np.unique(eid)) != num_edges:
        problems.append("edge-id column is not a permutation of the edge ids")
        return problems
    bucket_of = np.repeat(np.arange(num_nodes), np.diff(indptr))
    if np.any(graph.edge_dst[eid] != bucket_of):
        problems.append("edge landed in the wrong destination bucket")
    if np.any(graph.edge_src[eid] != src):
        problems.append("source column disagrees with edge_src[eid]")
    same_bucket = np.diff(bucket_of) == 0
    if np.any(np.diff(eid)[same_bucket] <= 0):
        problems.append("edge ids not ascending within a bucket (stability lost)")
    return problems


def subgraph_equal(a, b) -> Optional[str]:
    """Bit-identity of two :class:`SampledSubgraph`; None when equal."""
    pairs = [
        ("original_ids", a.original_ids, b.original_ids),
        ("target_local", a.target_local, b.target_local),
        ("node_type", a.graph.node_type, b.graph.node_type),
        ("edge_src", a.graph.edge_src, b.graph.edge_src),
        ("edge_dst", a.graph.edge_dst, b.graph.edge_dst),
        ("edge_type", a.graph.edge_type, b.graph.edge_type),
        ("txn_features", a.graph.txn_features, b.graph.txn_features),
        ("labels", a.graph.labels, b.graph.labels),
    ]
    for name, left, right in pairs:
        if left.shape != right.shape:
            return f"{name} shape {left.shape} != {right.shape}"
        if not np.array_equal(left, right):
            return f"{name} differs"
    return None


def wal_violations(directory: str) -> List[str]:
    """Falsify WAL manifest/segment agreement on disk.

    Every sealed manifest entry must name an existing file whose size
    and whole-file CRC32 match, whose frames scan cleanly to exactly
    ``records`` payloads, and whose ``[first_seq, last_seq]`` ranges
    tile the sequence space contiguously from 0.
    """
    from ..stream.wal import _scan_frames

    problems: List[str] = []
    manifest_path = os.path.join(directory, "MANIFEST.json")
    if not os.path.exists(manifest_path):
        # Written at the first seal; a log that never rotated has none.
        return []
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    next_seq = 0
    for entry in manifest.get("segments", []):
        name = entry["file"]
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            problems.append(f"{name}: sealed but missing on disk")
            continue
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) != entry["size"]:
            problems.append(f"{name}: size {len(blob)} != sealed {entry['size']}")
        if zlib.crc32(blob) != entry["crc32"]:
            problems.append(f"{name}: crc32 mismatch against manifest")
        payloads, _, tear = _scan_frames(blob)
        if tear is not None:
            problems.append(f"{name}: sealed segment tears ({tear})")
        if len(payloads) != entry["records"]:
            problems.append(
                f"{name}: {len(payloads)} frames != sealed records {entry['records']}"
            )
        if entry["first_seq"] != next_seq:
            problems.append(
                f"{name}: first_seq {entry['first_seq']} != expected {next_seq}"
            )
        if entry["last_seq"] - entry["first_seq"] + 1 != entry["records"]:
            problems.append(f"{name}: seq span disagrees with record count")
        next_seq = entry["last_seq"] + 1
    return problems


def ledger_violations(store) -> List[str]:
    """Falsify the replicated store's CRC ledger against replica bytes.

    For every ledger entry, each owner replica that holds the key must
    hold bytes whose CRC32 matches the ledger. A missing copy is legal
    (a put succeeds on one owner; anti-entropy heals the rest) — only
    *divergent bytes* violate the invariant.
    """
    problems: List[str] = []
    for key, expected in sorted(store._crc.items()):
        for owner in store.owners(key):
            replica = store.replicas[owner]
            try:
                value = replica.get(key)
            except KeyError:
                continue
            except Exception as error:  # dead replica: routing's problem
                problems.append(f"{key}@replica{owner}: read failed ({error})")
                continue
            actual = zlib.crc32(value)
            if actual != expected:
                problems.append(
                    f"{key}@replica{owner}: crc {actual} != ledger {expected}"
                )
    return problems


# ----------------------------------------------------------------------
# Registered checkers
# ----------------------------------------------------------------------
@invariant(
    "graph-csr-validity",
    layer="graph",
    falsifies="CSR indptr/indices/edge-id agreement with the flat edge "
    "arrays, and version bumps: +1 per append_delta, 0 per compact",
)
def _check_csr_validity() -> List[str]:
    problems: List[str] = []
    for seed in (0, 1, 2):
        rng = np.random.default_rng(seed)
        graph = random_hetero_graph(rng, num_txns=4 + seed * 3)
        graph.csr()
        problems += [f"seed {seed}: {p}" for p in csr_violations(graph)]
        before = graph.version
        graph.append_delta(**random_delta(rng, graph, num_new_txns=2 + seed))
        if graph.version != before + 1:
            problems.append(
                f"seed {seed}: append_delta bumped version "
                f"{before}->{graph.version}, expected +1"
            )
        problems += [f"seed {seed} post-delta: {p}" for p in csr_violations(graph)]
        at_delta = graph.version
        graph.rebuild_csr()
        if graph.version != at_delta:
            problems.append(f"seed {seed}: rebuild_csr changed the version")
        problems += [f"seed {seed} post-rebuild: {p}" for p in csr_violations(graph)]
    # Self-test: a corrupted CSR must be caught.
    rng = np.random.default_rng(99)
    graph = random_hetero_graph(rng, num_txns=5)
    indptr, src, eid = graph.csr()
    if graph.num_edges >= 2:
        src[0] = (src[0] + 1) % graph.num_nodes
        if not csr_violations(graph):
            problems.append("self-test: csr_violations missed a corrupted source column")
        graph._csr = None  # drop the poisoned cache
    return problems


@invariant(
    "graph-delta-merge-rebuild",
    layer="graph/stream",
    falsifies="append_delta's O(E_old + E_new) CSR merge being "
    "bit-identical to a stable full rebuild",
)
def _check_delta_merge() -> List[str]:
    problems: List[str] = []
    for seed in (0, 3, 7):
        rng = np.random.default_rng(seed)
        graph = random_hetero_graph(rng, num_txns=6)
        graph.csr()  # warm, so append_delta takes the merge path
        for _ in range(3):
            graph.append_delta(**random_delta(rng, graph, num_new_txns=2))
        merged = graph.csr()
        rebuilt = HeteroGraph(
            node_type=graph.node_type.copy(),
            edge_src=graph.edge_src.copy(),
            edge_dst=graph.edge_dst.copy(),
            edge_type=graph.edge_type.copy(),
            txn_features=graph.txn_features.copy(),
            labels=graph.labels.copy(),
        ).csr()
        for name, left, right in zip(("indptr", "src", "eid"), merged, rebuilt):
            if not np.array_equal(left, right):
                problems.append(f"seed {seed}: merged {name} != rebuilt {name}")
    return problems


@invariant(
    "cache-coherence",
    layer="graph",
    falsifies="a cached subgraph differing from a fresh sample at the "
    "same graph version, or a stale version being served after mutation",
)
def _check_cache_coherence() -> List[str]:
    from ..graph.cache import SubgraphCache
    from ..graph.sampling import HGSampler, SageSampler

    problems: List[str] = []
    rng = np.random.default_rng(5)
    graph = random_hetero_graph(rng, num_txns=8)
    targets = [0, 3, 5]
    for sampler in (SageSampler(hops=2, fanout=3, seed=4), HGSampler(depth=2, width=3, seed=4)):
        cache = SubgraphCache(capacity=8)
        first = cache.get_or_sample(graph, sampler, targets)
        second = cache.get_or_sample(graph, sampler, targets)
        if second is not first:
            problems.append(f"{sampler.cache_key()}: repeat lookup was not a hit")
        diff = subgraph_equal(first, sampler.sample(graph, targets))
        if diff is not None:
            problems.append(f"{sampler.cache_key()}: cached != fresh sample ({diff})")
        before_version = graph.version
        graph.append_delta(**random_delta(rng, graph, num_new_txns=2))
        after = cache.get_or_sample(graph, sampler, targets)
        if graph.version == before_version:
            problems.append("append_delta failed to bump the version")
        diff = subgraph_equal(after, sampler.sample(graph, targets))
        if diff is not None:
            problems.append(
                f"{sampler.cache_key()}: post-mutation lookup served stale data ({diff})"
            )
        snapshot = cache.stats()
        if snapshot["hits"] + snapshot["misses"] != snapshot["lookups"]:
            problems.append("cache counters do not sum to lookups")
    return problems


@invariant(
    "wal-manifest-agreement",
    layer="stream",
    falsifies="sealed segment CRCs/sizes/record counts and contiguous "
    "sequence ranges agreeing with MANIFEST.json, including a segment "
    "filled exactly to the rotation boundary",
)
def _check_wal_manifest() -> List[str]:
    from ..data.events import encode_event
    from ..stream.wal import _FRAME_HEADER, EventLog, replay_wal

    problems: List[str] = []
    rng = np.random.default_rng(11)
    events = random_events(rng, 9, feature_dim=3)
    frame_size = _FRAME_HEADER.size + len(encode_event(events[0]))
    with tempfile.TemporaryDirectory() as directory:
        # Rotation boundary exactly at 3 frames: appends land on the byte.
        with EventLog(directory, segment_max_bytes=3 * frame_size) as log:
            for event in events:
                log.append(event)
        problems += wal_violations(directory)
        replayed = [event for _, event in replay_wal(directory)]
        if len(replayed) != len(events):
            problems.append(f"replay returned {len(replayed)} of {len(events)} events")
        reopened = EventLog(directory, segment_max_bytes=3 * frame_size)
        if reopened.recovered_tail is not None:
            problems.append(
                "clean boundary-filled WAL misclassified as torn: "
                f"{reopened.recovered_tail.reason}"
            )
        if reopened.record_count != len(events):
            problems.append(
                f"reopen lost records: {reopened.record_count} != {len(events)}"
            )
        reopened.close()
        # Self-test: flip a byte inside a sealed segment.
        sealed = sorted(
            name for name in os.listdir(directory) if name.endswith(".seg")
        )[0]
        path = os.path.join(directory, sealed)
        with open(path, "r+b") as handle:
            handle.seek(frame_size // 2)
            original = handle.read(1)
            handle.seek(frame_size // 2)
            handle.write(bytes([original[0] ^ 0xFF]))
        if not wal_violations(directory):
            problems.append("self-test: wal_violations missed a sealed bit flip")
    return problems


@invariant(
    "replicated-ledger-agreement",
    layer="storage",
    falsifies="owner replicas holding bytes whose CRC32 disagrees with "
    "the put-time ledger",
)
def _check_replicated_ledger() -> List[str]:
    from ..storage.kvstore import InMemoryKVStore
    from ..storage.replicated import ReplicatedConfig, ReplicatedKVStore

    problems: List[str] = []
    replicas = [InMemoryKVStore() for _ in range(3)]
    store = ReplicatedKVStore(
        replicas, ReplicatedConfig(replication_factor=2), seed=0
    )
    rng = np.random.default_rng(13)
    for index in range(16):
        store.put(f"key-{index}", rng.bytes(8 + index))
    problems += ledger_violations(store)
    # Self-test: silently corrupt one owner's copy.
    victim_key = "key-3"
    owner = store.owners(victim_key)[0]
    replicas[owner]._data[victim_key] = b"\x00" + replicas[owner]._data[victim_key][1:]
    found = ledger_violations(store)
    if not any(victim_key in problem for problem in found):
        problems.append("self-test: ledger_violations missed a corrupted replica copy")
    # anti_entropy must repair it back to ledger agreement.
    store.anti_entropy()
    problems += [f"post-repair: {p}" for p in ledger_violations(store)]
    return problems


@invariant(
    "checkpoint-crc-roundtrip",
    layer="reliability",
    falsifies="CheckpointManager round-tripping bit-identical state and "
    "refusing manifests whose CRC32/size no longer match the file",
)
def _check_checkpoint_roundtrip() -> List[str]:
    from ..reliability.checkpoint import CheckpointError, CheckpointManager, TrainingState

    problems: List[str] = []
    rng = np.random.default_rng(17)
    state = TrainingState(
        epoch=3,
        model_state={"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)},
        optimizer_state={"step": 3},
        rng_states={},
        best_auc=0.75,
    )
    with tempfile.TemporaryDirectory() as directory:
        manager = CheckpointManager(directory)
        path = manager.save(state)
        loaded = manager.load(path)
        for name, value in state.model_state.items():
            if not np.array_equal(loaded.model_state[name], value):
                problems.append(f"model tensor {name!r} not bit-identical after load")
        if loaded.epoch != state.epoch or loaded.best_auc != state.best_auc:
            problems.append("scalar state lost in round-trip")
        # Self-test: flip one byte mid-file; load must refuse.
        with open(path, "r+b") as handle:
            handle.seek(os.path.getsize(path) // 2)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        try:
            manager.load(path)
            problems.append("self-test: corrupted checkpoint loaded without error")
        except CheckpointError:
            pass
    return problems


@invariant(
    "deadline-monotonicity",
    layer="serving",
    falsifies="Deadline.remaining decreasing exactly with the clock, "
    "expiry latching, and check() raising iff the budget is spent",
)
def _check_deadline() -> List[str]:
    from ..reliability.faults import ManualClock
    from ..serving.deadline import Deadline, DeadlineExceeded

    problems: List[str] = []
    clock = ManualClock()
    deadline = Deadline(1.0, clock=clock)
    last_remaining = deadline.remaining()
    for step in range(6):
        clock.advance(0.25)
        remaining = deadline.remaining()
        if remaining > last_remaining:
            problems.append(f"step {step}: remaining increased {last_remaining} -> {remaining}")
        # The documented contract: remaining goes negative once blown.
        expected = 1.0 - 0.25 * (step + 1)
        if abs(remaining - expected) > 1e-12:
            problems.append(f"step {step}: remaining {remaining} != {expected}")
        should_expire = clock() >= 1.0
        if deadline.expired() != should_expire:
            problems.append(f"step {step}: expired() != clock-derived truth")
        try:
            deadline.check("audit")
            raised = False
        except DeadlineExceeded:
            raised = True
        if raised != should_expire:
            problems.append(f"step {step}: check() raised={raised}, expired={should_expire}")
        last_remaining = remaining
    return problems


@invariant(
    "span-monotonicity",
    layer="obs",
    falsifies="span end >= start and child spans nesting inside their "
    "parent's interval with correct parent linkage",
)
def _check_spans() -> List[str]:
    from ..obs.trace import Tracer
    from ..reliability.faults import ManualClock

    problems: List[str] = []
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    with tracer.span("request") as outer:
        clock.advance(0.1)
        with tracer.span("sample"):
            clock.advance(0.2)
        with tracer.span("forward"):
            clock.advance(0.3)
        clock.advance(0.05)
    spans = {span.name: span for span in tracer.spans()}
    if set(spans) != {"request", "sample", "forward"}:
        return [f"expected 3 finished spans, got {sorted(spans)}"]
    for name, span in spans.items():
        if span.end_s is None or span.end_s < span.start_s:
            problems.append(f"{name}: end {span.end_s} precedes start {span.start_s}")
    root = spans["request"]
    for name in ("sample", "forward"):
        child = spans[name]
        if child.parent_id != root.span_id:
            problems.append(f"{name}: parent_id does not point at the request span")
        if child.start_s < root.start_s or child.end_s > root.end_s:
            problems.append(f"{name}: interval escapes the parent span")
    if outer.span_id != root.span_id:
        problems.append("context-manager span is not the recorded root")
    return problems


@invariant(
    "stats-accounting",
    layer="serving",
    falsifies="ServiceStats latency summaries reporting values that were "
    "never observed, and cache counters failing to sum to lookups",
)
def _check_stats_accounting() -> List[str]:
    from ..serving.stats import ServiceStats

    problems: List[str] = []
    stats = ServiceStats()
    recorded = [0.01, 0.02, 0.03, 0.04, 0.4]
    for latency in recorded:
        stats.record_response("gnn", latency)
    summary = stats.latency_summary()
    for key, value in summary.items():
        if not any(abs(value - sample) < 1e-12 for sample in recorded):
            problems.append(f"{key}={value} is not an observed latency")
    if summary["p50"] != 0.03:
        problems.append(f"p50 of 5 samples should be the 3rd ({summary['p50']!r})")
    return problems


@invariant(
    "percentile-selection",
    layer="train/obs/storage",
    falsifies="the three quantile call sites (latency_percentiles, "
    "Histogram.percentile, hedge_threshold) disagreeing with nearest-rank "
    "selection or each other, especially at n=1,2",
)
def _check_percentiles() -> List[str]:
    from ..obs.registry import Histogram
    from ..storage.replicated import ReplicaHealth, ReplicatedConfig
    from ..train.metrics import latency_percentiles

    problems: List[str] = []
    cases = {
        1: ([0.25], {"p50": 0.25, "p95": 0.25, "p99": 0.25}),
        2: ([9.0, 1.0], {"p50": 1.0, "p95": 9.0, "p99": 9.0}),
        4: ([0.04, 0.01, 0.03, 0.02], {"p50": 0.02, "p95": 0.04, "p99": 0.04}),
    }
    for count, (samples, expected) in cases.items():
        summary = latency_percentiles(samples)
        if summary != expected:
            problems.append(f"n={count}: latency_percentiles {summary} != {expected}")
        hist = Histogram("audit_hist", "audit", buckets=(1e9,))
        for value in samples:
            hist.observe(value)
        for key, want in expected.items():
            got = hist.percentile(float(key[1:]))
            if got != want:
                problems.append(f"n={count}: Histogram.{key} {got} != {want}")
    health = ReplicaHealth(
        0, lambda: 0.0, ReplicatedConfig(hedge_min_observations=4, hedge_quantile=0.5)
    )
    for value in (4.0, 1.0, 3.0, 2.0):
        health.record_success(value)
    threshold = health.hedge_threshold()
    if threshold != 2.0:
        problems.append(f"hedge_threshold p50 of 4 samples {threshold} != 2.0")
    ordered = sorted(np.random.default_rng(19).uniform(size=100))
    if latency_percentiles(ordered)["p99"] != ordered[98]:
        problems.append("p99 of 100 samples is not the 99th order statistic")
    return problems
