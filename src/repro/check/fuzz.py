"""Differential fuzzer with automatic seed shrinking.

Every fast or durable path in the stack has a slower executable spec:
the vectorized samplers have the scalar reference walk, the CSR delta
merge has the full stable rebuild, micro-batched scoring has the
sequential path, and the WAL has "whatever was durably framed before
the crash". A fuzz *scenario* drives both sides of one such pair on a
seeded random input and returns a divergence description (or ``None``).

Cases are fully determined by ``(scenario, seed, size)``, so a failure
is replayable forever — and shrinkable: :func:`shrink` greedily walks
``size`` down (halving, then decrementing) and then scans for a smaller
``seed``, re-running the scenario at each candidate and keeping only
reductions that still diverge. The result is the minimal repro that CI
prints and a regression test pins.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .gen import random_delta, random_events, random_hetero_graph
from .invariants import csr_violations, subgraph_equal, wal_violations

__all__ = [
    "SCENARIOS",
    "FuzzFailure",
    "FuzzReport",
    "run_case",
    "run_fuzz",
    "shrink",
]

# Sizes cycle small -> large so early trials stay fast and later trials
# reach hub-heavy graphs; a failing case then shrinks back down.
_SIZE_LADDER = (2, 3, 5, 8, 13, 21)


def _case_seed(base_seed: int, trial: int) -> int:
    """Derive a per-trial seed; splitmix64-style so trials decorrelate."""
    mixed = (base_seed * 0x9E3779B97F4A7C15 + trial * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 31
    return mixed & 0x7FFFFFFF


@dataclass
class FuzzFailure:
    """One divergence, as found and as shrunk."""

    scenario: str
    seed: int
    size: int
    detail: str
    shrunk_seed: int
    shrunk_size: int
    shrunk_detail: str
    shrink_steps: int

    def repro_command(self) -> str:
        return (
            f"repro check --case {self.scenario} "
            f"--seed {self.shrunk_seed} --size {self.shrunk_size}"
        )


@dataclass
class FuzzReport:
    trials: int
    per_scenario: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


SCENARIOS: Dict[str, Callable[[int, int], Optional[str]]] = {}


def scenario(name: str):
    def decorate(fn: Callable[[int, int], Optional[str]]) -> Callable[[int, int], Optional[str]]:
        if name in SCENARIOS:
            raise ValueError(f"duplicate fuzz scenario {name!r}")
        SCENARIOS[name] = fn
        return fn

    return decorate


# ----------------------------------------------------------------------
# Scenarios: each returns a divergence string or None
# ----------------------------------------------------------------------
@scenario("sampler-fast-vs-reference")
def _fuzz_sampler(seed: int, size: int) -> Optional[str]:
    """Vectorized sampler walk vs the scalar reference spec."""
    from ..graph.sampling import HGSampler, SageSampler

    rng = np.random.default_rng(seed)
    graph = random_hetero_graph(rng, num_txns=size)
    txns = np.flatnonzero(graph.node_type == 0)
    picks = rng.integers(0, len(txns), size=min(3, len(txns)))
    targets = list(dict.fromkeys(int(txns[p]) for p in picks))  # unique, order kept
    sampler_seed = int(rng.integers(0, 1 << 16))
    pairs = [
        (
            SageSampler(hops=1 + size % 3, fanout=1 + size % 5, seed=sampler_seed),
            SageSampler(hops=1 + size % 3, fanout=1 + size % 5, seed=sampler_seed, reference=True),
        ),
        (
            HGSampler(depth=1 + size % 2, width=1 + size % 4, seed=sampler_seed),
            HGSampler(depth=1 + size % 2, width=1 + size % 4, seed=sampler_seed, reference=True),
        ),
    ]
    for fast, reference in pairs:
        diff = subgraph_equal(fast.sample(graph, targets), reference.sample(graph, targets))
        if diff is not None:
            return f"{fast.cache_key()} targets={targets}: {diff}"
    return None


@scenario("delta-merge-vs-rebuild")
def _fuzz_delta_merge(seed: int, size: int) -> Optional[str]:
    """In-place CSR merge vs stable rebuild, plus probe subgraphs."""
    from ..graph.hetero import HeteroGraph
    from ..graph.sampling import SageSampler

    rng = np.random.default_rng(seed)
    graph = random_hetero_graph(rng, num_txns=size)
    graph.csr()
    versions = [graph.version]
    for _ in range(1 + size % 4):
        graph.append_delta(**random_delta(rng, graph, num_new_txns=1 + size % 3))
        versions.append(graph.version)
    if versions != list(range(versions[0], versions[0] + len(versions))):
        return f"version bumps not exactly once per delta: {versions}"
    problems = csr_violations(graph)
    if problems:
        return f"merged CSR invalid: {problems[0]}"
    rebuilt = HeteroGraph(
        node_type=graph.node_type.copy(),
        edge_src=graph.edge_src.copy(),
        edge_dst=graph.edge_dst.copy(),
        edge_type=graph.edge_type.copy(),
        txn_features=graph.txn_features.copy(),
        labels=graph.labels.copy(),
    )
    for name, left, right in zip(("indptr", "src", "eid"), graph.csr(), rebuilt.csr()):
        if not np.array_equal(left, right):
            return f"merged {name} != rebuilt {name}"
    sampler = SageSampler(hops=2, fanout=3, seed=seed & 0xFFFF)
    target = int(np.flatnonzero(graph.node_type == 0)[0])
    diff = subgraph_equal(sampler.sample(graph, [target]), sampler.sample(rebuilt, [target]))
    if diff is not None:
        return f"probe subgraph on merged vs rebuilt graph: {diff}"
    return None


@scenario("single-vs-batched-scoring")
def _fuzz_scoring(seed: int, size: int) -> Optional[str]:
    """Sequential score() vs micro-batched score_batch() verdicts."""
    from ..models.detector import DetectorConfig, XFraudDetectorPlus
    from ..reliability.faults import ManualClock
    from ..serving.service import ScoringService, ServiceConfig

    rng = np.random.default_rng(seed)
    graph = random_hetero_graph(rng, num_txns=max(3, size), feature_dim=6)
    detector = XFraudDetectorPlus(
        DetectorConfig(
            feature_dim=6,
            hidden_dim=8,
            num_heads=2,
            num_layers=1 + size % 2,
            ffn_hidden_dim=8,
            seed=seed % 97,
        ),
        hops=2,
        fanout=3,
    )
    txns = np.flatnonzero(graph.node_type == 0)
    picks = sorted({int(txns[int(rng.integers(0, len(txns)))]) for _ in range(4)})

    def make_service() -> ScoringService:
        return ScoringService(
            detector,
            graph,
            config=ServiceConfig(static_prior=0.01, batch_size=None),
            clock=ManualClock(),
        )

    sequential = [make_service().score(node) for node in picks]
    batched = make_service().score_batch(picks)
    for node, left, right in zip(picks, sequential, batched):
        if left.rung != right.rung:
            return f"node {node}: rung {left.rung} != {right.rung}"
        if abs(left.score - right.score) > 1e-9:
            return f"node {node}: score {left.score!r} != {right.score!r}"
        if left.verdict != right.verdict:
            return f"node {node}: verdict {left.verdict} != {right.verdict}"
    return None


@scenario("wal-crash-replay")
def _fuzz_wal(seed: int, size: int) -> Optional[str]:
    """Write, crash (truncate / zero-fill / bit-flip the active tail),
    replay, reopen, resume — durable prefix semantics throughout."""
    import os

    from ..data.events import encode_event
    from ..stream.wal import _FRAME_HEADER, EventLog, TornTailError, replay_wal

    rng = np.random.default_rng(seed)
    events = random_events(rng, size, feature_dim=3)
    frame_size = _FRAME_HEADER.size + len(encode_event(events[0]))
    per_segment = 1 + int(rng.integers(0, 4))
    # Bias the rotation boundary onto the exact frame edge half the time.
    segment_max = per_segment * frame_size
    if rng.random() < 0.5:
        segment_max += int(rng.integers(1, frame_size))

    with tempfile.TemporaryDirectory() as directory:
        with EventLog(directory, segment_max_bytes=segment_max) as log:
            for event in events:
                log.append(event)
            active_name = log._active_name
            active_records = log._active_records
            active_size = log._active_size
        sealed_records = len(events) - active_records

        damage = str(rng.choice(["clean", "truncate", "zero-fill", "bit-flip"]))
        expected = len(events)
        should_tear = False
        if damage != "clean" and active_size > 0:
            path = os.path.join(directory, active_name)
            cut = int(rng.integers(0, active_size))  # survives: full frames below cut
            expected = sealed_records + cut // frame_size
            should_tear = True
            if damage == "truncate":
                # A cut on an exact frame boundary is indistinguishable
                # from a clean close — no tear to report.
                should_tear = cut % frame_size != 0
                with open(path, "r+b") as handle:
                    handle.truncate(cut)
            elif damage == "zero-fill":
                with open(path, "r+b") as handle:
                    handle.truncate(cut)
                    handle.seek(cut)
                    handle.write(b"\x00" * int(rng.integers(1, 64)))
            else:  # bit-flip at `cut`, torn from the containing frame on
                with open(path, "r+b") as handle:
                    handle.seek(cut)
                    byte = handle.read(1)
                    handle.seek(cut)
                    handle.write(bytes([byte[0] ^ 0x01]))
        else:
            damage = "clean"

        torn = False
        replayed: List = []
        try:
            for _, event in replay_wal(directory):
                replayed.append(event)
        except TornTailError:
            torn = True
        if torn != should_tear:
            return f"{damage}: replay torn={torn}, expected {should_tear}"
        if len(replayed) != expected:
            return f"{damage}: replay kept {len(replayed)} records, expected {expected}"
        if [e.txn_id for e in replayed] != [e.txn_id for e in events[:expected]]:
            return f"{damage}: replayed records are not the written prefix"

        # Reopen: recovery truncates the tear; appends must resume.
        log = EventLog(directory, segment_max_bytes=segment_max)
        if (log.recovered_tail is not None) != should_tear:
            return f"{damage}: recovered_tail={log.recovered_tail!r}, tear={should_tear}"
        if log.record_count != expected:
            return f"{damage}: reopen record_count {log.record_count} != {expected}"
        resumed = random_events(rng, 2, feature_dim=3, start_txn_id=10_000)
        for event in resumed:
            log.append(event)
        log.close()
        final = [event for _, event in replay_wal(directory)]
        want = [e.txn_id for e in events[:expected]] + [e.txn_id for e in resumed]
        if [e.txn_id for e in final] != want:
            return f"{damage}: post-resume replay diverges from prefix + resumed"
        if wal_violations(directory):
            return f"{damage}: {wal_violations(directory)[0]}"
    return None


# ----------------------------------------------------------------------
# Driver + shrinker
# ----------------------------------------------------------------------
def run_case(name: str, seed: int, size: int) -> Optional[str]:
    """Run one scenario once; returns the divergence string or None."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown fuzz scenario {name!r}")
    return SCENARIOS[name](int(seed), int(size))


def shrink(
    name: str,
    seed: int,
    size: int,
    max_attempts: int = 120,
) -> "tuple[int, int, str, int]":
    """Greedy minimization of a failing ``(seed, size)`` case.

    Phase 1 walks ``size`` down (halving first, then decrementing),
    keeping any candidate that still diverges. Phase 2 scans seeds
    ``0..63`` for a smaller seed that diverges at the minimal size.
    Returns ``(shrunk_seed, shrunk_size, detail, attempts_used)``.
    """
    detail = run_case(name, seed, size)
    if detail is None:
        raise ValueError(f"case {name}({seed}, {size}) does not fail; nothing to shrink")
    attempts = 0

    def still_fails(candidate_seed: int, candidate_size: int) -> Optional[str]:
        nonlocal attempts
        attempts += 1
        return run_case(name, candidate_seed, candidate_size)

    while size > 1 and attempts < max_attempts:
        for candidate in dict.fromkeys((size // 2, size - 1)):
            if candidate < 1:
                continue
            found = still_fails(seed, candidate)
            if found is not None:
                size, detail = candidate, found
                break
        else:
            break  # neither halving nor decrementing reproduces
    for candidate in range(0, min(seed, 64)):
        if attempts >= max_attempts:
            break
        found = still_fails(candidate, size)
        if found is not None:
            seed, detail = candidate, found
            break
    return seed, size, detail, attempts


def run_fuzz(
    trials: int,
    seed: int = 0,
    names: Optional[List[str]] = None,
    stop_on_first: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Round-robin the scenarios over derived ``(seed, size)`` cases.

    On divergence the case is shrunk immediately and recorded; with
    ``stop_on_first`` (the default, what CI wants) the run ends there.
    """
    selected = list(SCENARIOS) if names is None else list(names)
    for name in selected:
        if name not in SCENARIOS:
            raise KeyError(f"unknown fuzz scenario {name!r}")
    report = FuzzReport(trials=trials)
    for trial in range(trials):
        name = selected[trial % len(selected)]
        case_seed = _case_seed(seed, trial)
        size = _SIZE_LADDER[(trial // len(selected)) % len(_SIZE_LADDER)]
        report.per_scenario[name] = report.per_scenario.get(name, 0) + 1
        detail = run_case(name, case_seed, size)
        if detail is None:
            if progress is not None and (trial + 1) % 25 == 0:
                progress(f"{trial + 1}/{trials} cases clean")
            continue
        shrunk_seed, shrunk_size, shrunk_detail, steps = shrink(name, case_seed, size)
        report.failures.append(
            FuzzFailure(
                scenario=name,
                seed=case_seed,
                size=size,
                detail=detail,
                shrunk_seed=shrunk_seed,
                shrunk_size=shrunk_size,
                shrunk_detail=shrunk_detail,
                shrink_steps=steps,
            )
        )
        if stop_on_first:
            break
    return report
