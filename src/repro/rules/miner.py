"""Rule mining for the business unit's rule-based filters.

The paper's pipeline (Appendix B) first runs the transaction stream
through "simple rules … already implemented in the eBay transaction
platforms" that filter out low-risk transactions (raising the fraud
rate from 0.016% to 0.043%), and the business unit uses skope-rules
(rule mining on tabular data, footnote 6) to triage suspicious
transactions. This module implements that substrate: interpretable
conjunction rules over feature thresholds, mined greedily and kept
only when they meet precision/recall floors on a validation split —
the skope-rules selection semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Condition:
    """One literal: ``feature <op> threshold``."""

    feature: int
    op: str  # ">" or "<="
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in (">", "<="):
            raise ValueError("op must be '>' or '<='")

    def apply(self, features: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying the literal."""
        column = features[:, self.feature]
        if self.op == ">":
            return column > self.threshold
        return column <= self.threshold

    def __str__(self) -> str:
        return f"x[{self.feature}] {self.op} {self.threshold:.4f}"


@dataclass(frozen=True)
class Rule:
    """A conjunction of conditions predicting the positive (fraud) class."""

    conditions: Tuple[Condition, ...]

    def apply(self, features: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying every condition."""
        mask = np.ones(len(features), dtype=bool)
        for condition in self.conditions:
            mask &= condition.apply(features)
        return mask

    def precision_recall(self, features: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
        """(precision, recall) of the rule for the fraud class."""
        mask = self.apply(features)
        fired = int(mask.sum())
        positives = int((labels == 1).sum())
        if fired == 0:
            return 0.0, 0.0
        true_positive = int((mask & (labels == 1)).sum())
        precision = true_positive / fired
        recall = true_positive / max(positives, 1)
        return precision, recall

    def __str__(self) -> str:
        return " AND ".join(str(c) for c in self.conditions)


@dataclass
class MinerConfig:
    """Rule-induction knobs (skope-rules-like defaults)."""

    max_terms: int = 2
    max_rules: int = 10
    candidate_quantiles: Tuple[float, ...] = (0.5, 0.75, 0.9, 0.95)
    min_precision: float = 0.3
    min_recall: float = 0.02
    max_features: int = 32
    validation_fraction: float = 0.3
    seed: int = 0


@dataclass
class RuleSet:
    """Mined rules plus their validation scores."""

    rules: List[Rule] = field(default_factory=list)
    scores: List[Tuple[float, float]] = field(default_factory=list)

    def apply(self, features: np.ndarray) -> np.ndarray:
        """Disjunction: a row is flagged if any rule fires."""
        mask = np.zeros(len(features), dtype=bool)
        for rule in self.rules:
            mask |= rule.apply(features)
        return mask

    def risk_scores(self, features: np.ndarray) -> np.ndarray:
        """Per-row risk in [0, 1]: noisy-OR of the fired rules' precisions.

        A row no rule fires on scores 0.0; a row firing rules with
        validation precisions ``p_j`` scores ``1 - prod(1 - p_j)`` —
        each independent rule hit multiplies down the chance the
        transaction is benign. This is the middle rung of the serving
        degradation ladder: interpretable, feature-only, and computable
        from the raw request alone when the GNN path is unavailable.
        """
        features = np.asarray(features, dtype=np.float64)
        benign = np.ones(len(features), dtype=np.float64)
        for rule, (precision, _) in zip(self.rules, self.scores):
            fired = rule.apply(features)
            benign[fired] *= 1.0 - precision
        return 1.0 - benign

    def __len__(self) -> int:
        return len(self.rules)

    def describe(self) -> str:
        """One line per rule with its validation precision/recall."""
        lines = []
        for rule, (precision, recall) in zip(self.rules, self.scores):
            lines.append(f"[p={precision:.2f} r={recall:.2f}] {rule}")
        return "\n".join(lines)


class RuleMiner:
    """Greedy interpretable rule induction over feature thresholds."""

    def __init__(self, config: Optional[MinerConfig] = None) -> None:
        self.config = config or MinerConfig()

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Sequence[int]) -> RuleSet:
        """Mine rules for the fraud class.

        Candidate literals come from per-feature quantile thresholds of
        the fraud rows; rules grow greedily (best precision at each
        step, ties to higher recall) and are kept only if they clear
        the precision/recall floors on a held-out validation split.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2 or len(features) != len(labels):
            raise ValueError("features must be (n, d) aligned with labels")
        if (labels == 1).sum() == 0:
            return RuleSet()

        rng = np.random.default_rng(self.config.seed)
        order = rng.permutation(len(labels))
        cut = int(len(order) * (1 - self.config.validation_fraction))
        train_idx, valid_idx = order[:cut], order[cut:]
        x_train, y_train = features[train_idx], labels[train_idx]
        x_valid, y_valid = features[valid_idx], labels[valid_idx]
        if (y_train == 1).sum() == 0 or (y_valid == 1).sum() == 0:
            # Not enough fraud to split; validate on the training data.
            x_train = x_valid = features
            y_train = y_valid = labels

        literals = self._candidate_literals(x_train, y_train)
        rule_set = RuleSet()
        covered = np.zeros(len(y_train), dtype=bool)
        for _ in range(self.config.max_rules):
            rule = self._grow_rule(x_train, y_train, literals, covered)
            if rule is None:
                break
            precision, recall = rule.precision_recall(x_valid, y_valid)
            if precision >= self.config.min_precision and recall >= self.config.min_recall:
                rule_set.rules.append(rule)
                rule_set.scores.append((precision, recall))
            # Remove the covered fraud so later rules target the rest.
            newly = rule.apply(x_train) & (y_train == 1)
            if not newly.any():
                break
            covered |= newly
        return rule_set

    # ------------------------------------------------------------------
    def _candidate_literals(self, features: np.ndarray, labels: np.ndarray) -> List[Condition]:
        """Quantile thresholds on the most label-separating features."""
        fraud = features[labels == 1]
        benign = features[labels == 0]
        if len(benign) == 0 or len(fraud) == 0:
            return []
        separation = np.abs(fraud.mean(axis=0) - benign.mean(axis=0)) / (
            features.std(axis=0) + 1e-9
        )
        top = np.argsort(-separation)[: self.config.max_features]
        literals: List[Condition] = []
        for feature in top:
            for quantile in self.config.candidate_quantiles:
                threshold = float(np.quantile(features[:, feature], quantile))
                literals.append(Condition(int(feature), ">", threshold))
                literals.append(Condition(int(feature), "<=", threshold))
        return literals

    def _grow_rule(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        literals: List[Condition],
        covered: np.ndarray,
    ) -> Optional[Rule]:
        """Greedy conjunction growth targeting uncovered fraud."""
        target = (labels == 1) & ~covered
        if not target.any():
            return None
        active = np.ones(len(labels), dtype=bool)
        chosen: List[Condition] = []
        for _ in range(self.config.max_terms):
            best, best_score = None, (-1.0, -1.0)
            for literal in literals:
                if any(literal.feature == c.feature and literal.op == c.op for c in chosen):
                    continue
                mask = active & literal.apply(features)
                fired = int(mask.sum())
                if fired == 0:
                    continue
                hit = int((mask & target).sum())
                if hit == 0:
                    continue
                precision = hit / fired
                recall = hit / int(target.sum())
                if (precision, recall) > best_score:
                    best_score = (precision, recall)
                    best = literal
            if best is None:
                break
            chosen.append(best)
            active &= best.apply(features)
            if best_score[0] >= 0.95:
                break
        if not chosen:
            return None
        return Rule(tuple(chosen))
