"""repro.rules — skope-rules-like mining and the Appendix-B prefilter."""

from .miner import Condition, MinerConfig, Rule, RuleMiner, RuleSet
from .prefilter import (
    PipelineResult,
    PipelineStage,
    appendix_b_pipeline,
    rule_prefilter,
)

__all__ = [
    "Condition",
    "Rule",
    "RuleSet",
    "RuleMiner",
    "MinerConfig",
    "rule_prefilter",
    "appendix_b_pipeline",
    "PipelineResult",
    "PipelineStage",
]
