"""The Appendix-B label pipeline: rules → sampling → training labels.

The paper's eBay-xlarge labels pass through:

1. the **original data stream** (fraud rate 0.016%),
2. **rule filtering** — platform rules drop obviously low-risk
   transactions (fraud rate 0.043%),
3. **label sampling** — all fraud plus a benign fraction
   (fraud rate 4.33%).

:func:`appendix_b_pipeline` reproduces the three stages on a synthetic
log, with the rule stage driven by a mined :class:`RuleSet` (keep a
transaction when any risk rule fires or when its risk percentile
clears a floor — platform rules never drop *all* benign traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..data.records import TransactionLog
from .miner import MinerConfig, RuleMiner, RuleSet


@dataclass
class PipelineStage:
    """One stage of the Appendix-B pipeline (name, size, fraud rate)."""

    name: str
    num_records: int
    fraud_rate: float


@dataclass
class PipelineResult:
    """Final sampled log plus per-stage statistics and mined rules."""

    log: TransactionLog
    stages: List[PipelineStage]
    rules: RuleSet

    def describe(self) -> str:
        """Per-stage record counts and fraud rates, one line each."""
        lines = []
        for stage in self.stages:
            lines.append(
                f"{stage.name:28s} {stage.num_records:8,d} records, "
                f"fraud rate {100 * stage.fraud_rate:.3f}%"
            )
        return "\n".join(lines)


def rule_prefilter(
    log: TransactionLog,
    rules: RuleSet,
    keep_benign_floor: float = 0.25,
    seed: int = 0,
) -> TransactionLog:
    """Drop low-risk transactions the way platform rules would.

    Keeps every transaction any rule fires on, every fraud (rules at
    eBay flag *for review*, they do not clear confirmed fraud), and a
    ``keep_benign_floor`` fraction of the remainder (rules are
    deliberately conservative).
    """
    if not 0.0 <= keep_benign_floor <= 1.0:
        raise ValueError("keep_benign_floor must be within [0, 1]")
    rng = np.random.default_rng(seed)
    features = log.feature_matrix()
    flagged = rules.apply(features) if len(rules) else np.zeros(len(log), dtype=bool)
    kept = TransactionLog()
    for i, record in enumerate(log):
        if record.label == 1 or flagged[i] or rng.random() < keep_benign_floor:
            kept.append(record)
    return kept


def appendix_b_pipeline(
    raw_log: TransactionLog,
    miner_config: Optional[MinerConfig] = None,
    keep_benign_floor: float = 0.25,
    benign_sample: float = 0.1,
    seed: int = 0,
) -> PipelineResult:
    """Run the full three-stage label pipeline on a raw log."""
    stages = [PipelineStage("original stream", len(raw_log), raw_log.fraud_rate())]

    miner = RuleMiner(miner_config or MinerConfig(seed=seed))
    rules = miner.fit(raw_log.feature_matrix(), raw_log.labels())
    filtered = rule_prefilter(raw_log, rules, keep_benign_floor=keep_benign_floor, seed=seed)
    stages.append(PipelineStage("after rule filter", len(filtered), filtered.fraud_rate()))

    rng = np.random.default_rng(seed + 1)
    sampled = TransactionLog()
    for record in filtered:
        if record.label == 1 or rng.random() < benign_sample:
            sampled.append(record)
    stages.append(PipelineStage("after label sampling", len(sampled), sampled.fraud_rate()))

    return PipelineResult(log=sampled, stages=stages, rules=rules)
