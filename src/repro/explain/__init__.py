"""repro.explain — the xFraud explainer stack.

Modified GNNExplainer, centrality edge weights, simulated human
annotations with IAA, the top-k hit-rate metric, the learnable hybrid
explainer, and community visualisation / case-study analysis.
"""

from .annotations import (
    AGGREGATIONS,
    AnnotatorPanel,
    cohen_kappa,
    edge_importance_from_nodes,
    ground_truth_importance,
    human_edge_importance,
    mean_pairwise_kappa,
    random_panel,
)
from .centrality import (
    CENTRALITY_MEASURES,
    all_centrality_edge_weights,
    centrality_edge_weights,
    random_edge_weights,
)
from .feature_importance import FeatureReport, feature_report, render_feature_report
from .gnn_explainer import Explanation, ExplainerConfig, GNNExplainer
from .hitrate import (
    TOPK_GRID,
    hit_rate_profile,
    mean_hit_rate_over_communities,
    normalize_weights,
    topk_hit_rate,
)
from .hybrid import (
    CommunityWeights,
    HybridExplainer,
    evaluate_methods,
    fit_grid,
    fit_polynomial_degree,
    fit_ridge,
    ridge_regression,
)
from .visualize import (
    CaseStudy,
    classify_communities,
    confusion_by_complexity,
    render_dot,
    render_text,
)

__all__ = [
    "GNNExplainer",
    "ExplainerConfig",
    "Explanation",
    "FeatureReport",
    "feature_report",
    "render_feature_report",
    "CENTRALITY_MEASURES",
    "centrality_edge_weights",
    "all_centrality_edge_weights",
    "random_edge_weights",
    "AnnotatorPanel",
    "AGGREGATIONS",
    "ground_truth_importance",
    "human_edge_importance",
    "edge_importance_from_nodes",
    "cohen_kappa",
    "mean_pairwise_kappa",
    "random_panel",
    "topk_hit_rate",
    "hit_rate_profile",
    "mean_hit_rate_over_communities",
    "normalize_weights",
    "TOPK_GRID",
    "CommunityWeights",
    "HybridExplainer",
    "fit_grid",
    "fit_ridge",
    "fit_polynomial_degree",
    "ridge_regression",
    "evaluate_methods",
    "CaseStudy",
    "classify_communities",
    "confusion_by_complexity",
    "render_text",
    "render_dot",
]
