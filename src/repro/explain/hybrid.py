"""The hybrid explainer: ``A·w(c) + B·w(e)`` (Sec. 3.4.2 / Appendix F).

The paper observes a trade-off: GNNExplainer weights (task-aware,
local) and edge-centrality weights (task-agnostic, global) each win on
different communities. The hybrid explainer learns two coefficients —
centrality coefficient ``A`` and explainer coefficient ``B`` — on
training communities, by any of the paper's three optimisers:

1. **grid search** over ``A ∈ {0.00, 0.01, …, 1.00}``, ``B = 1 − A``,
   maximising the mean top-k hit rate on the training communities;
2. **ridge regression** of the human edge-importance score on the
   feature pair ``(w(c), w(e))``, sweeping the regularisation ``α``;
3. **polynomial fit** searching the feature degree (the paper finds
   degree 1, i.e. the linear combination, is best).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .hitrate import EdgeWeights, mean_hit_rate_over_communities, normalize_weights


@dataclass
class CommunityWeights:
    """All weight sources for one community, on a shared edge set."""

    human: EdgeWeights
    centrality: EdgeWeights
    explainer: EdgeWeights

    def combined(self, coeff_centrality: float, coeff_explainer: float) -> EdgeWeights:
        """The hybrid weights ``A*w(c) + B*w(e)``."""
        centrality = normalize_weights(self.centrality)
        explainer = normalize_weights(self.explainer)
        edges = set(centrality) | set(explainer)
        return {
            edge: coeff_centrality * centrality.get(edge, 0.0)
            + coeff_explainer * explainer.get(edge, 0.0)
            for edge in edges
        }


@dataclass
class HybridExplainer:
    """Learned coefficients plus how they were obtained."""

    coeff_centrality: float
    coeff_explainer: float
    method: str

    def weights(self, community: CommunityWeights) -> EdgeWeights:
        """Hybrid edge weights for one community."""
        return community.combined(self.coeff_centrality, self.coeff_explainer)

    def hit_rate(
        self, communities: Sequence[CommunityWeights], k: int, draws: int = 100, seed: int = 0
    ) -> float:
        """Mean top-k hit rate of the hybrid over communities."""
        pairs = [(c.human, self.weights(c)) for c in communities]
        return mean_hit_rate_over_communities(pairs, k, draws=draws, seed=seed)


def fit_grid(
    communities: Sequence[CommunityWeights],
    k: int = 5,
    grid_steps: int = 101,
    draws: int = 50,
    seed: int = 0,
) -> HybridExplainer:
    """Grid search A in [0, 1], B = 1 - A, maximising mean hit rate."""
    if not communities:
        raise ValueError("need at least one training community")
    best_a, best_rate = 0.0, -1.0
    for a in np.linspace(0.0, 1.0, grid_steps):
        explainer = HybridExplainer(float(a), float(1.0 - a), "grid")
        rate = explainer.hit_rate(communities, k, draws=draws, seed=seed)
        if rate > best_rate:
            best_rate, best_a = rate, float(a)
    return HybridExplainer(best_a, 1.0 - best_a, "grid")


def _design_matrix(
    communities: Sequence[CommunityWeights],
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack (w(c), w(e)) features and human targets over all edges."""
    rows: List[Tuple[float, float]] = []
    targets: List[float] = []
    for community in communities:
        centrality = normalize_weights(community.centrality)
        explainer = normalize_weights(community.explainer)
        for edge, human_score in community.human.items():
            rows.append((centrality.get(edge, 0.0), explainer.get(edge, 0.0)))
            targets.append(human_score)
    return np.array(rows), np.array(targets)


def ridge_regression(features: np.ndarray, targets: np.ndarray, alpha: float) -> np.ndarray:
    """Closed-form ridge: ``(X'X + αI)^-1 X'y`` (no intercept penalty).

    An intercept column is appended and left unregularised; only the
    two slope coefficients are returned to the caller's A and B.
    """
    n = len(features)
    design = np.hstack([features, np.ones((n, 1))])
    penalty = alpha * np.eye(design.shape[1])
    penalty[-1, -1] = 0.0
    solution = np.linalg.solve(design.T @ design + penalty, design.T @ targets)
    return solution


def fit_ridge(
    communities: Sequence[CommunityWeights],
    alphas: Optional[Sequence[float]] = None,
    k: int = 5,
    draws: int = 50,
    seed: int = 0,
) -> HybridExplainer:
    """Ridge fit of human scores, α tuned by training hit rate.

    Mirrors Appendix F (3): sweep α over {0.01, …, 0.99}, keep the
    coefficients whose hybrid weights score the best mean hit rate on
    the training communities.
    """
    if not communities:
        raise ValueError("need at least one training community")
    if alphas is None:
        alphas = np.arange(0.01, 1.0, 0.07)
    features, targets = _design_matrix(communities)
    best: Optional[HybridExplainer] = None
    best_rate = -1.0
    for alpha in alphas:
        coefficients = ridge_regression(features, targets, float(alpha))
        candidate = HybridExplainer(float(coefficients[0]), float(coefficients[1]), "ridge")
        rate = candidate.hit_rate(communities, k, draws=draws, seed=seed)
        if rate > best_rate:
            best_rate, best = rate, candidate
    return best


def fit_polynomial_degree(
    communities: Sequence[CommunityWeights],
    degrees: Sequence[int] = range(1, 10),
    alpha: float = 0.5,
) -> Tuple[int, float]:
    """Appendix F (1): search the best polynomial feature degree.

    Fits ridge models on polynomial expansions of (w(c), w(e)) and
    scores them by mean squared error against human scores under
    leave-last-community-out validation. The paper reports degree 1
    wins; this reproduces that check.
    """
    if len(communities) < 2:
        raise ValueError("need at least two communities for validation")
    train, held_out = list(communities[:-1]), [communities[-1]]
    x_train, y_train = _design_matrix(train)
    x_test, y_test = _design_matrix(held_out)

    def expand(x: np.ndarray, degree: int) -> np.ndarray:
        columns = [x**d for d in range(1, degree + 1)]
        return np.hstack(columns)

    errors: Dict[int, float] = {}
    for degree in degrees:
        coefficients = ridge_regression(expand(x_train, degree), y_train, alpha)
        design = np.hstack([expand(x_test, degree), np.ones((len(x_test), 1))])
        predictions = design @ coefficients
        errors[degree] = float(np.mean((predictions - y_test) ** 2))
    # Parsimony rule: the smallest degree within 5% of the best error —
    # higher degrees that only win by validation noise do not justify
    # the complexity (the paper likewise settles on degree 1).
    best_error = min(errors.values())
    best_degree = min(d for d, e in errors.items() if e <= best_error * 1.05 + 1e-12)
    return best_degree, errors[best_degree]


def evaluate_methods(
    train: Sequence[CommunityWeights],
    test: Sequence[CommunityWeights],
    ks: Sequence[int] = (5, 10, 15, 20, 25),
    draws: int = 50,
    seed: int = 0,
) -> Dict[str, Dict[int, float]]:
    """Table-4 style comparison on held-out communities.

    Returns hit-rate profiles for pure centrality, pure GNNExplainer,
    hybrid (ridge), and hybrid (grid).
    """
    results: Dict[str, Dict[int, float]] = {
        "centrality": {},
        "gnn_explainer": {},
        "hybrid_ridge": {},
        "hybrid_grid": {},
    }
    pure_centrality = HybridExplainer(1.0, 0.0, "centrality")
    pure_explainer = HybridExplainer(0.0, 1.0, "gnn_explainer")
    for k in ks:
        ridge = fit_ridge(train, k=k, draws=draws, seed=seed)
        grid = fit_grid(train, k=k, draws=draws, seed=seed)
        results["centrality"][k] = pure_centrality.hit_rate(test, k, draws=draws, seed=seed)
        results["gnn_explainer"][k] = pure_explainer.hit_rate(test, k, draws=draws, seed=seed)
        results["hybrid_ridge"][k] = ridge.hit_rate(test, k, draws=draws, seed=seed)
        results["hybrid_grid"][k] = grid.hit_rate(test, k, draws=draws, seed=seed)
    return results
