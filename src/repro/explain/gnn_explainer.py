"""Modified GNNExplainer (Sec. 3.4 / Appendix D).

The xFraud explainer extends the vanilla GNNExplainer (Ying et al.) in
two ways the paper describes:

1. it learns a **node feature mask for every node** of the subgraph
   (``|V| × F``), not just the node-to-explain, enabling node-level
   feature explanations;
2. the loss combines the detector loss (eq. 11) with edge-mask size and
   entropy (eq. 12) and node-feature-mask size and entropy (eq. 13).

The trained detector is frozen in evaluation mode; only the mask
parameters are optimised. Masks are sigmoid-squashed random
initialisations, trained with Adam (paper: epochs=100, lr=0.01).

Footnote 4: the explainer assigns two weights to the directed edges of
a node pair; human annotations are undirected, so the undirected weight
of a pair is the **larger** of the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..graph.hetero import HeteroGraph
from ..nn import Tensor
from ..nn import functional as F


@dataclass
class ExplainerConfig:
    """Hyperparameters of Appendix D."""

    epochs: int = 100
    learning_rate: float = 0.01
    beta_edge_size: float = 0.005
    beta_edge_entropy: float = 1.0
    beta_node_feature_size: float = 0.1
    beta_node_feature_entropy: float = 0.1
    use_true_label: bool = False
    seed: int = 0


@dataclass
class Explanation:
    """Output of one explainer run on a node-to-explain."""

    node_index: int
    edge_mask: np.ndarray
    node_feature_mask: np.ndarray
    predicted_label: int
    loss_history: List[float] = field(default_factory=list)

    def undirected_edge_weights(self, graph: HeteroGraph) -> Dict[Tuple[int, int], float]:
        """Per-pair weights, taking max over directions (footnote 4)."""
        weights: Dict[Tuple[int, int], float] = {}
        for edge_id, (src, dst) in enumerate(zip(graph.edge_src, graph.edge_dst)):
            pair = (min(int(src), int(dst)), max(int(src), int(dst)))
            weight = float(self.edge_mask[edge_id])
            if pair not in weights or weight > weights[pair]:
                weights[pair] = weight
        return weights

    def top_features(self, node: int, k: int = 5) -> np.ndarray:
        """Indices of the k highest-weighted feature dims of ``node``."""
        return np.argsort(-self.node_feature_mask[node])[:k]


class GNNExplainer:
    """Mask-learning explainer around a trained detector."""

    def __init__(self, detector, config: Optional[ExplainerConfig] = None) -> None:
        self.detector = detector
        self.config = config or ExplainerConfig()

    def explain(self, graph: HeteroGraph, node_index: int) -> Explanation:
        """Learn edge and node-feature masks for one transaction node.

        ``graph`` should be the community / computation subgraph of the
        node (the explainer trains a mask entry per edge of it).
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        detector = self.detector
        was_training = detector.training
        detector.eval()

        try:
            # Target class: the detector's own prediction (mutual
            # information with the model), or the true label on demand.
            if config.use_true_label:
                target = int(graph.labels[node_index])
                if target < 0:
                    raise ValueError("node has no label; use predicted label instead")
            else:
                with nn.no_grad():
                    base_logits = detector(graph, [node_index])
                target = int(np.argmax(base_logits.data[0]))

            edge_logits = nn.Parameter(rng.normal(0.0, 0.1, size=graph.num_edges))
            feature_logits = nn.Parameter(
                rng.normal(0.0, 0.1, size=(graph.num_nodes, graph.feature_dim))
            )
            optimizer = nn.Adam([edge_logits, feature_logits], lr=config.learning_rate)

            history: List[float] = []
            for _ in range(config.epochs):
                optimizer.zero_grad()
                loss = self._loss(graph, node_index, target, edge_logits, feature_logits)
                loss.backward()
                optimizer.step()
                history.append(loss.item())

            edge_mask = 1.0 / (1.0 + np.exp(-edge_logits.data))
            feature_mask = 1.0 / (1.0 + np.exp(-feature_logits.data))
        finally:
            detector.train(was_training)

        return Explanation(
            node_index=int(node_index),
            edge_mask=edge_mask,
            node_feature_mask=feature_mask,
            predicted_label=target,
            loss_history=history,
        )

    # ------------------------------------------------------------------
    def _loss(
        self,
        graph: HeteroGraph,
        node_index: int,
        target: int,
        edge_logits: Tensor,
        feature_logits: Tensor,
    ) -> Tensor:
        config = self.config
        edge_mask = edge_logits.sigmoid()
        feature_mask = feature_logits.sigmoid()

        logits = self.detector(
            graph, [node_index], edge_mask=edge_mask, feature_mask=feature_mask
        )
        # eq. 11 for the single node-to-explain.
        detector_loss = F.cross_entropy(logits, np.array([target]))

        # eq. 12: edge-mask size + entropy.
        num_edges = max(graph.num_edges, 1)
        edge_size = edge_mask.sum() * (config.beta_edge_size)
        edge_entropy = F.bernoulli_entropy(edge_mask).sum() * (
            config.beta_edge_entropy / num_edges
        )

        # eq. 13: node-feature-mask size + entropy (normalised by |V|).
        num_entries = max(feature_mask.size, 1)
        feature_size = feature_mask.sum() * (config.beta_node_feature_size / num_entries)
        feature_entropy = F.bernoulli_entropy(feature_mask).sum() * (
            config.beta_node_feature_entropy / num_entries
        )

        return detector_loss + edge_size + edge_entropy + feature_size + feature_entropy
