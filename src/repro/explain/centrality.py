"""Centrality measures as task-agnostic edge weights (Table 1, App. F).

Appendix F computes edge weights from centrality in two ways:

1. **edge centralities** evaluated directly on the community graph —
   edge betweenness and edge load;
2. **node centralities evaluated on the line graph** L(G), whose nodes
   are G's edges — betweenness, closeness, degree, eigenvector,
   harmonic, load, subgraph, communicability betweenness, current-flow
   betweenness/closeness and its approximation.

All thirteen measures of Table 1 are exposed through
:func:`centrality_edge_weights`; every result maps undirected node
pairs ``(u, v), u < v`` to a weight.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import networkx as nx
import numpy as np

from ..graph.hetero import HeteroGraph

EdgeWeights = Dict[Tuple[int, int], float]

#: Measure names exactly as Table 1 lists them.
CENTRALITY_MEASURES: Tuple[str, ...] = (
    "edge_betweenness",
    "edge_load",
    "approximate_current_flow_betweenness",
    "betweenness",
    "closeness",
    "communicability_betweenness",
    "current_flow_betweenness",
    "current_flow_closeness",
    "degree",
    "eigenvector",
    "harmonic",
    "load",
    "subgraph",
)


def _undirected_nx(graph: HeteroGraph) -> nx.Graph:
    undirected = nx.Graph()
    undirected.add_nodes_from(range(graph.num_nodes))
    for src, dst in zip(graph.edge_src, graph.edge_dst):
        undirected.add_edge(int(src), int(dst))
    return undirected


def _normalize_pair(u, v) -> Tuple[int, int]:
    a, b = int(u), int(v)
    return (a, b) if a <= b else (b, a)


def _per_component(graph: nx.Graph, fn: Callable[[nx.Graph], Dict]) -> Dict:
    """Run a centrality on each connected component and merge.

    Current-flow (and related) centralities require connected graphs;
    communities are connected by construction but library users may
    pass arbitrary graphs.
    """
    result: Dict = {}
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        if sub.number_of_nodes() < 2:
            for node in sub.nodes:
                result[node] = 0.0
            continue
        result.update(fn(sub))
    return result


def _line_graph_node_centrality(graph: nx.Graph, measure: str) -> EdgeWeights:
    """Node centrality computed on the line graph → edge weight in G."""
    line = nx.line_graph(graph)
    if line.number_of_nodes() == 0:
        return {}

    def dispatch(component: nx.Graph) -> Dict:
        if measure == "betweenness":
            return nx.betweenness_centrality(component)
        if measure == "closeness":
            return nx.closeness_centrality(component)
        if measure == "degree":
            return nx.degree_centrality(component)
        if measure == "eigenvector":
            return nx.eigenvector_centrality_numpy(component)
        if measure == "harmonic":
            return nx.harmonic_centrality(component)
        if measure == "load":
            return nx.load_centrality(component)
        if measure == "subgraph":
            return nx.subgraph_centrality(component)
        if measure == "communicability_betweenness":
            return nx.communicability_betweenness_centrality(component)
        if measure == "current_flow_betweenness":
            return nx.current_flow_betweenness_centrality(component)
        if measure == "approximate_current_flow_betweenness":
            return nx.approximate_current_flow_betweenness_centrality(component)
        if measure == "current_flow_closeness":
            return nx.current_flow_closeness_centrality(component)
        raise KeyError(f"unknown line-graph measure {measure!r}")

    scores = _per_component(line, dispatch)
    weights: EdgeWeights = {}
    for edge_node, score in scores.items():
        weights[_normalize_pair(*edge_node)] = float(score)
    return weights


def centrality_edge_weights(graph: HeteroGraph, measure: str) -> EdgeWeights:
    """Edge weights for one of the 13 Table-1 centrality measures."""
    if measure not in CENTRALITY_MEASURES:
        raise KeyError(f"unknown measure {measure!r}; choose from {CENTRALITY_MEASURES}")
    undirected = _undirected_nx(graph)
    if measure == "edge_betweenness":
        raw = nx.edge_betweenness_centrality(undirected)
        return {_normalize_pair(*edge): float(score) for edge, score in raw.items()}
    if measure == "edge_load":
        raw = nx.edge_load_centrality(undirected)
        return {_normalize_pair(*edge): float(score) for edge, score in raw.items()}
    return _line_graph_node_centrality(undirected, measure)


def all_centrality_edge_weights(graph: HeteroGraph) -> Dict[str, EdgeWeights]:
    """All 13 measures for one community (a full Table-1 column set)."""
    return {measure: centrality_edge_weights(graph, measure) for measure in CENTRALITY_MEASURES}


def random_edge_weights(graph: HeteroGraph, seed: int = 0) -> EdgeWeights:
    """The random-weights baseline (Table 1 row 15 / Table 8)."""
    rng = np.random.default_rng(seed)
    pairs: List[Tuple[int, int]] = sorted(
        {_normalize_pair(s, d) for s, d in zip(graph.edge_src, graph.edge_dst)}
    )
    return {pair: float(rng.random()) for pair in pairs}
