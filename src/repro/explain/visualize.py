"""Community visualisation and case-study analysis (Sec. 5.2, App. G).

The paper visualises explained communities as weighted undirected
graphs (thicker edge = stronger connection) and analyses TP/FP/FN/TN
cases against community complexity (Table 13: simple = one buyer,
complex = more). This module renders communities as text and Graphviz
DOT, and computes the case-study confusion breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..graph.community import Community
from ..graph.hetero import NODE_TYPES

EdgeWeights = Dict[Tuple[int, int], float]

_TYPE_GLYPH = {"txn": "T", "pmt": "P", "email": "E", "addr": "A", "buyer": "B"}


def render_text(
    community: Community,
    edge_weights: Optional[EdgeWeights] = None,
    top_edges: int = 10,
) -> str:
    """Human-readable summary of a community and its strongest edges."""
    graph = community.graph
    lines = [
        f"community(seed={community.seed_original}, label={community.label}, "
        f"nodes={graph.num_nodes}, edges={len(community.undirected_edges())}, "
        f"buyers={community.num_buyers}, "
        f"{'simple' if community.is_simple else 'complex'})"
    ]
    counts = graph.node_type_counts()
    lines.append("  types: " + ", ".join(f"{t}={counts[t]}" for t in NODE_TYPES))
    if edge_weights:
        ranked = sorted(edge_weights.items(), key=lambda item: -item[1])[:top_edges]
        for (u, v), weight in ranked:
            glyph_u = _TYPE_GLYPH[NODE_TYPES[graph.node_type[u]]]
            glyph_v = _TYPE_GLYPH[NODE_TYPES[graph.node_type[v]]]
            label_u = f"{glyph_u}{u}" + ("*" if u == community.seed_local else "")
            label_v = f"{glyph_v}{v}" + ("*" if v == community.seed_local else "")
            lines.append(f"  {label_u:>6} -- {label_v:<6} w={weight:.3f}")
    return "\n".join(lines)


def render_dot(community: Community, edge_weights: Optional[EdgeWeights] = None) -> str:
    """Graphviz DOT export; edge penwidth encodes the weight."""
    graph = community.graph
    lines = ["graph community {"]
    for node in range(graph.num_nodes):
        node_type = NODE_TYPES[graph.node_type[node]]
        attributes = [f'label="{_TYPE_GLYPH[node_type]}{node}"']
        if node == community.seed_local:
            attributes.append("shape=doublecircle")
        if graph.labels[node] == 1:
            attributes.append('color="red"')
        elif graph.labels[node] == 0:
            attributes.append('color="green"')
        lines.append(f"  n{node} [{', '.join(attributes)}];")
    weights = edge_weights or {}
    if weights:
        values = np.array(list(weights.values()))
        low, high = values.min(), values.max()
        span = (high - low) or 1.0
    for u, v in community.undirected_edges():
        weight = weights.get((u, v))
        if weight is None:
            lines.append(f"  n{u} -- n{v};")
        else:
            penwidth = 1.0 + 4.0 * (weight - low) / span
            lines.append(f'  n{u} -- n{v} [penwidth={penwidth:.2f}, label="{weight:.2f}"];')
    lines.append("}")
    return "\n".join(lines)


@dataclass
class CaseStudy:
    """One community's detection outcome."""

    community: Community
    score: float
    predicted: int

    @property
    def condition(self) -> str:
        truth, predicted = self.community.label, self.predicted
        if truth == 1 and predicted == 1:
            return "TP"
        if truth == 0 and predicted == 0:
            return "TN"
        if truth == 0 and predicted == 1:
            return "FP"
        return "FN"


def classify_communities(
    communities: Sequence[Community],
    scores: Sequence[float],
    threshold: float = 0.5,
) -> Tuple[CaseStudy, ...]:
    """Case-study records from detector scores on community seeds."""
    if len(communities) != len(scores):
        raise ValueError("one score per community required")
    return tuple(
        CaseStudy(community=c, score=float(s), predicted=int(s >= threshold))
        for c, s in zip(communities, scores)
    )


def confusion_by_complexity(cases: Sequence[CaseStudy]) -> Dict[str, Dict[str, int]]:
    """Table 13: TP/TN/FP/FN counts split by simple vs complex."""
    table = {
        "simple": {"TP": 0, "TN": 0, "FP": 0, "FN": 0},
        "complex": {"TP": 0, "TN": 0, "FP": 0, "FN": 0},
    }
    for case in cases:
        bucket = "simple" if case.community.is_simple else "complex"
        table[bucket][case.condition] += 1
    return table
