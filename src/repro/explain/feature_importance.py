"""Node-feature-importance reporting (Sec. 5 / Appendix D).

The modified GNNExplainer produces a per-node feature mask for every
node of the community — "node feature masks give high weights to the
node feature dimensions influential in prediction". This module turns
those masks into the reports an analyst consumes: per-node top
dimensions, community-level aggregation, and named blocks matching the
generator's feature layout (risk block / item category / nuisance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.community import Community
from .gnn_explainer import Explanation

#: The synthetic generator's feature layout (see repro.data.generator).
DEFAULT_BLOCKS: Tuple[Tuple[str, int, int], ...] = (
    ("risk", 0, 16),
    ("item_category", 16, 24),
)


@dataclass
class FeatureReport:
    """Aggregated feature importance for one explained community."""

    node_importance: np.ndarray  # (num_nodes, feature_dim) mask
    mean_importance: np.ndarray  # (feature_dim,) community average
    seed_importance: np.ndarray  # (feature_dim,) for the seed txn

    def top_dimensions(self, k: int = 5, node: Optional[int] = None) -> List[int]:
        """Highest-weighted feature dims (seed by default)."""
        weights = self.seed_importance if node is None else self.node_importance[node]
        return np.argsort(-weights)[:k].tolist()

    def block_importance(
        self, blocks: Sequence[Tuple[str, int, int]] = DEFAULT_BLOCKS
    ) -> Dict[str, float]:
        """Mean mask weight per named feature block, plus the rest.

        Lets the analyst see whether the detector leaned on the risk
        identifier's scores or on other dimensions.
        """
        result: Dict[str, float] = {}
        covered = np.zeros(len(self.mean_importance), dtype=bool)
        for name, start, stop in blocks:
            stop = min(stop, len(self.mean_importance))
            if start >= stop:
                continue
            result[name] = float(self.mean_importance[start:stop].mean())
            covered[start:stop] = True
        if (~covered).any():
            result["other"] = float(self.mean_importance[~covered].mean())
        return result


def feature_report(explanation: Explanation, community: Community) -> FeatureReport:
    """Build a :class:`FeatureReport` from an explanation."""
    mask = explanation.node_feature_mask
    if mask.shape[0] != community.graph.num_nodes:
        raise ValueError("explanation does not match this community")
    return FeatureReport(
        node_importance=mask,
        mean_importance=mask.mean(axis=0),
        seed_importance=mask[community.seed_local],
    )


def render_feature_report(
    report: FeatureReport,
    k: int = 5,
    blocks: Sequence[Tuple[str, int, int]] = DEFAULT_BLOCKS,
) -> str:
    """Human-readable feature-importance summary."""
    lines = ["feature importance (seed transaction):"]
    for dim in report.top_dimensions(k):
        lines.append(f"  dim {dim:4d}: {report.seed_importance[dim]:.3f}")
    lines.append("block importance (community mean):")
    for name, value in report.block_importance(blocks).items():
        lines.append(f"  {name:14s}: {value:.3f}")
    return "\n".join(lines)
