"""Simulated human annotations of node importance (Appendix E).

The paper's quantitative explainer evaluation rests on five expert
annotators assigning node importance scores in {0, 1, 2} ("how
important is this node when the seed prediction is made"), averaged
into node importance and aggregated into edge importance.

Without access to eBay's annotators we simulate the panel:

* a **ground-truth importance model** encodes what the paper says the
  experts attend to — risk propagation paths from the seed: nodes close
  to the seed, fraud transactions, and linking entities adjacent to
  fraud score high;
* each **simulated annotator** perturbs the ground truth with
  independent noise calibrated so the mean pairwise inter-annotator
  agreement (Cohen's kappa) lands near the paper's 0.53 (random
  annotators land near 0, reproducing Appendix E's sanity check).

Node→edge aggregation supports the paper's three strategies
("avg" / "sum" / "min").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..graph.community import Community
from ..graph.hetero import NODE_TYPE_IDS

EdgeWeights = Dict[Tuple[int, int], float]

AGGREGATIONS = ("avg", "sum", "min")


def ground_truth_importance(community: Community) -> np.ndarray:
    """Expert-model node importance in {0, 1, 2}.

    Heuristics mirroring the paper's annotation protocol discussion:
    the seed and its direct fraud-propagating links matter most,
    two-hop context matters somewhat, the periphery little.
    """
    graph = community.graph
    n = graph.num_nodes
    distance = _bfs_distance(graph, community.seed_local)

    txn_type = NODE_TYPE_IDS["txn"]
    fraud_fraction = np.zeros(n)
    for node in range(n):
        if graph.node_type[node] == txn_type:
            fraud_fraction[node] = 1.0 if graph.labels[node] == 1 else 0.0
        else:
            neighbors = graph.in_neighbors(node)
            txn_neighbors = neighbors[graph.node_type[neighbors] == txn_type]
            if len(txn_neighbors):
                fraud_fraction[node] = float(
                    np.mean(graph.labels[txn_neighbors] == 1)
                )

    degree = graph.degree()
    # Hubs are relative to the community: the warehouse address linked
    # to many transactions is what the paper's annotators flag (their
    # Figure 6 scores such hub edges highest) — a top-5% degree
    # threshold keeps the "high importance" tier selective, which
    # matches the paper's tie statistics (~1/4 of edges at the top).
    hub_threshold = max(4, int(np.quantile(degree, 0.95))) if n else 4
    importance = np.zeros(n, dtype=np.int64)
    for node in range(n):
        risky = fraud_fraction[node] >= 0.5
        hub = degree[node] >= hub_threshold
        if node == community.seed_local:
            importance[node] = 2
        elif hub:
            # The heavily shared entity (warehouse address, reused
            # token) matters wherever it sits — the global part of the
            # annotators' judgment that centrality measures capture.
            importance[node] = 2
        elif distance[node] <= 1 and risky:
            # The local part: direct risky links of the seed, which the
            # task-aware GNNExplainer captures.
            importance[node] = 2
        elif distance[node] <= 1:
            importance[node] = 1
        elif distance[node] <= 2 and risky:
            importance[node] = 1
        else:
            importance[node] = 0

    # Risk flows *through* a hub: its direct counterparties matter at
    # least moderately (the paper's warehouse case studies score the
    # transactions around the shared address, not just the address).
    for node in range(n):
        if importance[node] == 2 and degree[node] >= hub_threshold:
            for neighbor in graph.in_neighbors(node):
                importance[neighbor] = max(importance[neighbor], 1)
    importance[community.seed_local] = 2
    return importance


def _bfs_distance(graph, source: int) -> np.ndarray:
    distance = np.full(graph.num_nodes, np.inf)
    distance[source] = 0
    frontier = [int(source)]
    level = 0
    while frontier:
        level += 1
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor in graph.in_neighbors(node):
                neighbor = int(neighbor)
                if np.isinf(distance[neighbor]):
                    distance[neighbor] = level
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distance


@dataclass
class AnnotatorPanel:
    """Five simulated annotators with calibrated disagreement."""

    num_annotators: int = 5
    # 0.30 calibrates the mean pairwise Cohen's kappa to ≈0.53, the
    # inter-annotator agreement Appendix E reports for eBay's experts.
    flip_probability: float = 0.30
    seed: int = 0

    def annotate(self, community: Community) -> np.ndarray:
        """(num_annotators, num_nodes) integer scores in {0, 1, 2}."""
        truth = ground_truth_importance(community)
        rng = np.random.default_rng(self.seed + community.seed_original)
        panel = np.tile(truth, (self.num_annotators, 1))
        for annotator in range(self.num_annotators):
            flips = rng.random(len(truth)) < self.flip_probability
            shifts = rng.choice([-1, 1], size=len(truth))
            panel[annotator, flips] = np.clip(
                panel[annotator, flips] + shifts[flips], 0, 2
            )
        return panel

    def node_importance(self, community: Community) -> np.ndarray:
        """Average over annotators (the paper's node importance score)."""
        return self.annotate(community).mean(axis=0)


def random_panel(num_nodes: int, num_annotators: int = 5, seed: int = 0) -> np.ndarray:
    """Uniform random annotators (Appendix E's IAA sanity check)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 3, size=(num_annotators, num_nodes))


def cohen_kappa(a: Sequence[int], b: Sequence[int]) -> float:
    """Cohen's kappa between two annotators over categories {0, 1, 2}."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape or len(a) == 0:
        raise ValueError("annotations must be equal-length and non-empty")
    categories = np.arange(3)
    observed = float(np.mean(a == b))
    expected = float(
        sum(np.mean(a == c) * np.mean(b == c) for c in categories)
    )
    if expected >= 1.0:
        return 1.0
    return (observed - expected) / (1.0 - expected)


def mean_pairwise_kappa(panel: np.ndarray) -> float:
    """Average IAA over all annotator pairs (Appendix E reports 0.53)."""
    num_annotators = panel.shape[0]
    kappas: List[float] = []
    for i in range(num_annotators):
        for j in range(i + 1, num_annotators):
            kappas.append(cohen_kappa(panel[i], panel[j]))
    return float(np.mean(kappas)) if kappas else 1.0


def edge_importance_from_nodes(
    community: Community, node_scores: np.ndarray, aggregation: str = "avg"
) -> EdgeWeights:
    """Edge importance from incident node scores (App. E strategies)."""
    if aggregation not in AGGREGATIONS:
        raise KeyError(f"aggregation must be one of {AGGREGATIONS}")
    weights: EdgeWeights = {}
    for pair in community.undirected_edges():
        u, v = pair
        if aggregation == "avg":
            weights[pair] = float((node_scores[u] + node_scores[v]) / 2.0)
        elif aggregation == "sum":
            weights[pair] = float(node_scores[u] + node_scores[v])
        else:
            weights[pair] = float(min(node_scores[u], node_scores[v]))
    return weights


def human_edge_importance(
    community: Community,
    panel: AnnotatorPanel,
    aggregation: str = "avg",
) -> EdgeWeights:
    """End-to-end: annotate → average → aggregate to edges."""
    node_scores = panel.node_importance(community)
    return edge_importance_from_nodes(community, node_scores, aggregation)
