"""Top-k hit rate between edge-weight rankings (Sec. 3.4 / App. E).

``H_topk = |topk(human) ∩ topk(explainer)| / k`` — the agreement metric
between human edge-importance scores (discrete, heavily tied) and
explainer/centrality weights (continuous).

Ties are the metric's main subtlety: human scores take few distinct
values, so the top-k cut is ambiguous. Following Appendix E, the
top-k selection is randomised over tied edges and the hit rate is
averaged over ``draws`` (paper: 100; 10,000 gave the same results).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

EdgeWeights = Dict[Tuple[int, int], float]

TOPK_GRID: Tuple[int, ...] = (5, 10, 15, 20, 25)


def _aligned_scores(
    weights_a: EdgeWeights, weights_b: EdgeWeights
) -> Tuple[List[Tuple[int, int]], np.ndarray, np.ndarray]:
    """Common edge universe with missing entries scored 0."""
    edges = sorted(set(weights_a) | set(weights_b))
    a = np.array([weights_a.get(edge, 0.0) for edge in edges])
    b = np.array([weights_b.get(edge, 0.0) for edge in edges])
    return edges, a, b


def _topk_with_tiebreak(scores: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Indices of the k largest scores, ties broken uniformly."""
    jitter = rng.random(len(scores)) * 1e-9
    order = np.argsort(-(scores + jitter), kind="stable")
    return order[:k]


def topk_hit_rate(
    weights_a: EdgeWeights,
    weights_b: EdgeWeights,
    k: int,
    draws: int = 100,
    seed: int = 0,
) -> float:
    """Mean hit rate over random tie-breaking draws.

    ``k`` is clipped to the number of edges so that small communities
    still produce a defined score.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    edges, a, b = _aligned_scores(weights_a, weights_b)
    if not edges:
        return 0.0
    k = min(k, len(edges))
    rng = np.random.default_rng(seed)
    hits: List[float] = []
    for _ in range(draws):
        top_a = set(_topk_with_tiebreak(a, k, rng).tolist())
        top_b = set(_topk_with_tiebreak(b, k, rng).tolist())
        hits.append(len(top_a & top_b) / k)
    return float(np.mean(hits))


def hit_rate_profile(
    weights_a: EdgeWeights,
    weights_b: EdgeWeights,
    ks: Sequence[int] = TOPK_GRID,
    draws: int = 100,
    seed: int = 0,
) -> Dict[int, float]:
    """Hit rate at every k of the Table-1 grid."""
    return {k: topk_hit_rate(weights_a, weights_b, k, draws=draws, seed=seed) for k in ks}


def mean_hit_rate_over_communities(
    per_community_pairs: Iterable[Tuple[EdgeWeights, EdgeWeights]],
    k: int,
    draws: int = 100,
    seed: int = 0,
) -> float:
    """Average hit rate at one k across communities (a Table-1 cell)."""
    rates = [
        topk_hit_rate(human, explainer, k, draws=draws, seed=seed)
        for human, explainer in per_community_pairs
    ]
    if not rates:
        raise ValueError("no communities provided")
    return float(np.mean(rates))


def normalize_weights(weights: EdgeWeights) -> EdgeWeights:
    """Min-max normalise weights to [0, 1] (hybrid-combination prep).

    Constant weight maps to all-0.5 so the hybrid combination stays
    well-conditioned when a centrality assigns identical scores.
    """
    if not weights:
        return {}
    values = np.array(list(weights.values()))
    low, high = values.min(), values.max()
    if high - low < 1e-12:
        return {edge: 0.5 for edge in weights}
    return {edge: float((value - low) / (high - low)) for edge, value in weights.items()}
