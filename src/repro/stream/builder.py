"""Incremental hetero-graph maintenance over a live event stream.

The batch :class:`~repro.graph.builder.GraphBuilder` converts a whole
transaction log at once; this module applies *time-ordered events* to a
live :class:`~repro.graph.hetero.HeteroGraph` — the same object a
:class:`~repro.serving.service.ScoringService` is scoring against —
without ever replacing it:

* **entity-key dedup** — a shared email/address/payment-token arriving
  in a new transaction links to its *existing* node (the paper's
  fraud-ring mechanic: rings reveal themselves as many transactions
  funnelling into few entities), via the same ``{kind: {external_id:
  node_id}}`` index the batch builder returns;
* **delta buffers** — applied events accumulate in plain lists and are
  materialised in one vectorised
  :meth:`~repro.graph.hetero.HeteroGraph.append_delta` per
  :meth:`flush`, which splices the new in-edges into the cached CSR
  (bit-identical to a rebuild) and bumps the graph version exactly once
  so :class:`~repro.graph.cache.SubgraphCache` keys roll over;
* **compaction** — :meth:`compact` consolidates the delta-merged CSR
  into a canonical rebuild and re-validates the graph; because merge
  and rebuild are bit-identical the version is unchanged and warm
  caches survive;
* **delayed labels** — :meth:`apply_label` flips a transaction's label
  when its chargeback verdict finally lands, a *non-structural*
  mutation (version bump, CSR kept).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..data.events import TxnEvent
from ..graph.builder import GraphBuilder
from ..graph.hetero import NODE_TYPE_IDS, HeteroGraph, edge_type_between

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.records import TransactionLog
    from ..obs.registry import MetricsRegistry

_ENTITY_KINDS = ("pmt", "email", "addr", "buyer")


class IncrementalGraphBuilder:
    """Applies :class:`TxnEvent` deltas to one live :class:`HeteroGraph`."""

    def __init__(
        self,
        feature_dim: int,
        graph: Optional[HeteroGraph] = None,
        index: Optional[Dict[str, Dict[int, int]]] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if graph is None:
            graph = HeteroGraph(
                node_type=np.zeros(0, dtype=np.int64),
                edge_src=np.zeros(0, dtype=np.int64),
                edge_dst=np.zeros(0, dtype=np.int64),
                edge_type=np.zeros(0, dtype=np.int64),
                txn_features=np.zeros((0, feature_dim)),
                labels=np.zeros(0, dtype=np.int64),
            )
        if graph.feature_dim != feature_dim:
            raise ValueError("graph feature_dim disagrees with feature_dim")
        self.graph = graph
        self.index: Dict[str, Dict[int, int]] = index if index is not None else {
            kind: {} for kind in ("txn",) + _ENTITY_KINDS
        }
        self.feature_dim = feature_dim
        self.events_applied = 0
        self.labels_applied = 0
        self.compactions = 0
        self.last_compaction_version = graph.version
        # Delta buffers: node/edge additions staged between flushes.
        self._pending_events = 0
        self._pending_node_type: List[int] = []
        self._pending_labels: List[int] = []
        self._pending_features: List[np.ndarray] = []
        self._pending_src: List[int] = []
        self._pending_dst: List[int] = []
        self._pending_etype: List[int] = []
        self._zero_row = np.zeros(feature_dim)
        self._instrument(registry)

    def _instrument(self, registry: Optional["MetricsRegistry"]) -> None:
        if registry is None:
            self._events_counter = None
            return
        self._events_counter = registry.counter(
            "stream_builder_events_total",
            "Events applied to the live graph by the incremental builder.",
        )
        self._compactions_counter = registry.counter(
            "stream_builder_compactions_total",
            "Delta-to-canonical CSR compactions.",
        )
        self._nodes_gauge = registry.gauge(
            "stream_graph_nodes", "Live graph node count."
        )
        self._edges_gauge = registry.gauge(
            "stream_graph_edges", "Live graph edge count."
        )
        self._version_gauge = registry.gauge(
            "stream_graph_version", "Live graph mutation version."
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_log(
        cls,
        log: "TransactionLog",
        registry: Optional["MetricsRegistry"] = None,
    ) -> "IncrementalGraphBuilder":
        """Warm-start from a batch-built graph (the warmup prefix of a
        stream demo): the batch builder's index seeds entity dedup so
        streamed transactions link into the pre-existing ring structure."""
        graph, index = GraphBuilder().build(log)
        builder = cls(graph.feature_dim, graph=graph, index=index, registry=registry)
        builder.events_applied = len(index["txn"])
        return builder

    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Events staged in the delta buffers, not yet flushed."""
        return self._pending_events

    def node_of(self, txn_id: int) -> int:
        """Graph node id of a transaction (pending or materialised)."""
        return self.index["txn"][txn_id]

    def _stage_node(self, kind: str, label: int, features: np.ndarray) -> int:
        node = self.graph.num_nodes + len(self._pending_node_type)
        self._pending_node_type.append(NODE_TYPE_IDS[kind])
        self._pending_labels.append(label)
        self._pending_features.append(features)
        return node

    def apply(self, event: TxnEvent) -> int:
        """Stage one transaction event; returns the txn's node id.

        The label is *not* taken from the event — it stays ``-1`` until
        the feedback plane matures it through :meth:`apply_label`
        (chargebacks land days after the transaction).
        """
        if event.txn_id in self.index["txn"]:
            raise ValueError(f"duplicate transaction event {event.txn_id}")
        features = np.asarray(event.features, dtype=np.float64)
        if features.shape != (self.feature_dim,):
            raise ValueError(
                f"event features have dim {features.shape}, expected ({self.feature_dim},)"
            )
        txn_node = self._stage_node("txn", -1, features)
        self.index["txn"][event.txn_id] = txn_node
        for kind, external_id in event.linked_entities():
            entity = self.index[kind].get(external_id)
            if entity is None:
                entity = self._stage_node(kind, -1, self._zero_row)
                self.index[kind][external_id] = entity
            self._pending_src.append(txn_node)
            self._pending_dst.append(entity)
            self._pending_etype.append(edge_type_between("txn", kind))
            self._pending_src.append(entity)
            self._pending_dst.append(txn_node)
            self._pending_etype.append(edge_type_between(kind, "txn"))
        self._pending_events += 1
        return txn_node

    def flush(self) -> int:
        """Materialise the delta buffers into the live graph in place.

        One :meth:`HeteroGraph.append_delta` call per flush: the graph
        version bumps once, the CSR is merged (not dropped), and the
        object identity the serving layer holds is untouched.
        """
        if self._pending_events == 0:
            return 0
        self.graph.append_delta(
            node_type=self._pending_node_type,
            labels=self._pending_labels,
            txn_features=np.stack(self._pending_features)
            if self._pending_features
            else np.zeros((0, self.feature_dim)),
            edge_src=self._pending_src,
            edge_dst=self._pending_dst,
            edge_type=self._pending_etype,
        )
        applied = self._pending_events
        self.events_applied += applied
        self._pending_events = 0
        self._pending_node_type = []
        self._pending_labels = []
        self._pending_features = []
        self._pending_src = []
        self._pending_dst = []
        self._pending_etype = []
        if self._events_counter is not None:
            self._events_counter.inc(applied)
            self._nodes_gauge.set(self.graph.num_nodes)
            self._edges_gauge.set(self.graph.num_edges)
            self._version_gauge.set(self.graph.version)
        return applied

    def apply_label(self, txn_id: int, label: int) -> int:
        """Reveal a matured label (chargeback verdict) on the live graph.

        Non-structural mutation: the version bumps so cached subgraphs
        (which snapshot labels) roll over, but the CSR survives.
        """
        if label not in (0, 1):
            raise ValueError("matured labels must be 0 or 1")
        node = self.index["txn"].get(txn_id)
        if node is None:
            raise KeyError(f"unknown transaction {txn_id}")
        if node >= self.graph.num_nodes:
            # Still staged: patch the delta buffer entry.
            self._pending_labels[node - self.graph.num_nodes] = label
        else:
            self.graph.labels[node] = label
            self.graph.mark_mutated(structural=False)
        self.labels_applied += 1
        return node

    def compact(self) -> None:
        """Consolidate delta-merged adjacency into a canonical CSR.

        Flushes any staged delta first, rebuilds the CSR from the flat
        edge arrays (bit-identical to the merged layout, so the version
        — and every warm cache entry — survives), and re-validates the
        full set of graph invariants.
        """
        self.flush()
        self.graph.rebuild_csr()
        self.graph.validate()
        self.compactions += 1
        self.last_compaction_version = self.graph.version
        if self._events_counter is not None:
            self._compactions_counter.inc()

    # ------------------------------------------------------------------
    def entity_counts(self) -> Dict[str, int]:
        """Distinct entities seen per kind (dedup effectiveness)."""
        return {kind: len(self.index[kind]) for kind in _ENTITY_KINDS}
