"""Deterministic streaming demo behind ``repro stream --demo``.

End-to-end exercise of the ingestion subsystem on a
:class:`~repro.reliability.faults.ManualClock`:

1. *warmup*: the first ``warmup_fraction`` of the generator's event
   stream is applied through the :class:`IncrementalGraphBuilder`
   (labels revealed immediately — they are historical), compacted, and
   a detector+ is briefly trained on the resulting graph;
2. *live stream*: the remaining events are WAL-appended, ingested
   under bounded-queue backpressure, micro-batched through the
   :class:`~repro.serving.service.ScoringService` (subgraph cache in
   front of the sampler), and fed to the feedback plane — delayed
   chargeback labels, prequential AUC, PSI/KS drift, incremental
   fine-tune checkpoints;
3. *drift burst*: the tail of the stream gets a deterministic feature
   shift so the drift detector's alert path fires inside the demo;
4. *gate*: before the final compaction the live graph carries a
   delta-merged CSR; the demo samples probe subgraphs with both the
   reference and vectorized samplers, compacts, resamples, and asserts
   all four are bit-identical. The CLI runs the whole demo twice and
   diffs the verdict streams byte-for-byte.

Everything — generator, clock, training, sampling, label maturation —
is seeded, so one seed yields one verdict digest.
"""

from __future__ import annotations

import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.events import TxnEvent
from ..data.generator import GeneratorConfig, TransactionGenerator
from ..graph.cache import SubgraphCache
from ..graph.hetero import HeteroGraph
from ..graph.builder import train_test_split
from ..graph.sampling import SageSampler
from ..models import DetectorConfig, XFraudDetectorPlus
from ..obs.registry import MetricsRegistry
from ..reliability.checkpoint import CheckpointManager
from ..reliability.faults import ManualClock
from ..serving.service import ScoreResponse, ScoringService, ServiceConfig
from ..train import TrainConfig, Trainer
from .builder import IncrementalGraphBuilder
from .feedback import DriftConfig, DriftReport, FineTuneConfig, OnlineFineTuner
from .scorer import StreamConfig, StreamHealth, StreamScorer
from .wal import EventLog


@dataclass
class StreamDemoResult:
    """Everything the CLI (and tests) need from one demo run."""

    responses: List[ScoreResponse]
    verdict_lines: List[str]
    verdict_digest: int
    health: StreamHealth
    graph_version: int
    subgraph_gate_passed: bool
    drift_reports: List[DriftReport]
    online_auc: float
    warmup_events: int
    streamed_events: int
    scorer: StreamScorer = field(repr=False)


def _demo_events(seed: int, scale: float) -> List[TxnEvent]:
    """The ebay-small-sim workload, exported as a time-ordered stream."""
    config = GeneratorConfig(
        num_benign_buyers=int(700 * scale),
        num_stolen_cards=int(12 * scale),
        num_warehouse_rings=max(2, int(4 * scale)),
        num_cultivated_accounts=int(6 * scale),
        num_guest_checkouts=int(25 * scale),
        num_apartment_buildings=max(2, int(4 * scale)),
        feature_dim=114,
        risk_signal=0.4,
        seed=seed,
    )
    return TransactionGenerator(config).event_stream(interleave=True)


def _shift_features(event: TxnEvent, shift: float) -> TxnEvent:
    """Deterministically drift an event's feature distribution."""
    return TxnEvent(
        txn_id=event.txn_id,
        buyer_id=event.buyer_id,
        email_id=event.email_id,
        pmt_id=event.pmt_id,
        addr_id=event.addr_id,
        timestamp=event.timestamp,
        features=event.features + shift,
        label=event.label,
        scenario=event.scenario,
    )


def _subgraph_fingerprint(
    graph: HeteroGraph, targets: np.ndarray, sampler: SageSampler
) -> Tuple[np.ndarray, ...]:
    sampled = sampler.sample(graph, targets)
    sub = sampled.graph
    return (
        sampled.original_ids,
        sampled.target_local,
        sub.node_type,
        sub.edge_src,
        sub.edge_dst,
        sub.edge_type,
        sub.txn_features,
        sub.labels,
    )


def _fingerprints_equal(a: Tuple[np.ndarray, ...], b: Tuple[np.ndarray, ...]) -> bool:
    return all(np.array_equal(x, y) for x, y in zip(a, b))


def run_stream_demo(
    seed: int = 0,
    scale: float = 0.25,
    epochs: int = 2,
    warmup_fraction: float = 0.5,
    max_events: Optional[int] = None,
    batch_size: int = 16,
    compact_every: int = 64,
    label_delay_s: float = 4.0,
    drift_burst: bool = True,
    finetune: bool = True,
    wal_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> StreamDemoResult:
    """Replay the scripted stream; see the module docstring for acts."""
    events = _demo_events(seed, scale)
    if max_events is not None:
        events = events[:max_events]
    if len(events) < 4:
        raise ValueError("demo needs at least 4 events; raise scale or max_events")
    n_warm = max(2, int(len(events) * warmup_fraction))
    warmup, live = events[:n_warm], events[n_warm:]

    # -- act 1: warmup — build the historical graph incrementally ------
    builder = IncrementalGraphBuilder(
        feature_dim=len(events[0].features), registry=registry
    )
    for event in warmup:
        builder.apply(event)
    builder.flush()
    for event in warmup:
        if event.label >= 0:
            builder.apply_label(event.txn_id, event.label)
    builder.compact()
    graph = builder.graph

    model = XFraudDetectorPlus(DetectorConfig(feature_dim=graph.feature_dim, seed=seed))
    train_nodes, _, _ = train_test_split(graph, test_fraction=0.2, seed=seed)
    if epochs > 0 and len(train_nodes):
        Trainer(model, TrainConfig(epochs=epochs, batch_size=256, seed=seed)).fit(
            graph, train_nodes
        )

    # -- act 2/3: the live stream under a ManualClock ------------------
    clock = ManualClock()
    if warmup:
        clock.advance(warmup[-1].timestamp)
    service = ScoringService(
        model,
        graph,
        config=ServiceConfig(
            deadline_s=30.0,
            queue_capacity=max(64, batch_size * 4),
            static_prior=float(graph.fraud_rate()),
            batch_size=batch_size,
        ),
        clock=clock,
        registry=registry,
        cache=SubgraphCache(capacity=256),
    )
    finetuner = None
    if finetune:
        manager = (
            CheckpointManager(checkpoint_dir, keep_last=2)
            if checkpoint_dir is not None
            else None
        )
        finetuner = OnlineFineTuner(
            model,
            FineTuneConfig(
                min_labels=16, max_nodes=128, batch_size=32, every_labels=32, seed=seed
            ),
            checkpoint=manager,
            registry=registry,
        )
    if wal_dir is None:
        wal_dir = tempfile.mkdtemp(prefix="repro-stream-wal-")
    wal = EventLog(wal_dir, segment_max_bytes=64 * 1024, fsync=False)
    scorer = StreamScorer(
        service,
        builder,
        wal=wal,
        config=StreamConfig(
            batch_size=batch_size,
            queue_capacity=batch_size * 4,
            label_delay_s=label_delay_s,
            compact_every=compact_every,
            drift=DriftConfig(window=64, min_samples=32),
        ),
        clock=clock,
        finetuner=finetuner,
        registry=registry,
    )

    drift_from = int(len(live) * 0.75)
    responses: List[ScoreResponse] = []
    for position, event in enumerate(live):
        if drift_burst and position >= drift_from:
            event = _shift_features(event, 1.5)
        if event.timestamp > clock():
            clock.advance(event.timestamp - clock())
        while not scorer.ingest(event):
            responses.extend(scorer.pump(max_batches=1))
        if scorer.lag_events >= batch_size:
            responses.extend(scorer.pump(max_batches=1))
    responses.extend(scorer.pump())
    # Let every chargeback mature, then run the final feedback pass.
    clock.advance(label_delay_s + 1.0)
    scorer.mature_labels()

    # -- act 4: delta-vs-compacted subgraph gate -----------------------
    # The live CSR is delta-merged (every flush after the last mid-
    # stream compaction spliced into it). Fingerprint probe subgraphs
    # under both sampler paths, compact to a canonical rebuild, and
    # fingerprint again — all four must be bit-identical.
    probe = graph.txn_nodes[-min(32, len(graph.txn_nodes)) :]
    reference = SageSampler(hops=2, fanout=10, seed=seed, reference=True)
    vectorized = SageSampler(hops=2, fanout=10, seed=seed, reference=False)
    graph.csr()  # ensure the adjacency is materialised pre-compaction
    before_ref = _subgraph_fingerprint(graph, probe, reference)
    before_vec = _subgraph_fingerprint(graph, probe, vectorized)
    builder.compact()
    after_ref = _subgraph_fingerprint(graph, probe, reference)
    after_vec = _subgraph_fingerprint(graph, probe, vectorized)
    gate = (
        _fingerprints_equal(before_ref, before_vec)
        and _fingerprints_equal(before_ref, after_ref)
        and _fingerprints_equal(before_vec, after_vec)
    )

    wal.close()
    service.close()

    verdict_lines = [
        f"{response.node} {response.score:.12f} {response.verdict} {response.rung}"
        for response in responses
    ]
    digest = zlib.crc32("\n".join(verdict_lines).encode("utf-8"))
    drift_reports = scorer.score_drift.alerts + scorer.feature_drift.alerts
    return StreamDemoResult(
        responses=responses,
        verdict_lines=verdict_lines,
        verdict_digest=digest,
        health=scorer.health(),
        graph_version=graph.version,
        subgraph_gate_passed=gate,
        drift_reports=drift_reports,
        online_auc=scorer.online_auc.auc(),
        warmup_events=len(warmup),
        streamed_events=len(live),
        scorer=scorer,
    )
