"""Feedback plane for the streaming scorer: delayed labels, online
evaluation, drift detection, and incremental fine-tuning.

Chargebacks — the fraud ground truth — land days after a transaction
scores (the paper trains on labels gathered long after the fact).
:class:`LabelFeed` models that lag on the stream's event-time axis;
matured labels drive three consumers:

* :class:`OnlineAUC` — prequential (test-then-train) windowed ROC AUC:
  each transaction is scored *before* its label is known, so the
  running AUC over the last ``window`` matured pairs is an unbiased
  online estimate of serving quality;
* :class:`DriftDetector` — Population Stability Index + Kolmogorov-
  Smirnov statistics of a sliding current window against a frozen
  reference window, raised as alerts through the obs registry (the
  standard PSI reading: < 0.1 stable, 0.1–0.25 drifting, > 0.25 act);
* :class:`OnlineFineTuner` — a bounded mini-epoch of
  :class:`~repro.train.trainer.Trainer` over the recent labelled
  window, checkpointed through
  :class:`~repro.reliability.checkpoint.CheckpointManager` so the
  online model lineage is crash-recoverable like the batch one.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..reliability.checkpoint import CheckpointManager, TrainingState, collect_rng_states
from ..train.metrics import roc_auc
from ..train.trainer import TrainConfig, Trainer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.hetero import HeteroGraph
    from ..obs.registry import MetricsRegistry


# ----------------------------------------------------------------------
# Delayed labels
# ----------------------------------------------------------------------
class LabelFeed:
    """Event-time queue of labels maturing after a chargeback delay.

    ``offer`` enqueues the ground-truth verdict at transaction time;
    ``due`` releases every verdict whose ``event_time + delay_s`` has
    passed, in a deterministic ``(available_at, offer order)`` order —
    replaying the same event log therefore matures labels identically.
    """

    def __init__(self, delay_s: float) -> None:
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        self.delay_s = delay_s
        self._heap: List[Tuple[float, int, int, int]] = []
        self._offered = 0

    def offer(self, txn_id: int, label: int, event_time: float) -> None:
        heapq.heappush(
            self._heap, (event_time + self.delay_s, self._offered, txn_id, label)
        )
        self._offered += 1

    def due(self, now: float) -> List[Tuple[int, int]]:
        """Pop every ``(txn_id, label)`` matured by ``now``."""
        matured: List[Tuple[int, int]] = []
        while self._heap and self._heap[0][0] <= now:
            _, _, txn_id, label = heapq.heappop(self._heap)
            matured.append((txn_id, label))
        return matured

    @property
    def pending(self) -> int:
        return len(self._heap)


# ----------------------------------------------------------------------
# Prequential evaluation
# ----------------------------------------------------------------------
class OnlineAUC:
    """Windowed prequential ROC AUC over matured (label, score) pairs."""

    def __init__(self, window: int = 512) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self._pairs: Deque[Tuple[int, float]] = deque(maxlen=window)
        self.count = 0

    def add(self, label: int, score: float) -> None:
        self._pairs.append((int(label), float(score)))
        self.count += 1

    def auc(self) -> float:
        """AUC of the current window; NaN until both classes appear."""
        if not self._pairs:
            return float("nan")
        labels = [pair[0] for pair in self._pairs]
        scores = [pair[1] for pair in self._pairs]
        return float(roc_auc(labels, scores, default=float("nan")))


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------
@dataclass
class DriftConfig:
    """PSI/KS drift-detector knobs."""

    window: int = 256
    min_samples: int = 64
    bins: int = 10
    psi_alert: float = 0.25
    ks_alert: float = 0.25
    epsilon: float = 1e-4


@dataclass
class DriftReport:
    """One drift check of a signal's current window vs its reference."""

    signal: str
    psi: float
    ks: float
    samples: int
    alert: bool


class DriftDetector:
    """PSI + KS drift over one scalar signal (scores, a feature, ...).

    The first ``window`` observations freeze as the *reference*
    distribution and fix the PSI bin edges (reference quantiles);
    subsequent observations fill a sliding *current* window.
    :meth:`check` compares the two and raises an alert through the
    registry when either statistic crosses its threshold.
    """

    def __init__(
        self,
        signal: str,
        config: Optional[DriftConfig] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.signal = signal
        self.config = config or DriftConfig()
        self._reference: List[float] = []
        self._edges: Optional[np.ndarray] = None
        self._ref_fractions: Optional[np.ndarray] = None
        self._ref_sorted: Optional[np.ndarray] = None
        self._current: Deque[float] = deque(maxlen=self.config.window)
        self.alerts: List[DriftReport] = []
        self.observed = 0
        if registry is not None:
            labels = ("signal",)
            self._psi_gauge = registry.gauge(
                "stream_drift_psi", "Population Stability Index vs reference window.", labels
            )
            self._ks_gauge = registry.gauge(
                "stream_drift_ks", "Kolmogorov-Smirnov statistic vs reference window.", labels
            )
            self._alert_counter = registry.counter(
                "stream_drift_alerts_total", "Drift alerts raised.", labels
            )
        else:
            self._psi_gauge = None
            self._ks_gauge = None
            self._alert_counter = None

    @property
    def reference_frozen(self) -> bool:
        return self._edges is not None

    def observe(self, value: float) -> None:
        self.observed += 1
        if not self.reference_frozen:
            self._reference.append(float(value))
            if len(self._reference) >= self.config.window:
                self._freeze_reference()
            return
        self._current.append(float(value))

    def observe_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.observe(value)

    def _freeze_reference(self) -> None:
        reference = np.asarray(self._reference, dtype=np.float64)
        quantiles = np.linspace(0.0, 1.0, self.config.bins + 1)[1:-1]
        inner = np.quantile(reference, quantiles)
        self._edges = np.concatenate(([-np.inf], inner, [np.inf]))
        counts = np.histogram(reference, bins=self._edges)[0].astype(np.float64)
        self._ref_fractions = (counts + self.config.epsilon) / (
            counts.sum() + self.config.epsilon * len(counts)
        )
        self._ref_sorted = np.sort(reference)

    def check(self) -> Optional[DriftReport]:
        """Compare current vs reference; record (and count) alerts.

        Returns ``None`` while the reference is still accumulating or
        the current window has fewer than ``min_samples`` points.
        """
        if not self.reference_frozen or len(self._current) < self.config.min_samples:
            return None
        current = np.asarray(self._current, dtype=np.float64)
        counts = np.histogram(current, bins=self._edges)[0].astype(np.float64)
        fractions = (counts + self.config.epsilon) / (
            counts.sum() + self.config.epsilon * len(counts)
        )
        psi = float(
            np.sum((fractions - self._ref_fractions) * np.log(fractions / self._ref_fractions))
        )
        ks = self._ks_statistic(current)
        alert = psi > self.config.psi_alert or ks > self.config.ks_alert
        report = DriftReport(
            signal=self.signal, psi=psi, ks=ks, samples=len(current), alert=alert
        )
        if self._psi_gauge is not None:
            self._psi_gauge.set(psi, signal=self.signal)
            self._ks_gauge.set(ks, signal=self.signal)
        if alert:
            self.alerts.append(report)
            if self._alert_counter is not None:
                self._alert_counter.inc(signal=self.signal)
        return report

    def _ks_statistic(self, current: np.ndarray) -> float:
        reference = self._ref_sorted
        current = np.sort(current)
        grid = np.concatenate([reference, current])
        cdf_ref = np.searchsorted(reference, grid, side="right") / len(reference)
        cdf_cur = np.searchsorted(current, grid, side="right") / len(current)
        return float(np.max(np.abs(cdf_ref - cdf_cur)))


# ----------------------------------------------------------------------
# Incremental fine-tuning
# ----------------------------------------------------------------------
@dataclass
class FineTuneConfig:
    """Bounds on the online mini-epoch."""

    min_labels: int = 64
    max_nodes: int = 256
    batch_size: int = 64
    learning_rate: float = 1e-3
    every_labels: int = 64
    seed: int = 0


@dataclass
class FineTuneRecord:
    """One completed online fine-tune step."""

    update: int
    nodes: int
    loss: float
    checkpoint: Optional[str] = None


class OnlineFineTuner:
    """Bounded mini-epochs over the recent labelled window.

    Keeps one long-lived :class:`Trainer` (optimizer moments persist
    across updates, like a production online learner) and checkpoints
    every update through ``checkpoint`` so a crashed scorer resumes
    from the last fine-tuned weights rather than the batch snapshot.
    """

    def __init__(
        self,
        model,
        config: Optional[FineTuneConfig] = None,
        checkpoint: Optional[CheckpointManager] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.model = model
        self.config = config or FineTuneConfig()
        self.checkpoint = checkpoint
        self.trainer = Trainer(
            model,
            TrainConfig(
                epochs=1,
                batch_size=self.config.batch_size,
                learning_rate=self.config.learning_rate,
                seed=self.config.seed,
            ),
        )
        self.updates: List[FineTuneRecord] = []
        self._labels_since_update = 0
        if registry is not None:
            self._update_counter = registry.counter(
                "stream_finetune_updates_total", "Online fine-tune mini-epochs run."
            )
            self._loss_gauge = registry.gauge(
                "stream_finetune_loss", "Mean loss of the last online mini-epoch."
            )
        else:
            self._update_counter = None
            self._loss_gauge = None

    def notify_labels(self, count: int) -> None:
        self._labels_since_update += count

    def maybe_update(
        self, graph: "HeteroGraph", recent_labelled: Sequence[int]
    ) -> Optional[FineTuneRecord]:
        """Run one bounded mini-epoch if enough fresh labels accrued.

        ``recent_labelled`` is the labelled window in arrival order;
        only the newest ``max_nodes`` of it are trained on, keeping the
        step O(max_nodes) regardless of stream length.
        """
        if self._labels_since_update < self.config.every_labels:
            return None
        nodes = np.asarray(recent_labelled, dtype=np.int64)
        nodes = nodes[graph.labels[nodes] >= 0]
        if len(nodes) < self.config.min_labels:
            return None
        nodes = nodes[-self.config.max_nodes :]
        loss = self.trainer.train_epoch(graph, nodes)
        self.model.eval()
        self._labels_since_update = 0
        record = FineTuneRecord(update=len(self.updates), nodes=len(nodes), loss=loss)
        if self.checkpoint is not None:
            state = TrainingState(
                epoch=record.update,
                model_state=self.model.state_dict(),
                optimizer_state=self.trainer.optimizer.state_dict(),
                rng_states={
                    "trainer": self.trainer._rng.bit_generator.state,
                    "model": collect_rng_states(self.model),
                },
            )
            record.checkpoint = self.checkpoint.save(state)
        self.updates.append(record)
        if self._update_counter is not None:
            self._update_counter.inc()
            self._loss_gauge.set(loss)
        return record
