"""repro.stream — streaming ingestion: durable event log, incremental
hetero-graph maintenance, online scoring, and the feedback plane.

Dataflow (DESIGN.md carries the full row):

    event → WAL (EventLog) → IncrementalGraphBuilder (flush/compact)
          → StreamScorer micro-batches → ScoringService
          → LabelFeed / OnlineAUC / DriftDetector / OnlineFineTuner
"""

from .builder import IncrementalGraphBuilder
from .demo import StreamDemoResult, run_stream_demo
from .feedback import (
    DriftConfig,
    DriftDetector,
    DriftReport,
    FineTuneConfig,
    FineTuneRecord,
    LabelFeed,
    OnlineAUC,
    OnlineFineTuner,
)
from .scorer import StreamConfig, StreamHealth, StreamScorer
from .wal import (
    EventLog,
    TornTail,
    TornTailError,
    WalCorruptionError,
    WalError,
    replay_wal,
)

__all__ = [
    "EventLog",
    "replay_wal",
    "TornTail",
    "TornTailError",
    "WalCorruptionError",
    "WalError",
    "IncrementalGraphBuilder",
    "StreamConfig",
    "StreamHealth",
    "StreamScorer",
    "LabelFeed",
    "OnlineAUC",
    "DriftConfig",
    "DriftDetector",
    "DriftReport",
    "FineTuneConfig",
    "FineTuneRecord",
    "OnlineFineTuner",
    "StreamDemoResult",
    "run_stream_demo",
]
