"""Durable append-only event log (WAL) for the streaming ingestion path.

Every transaction event is framed ``[u32 length][u32 crc32][payload]``
and appended to the active segment file; segments rotate at a size
threshold. Sealing a segment records its whole-file CRC32 and size in
``MANIFEST.json`` — the same manifest idiom as
:mod:`repro.reliability.checkpoint` (atomic write + directory fsync),
so a crash leaves either the old manifest or the new one, never a torn
pointer.

Failure model (mirrored in DESIGN.md):

* *torn tail* — the process died mid-append, leaving a half-written
  frame at the end of the **active** (unsealed) segment. Recovery is
  well-defined: every frame before the tear carries its own CRC, so
  :func:`replay_wal` yields the valid prefix and raises
  :class:`TornTailError` at the tear (never garbage events), and
  reopening the log with :class:`EventLog` truncates the tear and
  resumes appending at the last durable record.
* *sealed-segment corruption* — bit rot or truncation in a segment the
  manifest has already sealed. That is not a recoverable tear (the data
  was acknowledged durable), so replay raises
  :class:`WalCorruptionError`.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..data.events import TxnEvent, decode_event, encode_event
from ..reliability.checkpoint import atomic_write_bytes, fsync_dir

_MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_FORMAT = "repro-wal-manifest-v1"
_SEGMENT_PATTERN = re.compile(r"^wal-(\d{6})\.seg$")
_FRAME_HEADER = struct.Struct("<II")
#: Upper bound on one record's payload — anything larger in a length
#: field is treated as a tear/corruption, not an allocation request.
_MAX_RECORD_BYTES = 16 * 1024 * 1024


class WalError(RuntimeError):
    """Base class for event-log failures."""


@dataclass
class TornTail:
    """Where an unsealed segment tears: everything before is valid."""

    segment: str
    offset: int
    valid_records: int
    reason: str


class TornTailError(WalError):
    """The active segment ends in a half-written frame (crash mid-append)."""

    def __init__(self, tail: TornTail) -> None:
        super().__init__(
            f"{tail.segment}: torn tail at byte {tail.offset} after "
            f"{tail.valid_records} valid records ({tail.reason})"
        )
        self.tail = tail


class WalCorruptionError(WalError):
    """A sealed segment fails its manifest checksum or record framing."""


def _segment_name(index: int) -> str:
    return f"wal-{index:06d}.seg"


def _scan_frames(blob: bytes) -> Tuple[List[bytes], int, Optional[str]]:
    """Walk ``blob`` frame by frame.

    Returns ``(payloads, valid_end, tear_reason)`` where ``valid_end``
    is the byte offset just past the last frame whose CRC verified and
    ``tear_reason`` is ``None`` for a cleanly-ending blob.
    """
    payloads: List[bytes] = []
    offset = 0
    total = len(blob)
    while offset < total:
        if total - offset < _FRAME_HEADER.size:
            return payloads, offset, "truncated frame header"
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        if length == 0:
            # No codec emits an empty payload, but crc32(b"") == 0, so a
            # zero-filled tail (preallocated blocks after a crash) would
            # otherwise parse as an endless run of "valid" empty frames.
            return payloads, offset, "zero-length frame"
        if length > _MAX_RECORD_BYTES:
            return payloads, offset, f"implausible record length {length}"
        body_start = offset + _FRAME_HEADER.size
        if total - body_start < length:
            return payloads, offset, "truncated record body"
        payload = blob[body_start : body_start + length]
        if zlib.crc32(payload) != crc:
            return payloads, offset, "record checksum mismatch"
        payloads.append(payload)
        offset = body_start + length
    return payloads, offset, None


class EventLog:
    """Segmented, checksummed, append-only log of :class:`TxnEvent`.

    Opening an existing directory recovers it: sealed segments are
    trusted to the manifest, the single unsealed (active) segment is
    scanned frame-by-frame, and a torn tail is truncated away (recorded
    in :attr:`recovered_tail`) so appends resume at the last durable
    record. Appends are buffered through the OS page cache;
    :meth:`sync` (and every seal) makes them durable with ``fsync``.
    """

    def __init__(
        self,
        directory: str,
        segment_max_bytes: int = 1 << 20,
        fsync: bool = True,
    ) -> None:
        if segment_max_bytes < _FRAME_HEADER.size + 1:
            raise ValueError("segment_max_bytes too small for one frame")
        self.directory = directory
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        self.recovered_tail: Optional[TornTail] = None
        os.makedirs(directory, exist_ok=True)
        self._sealed = self._read_manifest()["segments"]
        self._recover()
        # A crash between the append that filled the segment to the
        # rotation boundary and the rotate() it triggers leaves a full
        # unsealed segment behind. Seal it now so the manifest agrees
        # with what a healthy run would have produced and the next
        # append never grows a segment past the boundary.
        if self._active_records and self._active_size >= self.segment_max_bytes:
            self.rotate()

    # -- manifest -------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST_NAME)

    def _read_manifest(self) -> Dict:
        if not os.path.exists(self.manifest_path):
            return {"format": _MANIFEST_FORMAT, "segments": []}
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as error:
                raise WalCorruptionError(
                    f"{self.manifest_path}: corrupt manifest: {error}"
                ) from error
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise WalCorruptionError(
                f"{self.manifest_path}: unsupported manifest format "
                f"{manifest.get('format')!r}"
            )
        return manifest

    def _write_manifest(self) -> None:
        manifest = {"format": _MANIFEST_FORMAT, "segments": self._sealed}
        atomic_write_bytes(self.manifest_path, json.dumps(manifest, indent=2).encode("utf-8"))

    # -- recovery -------------------------------------------------------
    def _recover(self) -> None:
        sealed_names = {entry["file"] for entry in self._sealed}
        on_disk = sorted(
            name for name in os.listdir(self.directory) if _SEGMENT_PATTERN.match(name)
        )
        missing = sealed_names - set(on_disk)
        if missing:
            raise WalCorruptionError(
                f"{self.directory}: sealed segments missing on disk: {sorted(missing)}"
            )
        unsealed = [name for name in on_disk if name not in sealed_names]
        if len(unsealed) > 1:
            raise WalCorruptionError(
                f"{self.directory}: multiple unsealed segments: {unsealed}"
            )
        self._next_seq = (
            int(self._sealed[-1]["last_seq"]) + 1 if self._sealed else 0
        )
        last_index = max(
            (int(_SEGMENT_PATTERN.match(name).group(1)) for name in on_disk),
            default=0,
        )
        if unsealed:
            name = unsealed[0]
            path = os.path.join(self.directory, name)
            with open(path, "rb") as handle:
                blob = handle.read()
            payloads, valid_end, tear = _scan_frames(blob)
            if tear is not None:
                self.recovered_tail = TornTail(
                    segment=name,
                    offset=valid_end,
                    valid_records=len(payloads),
                    reason=tear,
                )
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
                    handle.flush()
                    os.fsync(handle.fileno())
                fsync_dir(self.directory)
            self._active_name = name
            self._active_records = len(payloads)
            self._active_first_seq = self._next_seq
            self._next_seq += len(payloads)
            self._active_size = valid_end
        else:
            self._open_segment(last_index + 1)
            return
        self._active_file = open(os.path.join(self.directory, self._active_name), "ab")

    def _open_segment(self, index: int) -> None:
        self._active_name = _segment_name(index)
        self._active_records = 0
        self._active_first_seq = self._next_seq
        self._active_size = 0
        path = os.path.join(self.directory, self._active_name)
        self._active_file = open(path, "ab")
        if self.fsync:
            fsync_dir(self.directory)

    # -- introspection --------------------------------------------------
    @property
    def record_count(self) -> int:
        """Total durable records across sealed + active segments."""
        return self._next_seq

    def segment_count(self) -> int:
        return len(self._sealed) + 1

    def segments(self) -> List[Dict]:
        """Sealed manifest entries plus the live active-segment row."""
        rows = [dict(entry, sealed=True) for entry in self._sealed]
        rows.append(
            {
                "file": self._active_name,
                "records": self._active_records,
                "first_seq": self._active_first_seq,
                "last_seq": self._next_seq - 1,
                "size": self._active_size,
                "sealed": False,
            }
        )
        return rows

    # -- append / rotate ------------------------------------------------
    def append(self, event: TxnEvent) -> int:
        """Append one event; returns its global sequence number."""
        payload = encode_event(event)
        frame = _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._active_file.write(frame)
        self._active_file.flush()
        seq = self._next_seq
        self._next_seq += 1
        self._active_records += 1
        self._active_size += len(frame)
        if self._active_size >= self.segment_max_bytes:
            self.rotate()
        return seq

    def append_many(self, events: List[TxnEvent]) -> List[int]:
        return [self.append(event) for event in events]

    def sync(self) -> None:
        """Group commit: fsync the active segment."""
        self._active_file.flush()
        if self.fsync:
            os.fsync(self._active_file.fileno())

    def rotate(self) -> None:
        """Seal the active segment into the manifest; open the next one."""
        self.sync()
        self._active_file.close()
        path = os.path.join(self.directory, self._active_name)
        with open(path, "rb") as handle:
            blob = handle.read()
        if self._active_records:
            self._sealed.append(
                {
                    "file": self._active_name,
                    "records": self._active_records,
                    "first_seq": self._active_first_seq,
                    "last_seq": self._next_seq - 1,
                    "size": len(blob),
                    "crc32": zlib.crc32(blob),
                }
            )
            self._write_manifest()
            index = int(_SEGMENT_PATTERN.match(self._active_name).group(1))
            self._open_segment(index + 1)
        else:
            # Nothing to seal — reopen the same empty segment.
            self._active_file = open(path, "ab")

    def close(self) -> None:
        """Make the active segment durable; it stays unsealed so a
        reopened log keeps appending into it."""
        self.sync()
        self._active_file.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay ---------------------------------------------------------
    def replay(self) -> Iterator[Tuple[int, TxnEvent]]:
        """Replay every durable event in sequence order (read-only).

        Safe to call on an open log: it re-reads the files rather than
        touching the append handle. Raises :class:`WalCorruptionError`
        for sealed-segment damage and :class:`TornTailError` if the
        active segment tears (only possible when the file was mangled
        after this instance recovered it).
        """
        self._active_file.flush()
        return replay_wal(self.directory)


def replay_wal(directory: str) -> Iterator[Tuple[int, TxnEvent]]:
    """Read-only replay of a WAL directory.

    Yields ``(seq, event)`` for every record whose checksum verifies,
    in order. Sealed segments must match the manifest byte-for-byte
    (size + CRC32) or :class:`WalCorruptionError` is raised before any
    of their records are yielded; a torn frame at the end of the active
    segment raises :class:`TornTailError` *after* the valid prefix has
    been yielded — the replayer never fabricates events past the tear.
    """
    manifest_path = os.path.join(directory, _MANIFEST_NAME)
    sealed: List[Dict] = []
    if os.path.exists(manifest_path):
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as error:
                raise WalCorruptionError(
                    f"{manifest_path}: corrupt manifest: {error}"
                ) from error
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise WalCorruptionError(
                f"{manifest_path}: unsupported manifest format {manifest.get('format')!r}"
            )
        sealed = manifest["segments"]
    sealed_names = {entry["file"] for entry in sealed}
    seq = 0
    for entry in sealed:
        path = os.path.join(directory, entry["file"])
        if not os.path.exists(path):
            raise WalCorruptionError(f"{path}: sealed segment missing")
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) != entry["size"] or zlib.crc32(blob) != entry["crc32"]:
            raise WalCorruptionError(f"{path}: sealed segment fails manifest checksum")
        payloads, _, tear = _scan_frames(blob)
        if tear is not None or len(payloads) != entry["records"]:
            raise WalCorruptionError(f"{path}: sealed segment framing damaged")
        for payload in payloads:
            yield seq, decode_event(payload)
            seq += 1
    unsealed = sorted(
        name
        for name in os.listdir(directory)
        if _SEGMENT_PATTERN.match(name) and name not in sealed_names
    )
    if len(unsealed) > 1:
        raise WalCorruptionError(f"{directory}: multiple unsealed segments: {unsealed}")
    for name in unsealed:
        path = os.path.join(directory, name)
        with open(path, "rb") as handle:
            blob = handle.read()
        payloads, valid_end, tear = _scan_frames(blob)
        for payload in payloads:
            yield seq, decode_event(payload)
            seq += 1
        if tear is not None:
            raise TornTailError(
                TornTail(
                    segment=name,
                    offset=valid_end,
                    valid_records=len(payloads),
                    reason=tear,
                )
            )
