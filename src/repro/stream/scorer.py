"""Online scoring loop: micro-batching arriving events through the
serving stack with bounded-queue backpressure and lag gauges.

The :class:`StreamScorer` sits between the durable
:class:`~repro.stream.wal.EventLog` and a live
:class:`~repro.serving.service.ScoringService`:

1. :meth:`ingest` makes an event durable (WAL append) and enqueues it —
   or refuses it (``False``) when the bounded queue is full, which is
   the backpressure signal a real ingress would turn into HTTP 429s;
2. :meth:`pump` drains the queue in micro-batches: each batch is
   applied to the live graph through the
   :class:`~repro.stream.builder.IncrementalGraphBuilder` (one flush =
   one version bump = one cache rollover), scored with
   ``service.score_batch``, and fed to the feedback plane (delayed
   labels → prequential AUC, PSI/KS drift, optional fine-tune);
3. periodic **compaction** consolidates the delta-merged CSR.

Everything advances on the injected clock, so on a
:class:`~repro.reliability.faults.ManualClock` a replay of the same
event sequence is bit-reproducible — the ``repro stream --demo`` gate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

import numpy as np

from ..data.events import TxnEvent
from ..serving.service import ScoreRequest, ScoreResponse, ScoringService
from .builder import IncrementalGraphBuilder
from .feedback import DriftConfig, DriftDetector, LabelFeed, OnlineAUC, OnlineFineTuner
from .wal import EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry


@dataclass
class StreamConfig:
    """Operating envelope of one :class:`StreamScorer`."""

    batch_size: int = 16
    queue_capacity: int = 256
    label_delay_s: float = 2.0
    compact_every: int = 256  # applied events between compactions
    auc_window: int = 512
    labelled_window: int = 1024
    drift: DriftConfig = field(default_factory=DriftConfig)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.compact_every < 1:
            raise ValueError("compact_every must be >= 1")


@dataclass
class StreamHealth:
    """Snapshot for ``repro healthcheck`` and the stream demo output."""

    lag_events: int
    lag_seconds: float
    wal_segments: int
    wal_records: int
    last_compaction_version: int
    graph_version: int
    graph_nodes: int
    graph_edges: int
    events_scored: int
    labels_matured: int
    labels_pending: int
    backpressure_rejections: int
    online_auc: float
    drift_alerts: int
    finetune_updates: int

    def describe(self) -> str:
        auc = "n/a" if np.isnan(self.online_auc) else f"{self.online_auc:.4f}"
        return "\n".join(
            [
                "stream health",
                f"  lag                 : {self.lag_events} events / {self.lag_seconds:.3f}s",
                f"  wal                 : {self.wal_segments} segments, {self.wal_records} records",
                f"  graph               : {self.graph_nodes} nodes, {self.graph_edges} edges, version {self.graph_version}",
                f"  last compaction     : version {self.last_compaction_version}",
                f"  scored              : {self.events_scored} events",
                f"  labels              : {self.labels_matured} matured, {self.labels_pending} pending",
                f"  backpressure        : {self.backpressure_rejections} rejected ingests",
                f"  online auc          : {auc}",
                f"  drift alerts        : {self.drift_alerts}",
                f"  finetune updates    : {self.finetune_updates}",
            ]
        )


class StreamScorer:
    """Micro-batching bridge from an event stream to the scoring stack."""

    def __init__(
        self,
        service: ScoringService,
        builder: IncrementalGraphBuilder,
        wal: Optional[EventLog] = None,
        config: Optional[StreamConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        finetuner: Optional[OnlineFineTuner] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if builder.graph is not service.graph:
            raise ValueError(
                "builder and service must share one live graph object "
                "(the SubgraphCache keys on its identity)"
            )
        self.service = service
        self.builder = builder
        self.wal = wal
        self.config = config or StreamConfig()
        self.clock = clock if clock is not None else service._clock
        self.finetuner = finetuner
        self.label_feed = LabelFeed(self.config.label_delay_s)
        self.online_auc = OnlineAUC(window=self.config.auc_window)
        self.score_drift = DriftDetector("score", self.config.drift, registry)
        self.feature_drift = DriftDetector("feature", self.config.drift, registry)
        self.events_scored = 0
        self.labels_matured = 0
        self.backpressure_rejections = 0
        self._queue: Deque[TxnEvent] = deque()
        self._scores: Dict[int, float] = {}
        self._labelled_window: Deque[int] = deque(maxlen=self.config.labelled_window)
        self._events_since_compaction = 0
        self._last_event_ts: Optional[float] = None
        self._instrument(registry)

    def _instrument(self, registry: Optional["MetricsRegistry"]) -> None:
        if registry is None:
            self._lag_events_gauge = None
            return
        self._lag_events_gauge = registry.gauge(
            "stream_lag_events", "Events ingested but not yet scored."
        )
        self._lag_seconds_gauge = registry.gauge(
            "stream_lag_seconds", "Event-time age of the oldest queued event."
        )
        self._ingested_counter = registry.counter(
            "stream_events_ingested_total", "Events accepted into the stream queue."
        )
        self._scored_counter = registry.counter(
            "stream_events_scored_total", "Events scored by the micro-batch loop."
        )
        self._backpressure_counter = registry.counter(
            "stream_backpressure_total", "Ingests refused by the bounded queue."
        )
        self._matured_counter = registry.counter(
            "stream_labels_matured_total", "Chargeback labels applied to the graph."
        )
        self._auc_gauge = registry.gauge(
            "stream_online_auc", "Windowed prequential AUC over matured labels."
        )
        self._wal_segments_gauge = registry.gauge(
            "stream_wal_segments", "Segments (sealed + active) in the event log."
        )

    # ------------------------------------------------------------------
    @property
    def lag_events(self) -> int:
        return len(self._queue)

    @property
    def lag_seconds(self) -> float:
        if not self._queue:
            return 0.0
        return max(0.0, float(self.clock()) - self._queue[0].timestamp)

    def _update_lag_gauges(self) -> None:
        if self._lag_events_gauge is None:
            return
        self._lag_events_gauge.set(self.lag_events)
        self._lag_seconds_gauge.set(self.lag_seconds)
        if self.wal is not None:
            self._wal_segments_gauge.set(self.wal.segment_count())

    # ------------------------------------------------------------------
    def ingest(self, event: TxnEvent) -> bool:
        """Admit one event: durable append + enqueue.

        Returns ``False`` — and leaves *no* trace, not even a WAL
        record — when the bounded queue is full; the caller must
        :meth:`pump` (or shed) and retry. Capacity is checked before
        the WAL append so a refused ingest is never replayed.
        """
        if len(self._queue) >= self.config.queue_capacity:
            self.backpressure_rejections += 1
            if self._lag_events_gauge is not None:
                self._backpressure_counter.inc()
            return False
        if self.wal is not None:
            self.wal.append(event)
        self._queue.append(event)
        if self._lag_events_gauge is not None:
            self._ingested_counter.inc()
        self._update_lag_gauges()
        return True

    # ------------------------------------------------------------------
    def pump(self, max_batches: Optional[int] = None) -> List[ScoreResponse]:
        """Drain queued events through build → score → feedback.

        Processes up to ``max_batches`` micro-batches (``None`` = all),
        then matures any due labels. Responses come back in event
        order, so replaying the same stream yields the same list.
        """
        responses: List[ScoreResponse] = []
        batches = 0
        while self._queue and (max_batches is None or batches < max_batches):
            batch: List[TxnEvent] = []
            while self._queue and len(batch) < self.config.batch_size:
                batch.append(self._queue.popleft())
            nodes = [self.builder.apply(event) for event in batch]
            self.builder.flush()
            self._invalidate_cache()
            requests = [
                ScoreRequest(node=node, features=event.features)
                for node, event in zip(nodes, batch)
            ]
            batch_responses = self.service.score_batch(requests)
            for event, response in zip(batch, batch_responses):
                self._scores[event.txn_id] = response.score
                if event.label >= 0:
                    self.label_feed.offer(event.txn_id, event.label, event.timestamp)
                self.score_drift.observe(response.score)
                self.feature_drift.observe(float(np.mean(event.features)))
            self.events_scored += len(batch)
            self._events_since_compaction += len(batch)
            self._last_event_ts = batch[-1].timestamp
            if self._lag_events_gauge is not None:
                self._scored_counter.inc(len(batch))
            if self._events_since_compaction >= self.config.compact_every:
                self.builder.compact()
                self._events_since_compaction = 0
            responses.extend(batch_responses)
            batches += 1
        self.mature_labels()
        self.score_drift.check()
        self.feature_drift.check()
        self._update_lag_gauges()
        return responses

    def _invalidate_cache(self) -> None:
        cache = self.service.cache
        if cache is not None:
            cache.invalidate(self.service.graph)

    # ------------------------------------------------------------------
    def mature_labels(self) -> int:
        """Apply every chargeback verdict that has matured by now."""
        matured = self.label_feed.due(float(self.clock()))
        if not matured:
            return 0
        for txn_id, label in matured:
            node = self.builder.apply_label(txn_id, label)
            score = self._scores.pop(txn_id, None)
            if score is not None:
                self.online_auc.add(label, score)
            self._labelled_window.append(node)
        self.labels_matured += len(matured)
        self._invalidate_cache()
        if self._lag_events_gauge is not None:
            self._matured_counter.inc(len(matured))
            auc = self.online_auc.auc()
            if not np.isnan(auc):
                self._auc_gauge.set(auc)
        if self.finetuner is not None:
            self.finetuner.notify_labels(len(matured))
            self.finetuner.maybe_update(
                self.builder.graph, list(self._labelled_window)
            )
        return len(matured)

    # ------------------------------------------------------------------
    def health(self) -> StreamHealth:
        return StreamHealth(
            lag_events=self.lag_events,
            lag_seconds=self.lag_seconds,
            wal_segments=self.wal.segment_count() if self.wal is not None else 0,
            wal_records=self.wal.record_count if self.wal is not None else 0,
            last_compaction_version=self.builder.last_compaction_version,
            graph_version=self.builder.graph.version,
            graph_nodes=self.builder.graph.num_nodes,
            graph_edges=self.builder.graph.num_edges,
            events_scored=self.events_scored,
            labels_matured=self.labels_matured,
            labels_pending=self.label_feed.pending,
            backpressure_rejections=self.backpressure_rejections,
            online_auc=self.online_auc.auc(),
            drift_alerts=len(self.score_drift.alerts) + len(self.feature_drift.alerts),
            finetune_updates=len(self.finetuner.updates) if self.finetuner else 0,
        )
