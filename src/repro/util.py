"""Small dependency-free helpers shared across layers.

Lives at the package root (below ``graph``, ``train`` and ``serving``)
so every layer can import it without cycles. :func:`batched` is the one
index-slicing helper the whole stack shares — the training epoch loops,
the KV feature-fetch chunking, and the serving micro-batch coalescer
all cut sequences the same way.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T", bound=Sequence)

__all__ = ["batched"]


def batched(items: T, batch_size: int) -> List[T]:
    """Split a sliceable sequence (numpy array, list) into consecutive batches.

    Every item appears in exactly one batch, order preserved; the last
    batch may be short. Works on anything supporting ``len`` and slice
    indexing — index arrays in the trainers, request lists in the
    serving micro-batcher.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [items[i : i + batch_size] for i in range(0, len(items), batch_size)]
