"""Small dependency-free helpers shared across layers.

Lives at the package root (below ``graph``, ``train`` and ``serving``)
so every layer can import it without cycles. :func:`batched` is the one
index-slicing helper the whole stack shares — the training epoch loops,
the KV feature-fetch chunking, and the serving micro-batch coalescer
all cut sequences the same way. :func:`nearest_rank_index` is the one
percentile-selection rule: every quantile the stack reports
(``latency_percentiles``, ``Histogram.percentile``, the hedged-read
thresholds) selects the same sorted index, so a p99 from the benchmark
tables, the Prometheus exposition, and the replica router all mean the
same observed sample.
"""

from __future__ import annotations

import math
from typing import List, Sequence, TypeVar

T = TypeVar("T", bound=Sequence)

__all__ = ["batched", "nearest_rank_index"]


def nearest_rank_index(percentile: float, count: int) -> int:
    """Sorted-array index of the nearest-rank percentile for ``count`` samples.

    Nearest-rank definition: the smallest sample such that at least
    ``percentile`` percent of the data is <= it, i.e. index
    ``ceil(p/100 * n) - 1`` clamped to ``[0, n - 1]``. Unlike linear
    interpolation this always lands on an *observed* sample — a p99
    latency that nobody ever experienced is not a latency.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    rank = math.ceil(percentile / 100.0 * count) - 1
    return max(0, min(count - 1, rank))


def batched(items: T, batch_size: int) -> List[T]:
    """Split a sliceable sequence (numpy array, list) into consecutive batches.

    Every item appears in exactly one batch, order preserved; the last
    batch may be short. Works on anything supporting ``len`` and slice
    indexing — index arrays in the trainers, request lists in the
    serving micro-batcher.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [items[i : i + batch_size] for i in range(0, len(items), batch_size)]
