"""Time-ordered transaction events — the streaming view of the log.

A :class:`~repro.data.records.TransactionLog` is a batch artefact; the
production system xFraud fronts (Sec. 1) sees the same rows as a
*stream*: one :class:`TxnEvent` per transaction, in timestamp order,
with the fraud label unknown at arrival (chargebacks land days later —
the stream layer's :class:`~repro.stream.feedback.LabelFeed` models
that lag). :func:`export_events` is the generator's event-stream export
mode: the same seed produces the same log and therefore the same event
sequence, which is what makes the ``repro stream --demo`` replay gate
and the WAL round-trip tests deterministic.

Events also define their own durable byte codec (:func:`encode_event` /
:func:`decode_event`): a canonical JSON header (sorted keys) followed
by the raw little-endian float64 feature block. The encoding is
byte-stable across runs and platforms, so the stream WAL can frame and
CRC these payloads and a replayed log diffs byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from .records import TransactionLog, TransactionRecord

_CODEC_VERSION = 1
_HEADER_SEP = b"\x00"


class EventCodecError(ValueError):
    """An event payload does not decode to a known event shape."""


@dataclass(frozen=True)
class TxnEvent:
    """One transaction arriving on the stream.

    ``label`` carries the generator's ground truth so the feedback
    plane can reveal it after the chargeback delay; a real deployment
    would receive it in a separate chargeback feed. Scoring never reads
    it — the graph stores ``-1`` until the label feed matures.
    """

    txn_id: int
    buyer_id: Optional[int]
    email_id: int
    pmt_id: int
    addr_id: int
    timestamp: float
    features: np.ndarray = field(compare=False)
    label: int = -1
    scenario: str = "benign"

    def linked_entities(self) -> List[tuple]:
        """(entity_kind, entity_id) pairs, mirroring TransactionRecord."""
        links = [
            ("pmt", self.pmt_id),
            ("email", self.email_id),
            ("addr", self.addr_id),
        ]
        if self.buyer_id is not None:
            links.append(("buyer", self.buyer_id))
        return links


def encode_event(event: TxnEvent) -> bytes:
    """Serialize deterministically: canonical JSON header + raw floats."""
    features = np.ascontiguousarray(event.features, dtype="<f8")
    header = {
        "v": _CODEC_VERSION,
        "kind": "txn",
        "txn_id": int(event.txn_id),
        "buyer_id": None if event.buyer_id is None else int(event.buyer_id),
        "email_id": int(event.email_id),
        "pmt_id": int(event.pmt_id),
        "addr_id": int(event.addr_id),
        "timestamp": float(event.timestamp),
        "label": int(event.label),
        "scenario": event.scenario,
        "dim": int(features.shape[0]),
    }
    head = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return head + _HEADER_SEP + features.tobytes()


def decode_event(payload: bytes) -> TxnEvent:
    """Inverse of :func:`encode_event`; raises :class:`EventCodecError`."""
    head, sep, body = payload.partition(_HEADER_SEP)
    if not sep:
        raise EventCodecError("event payload missing header separator")
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise EventCodecError(f"bad event header: {error}") from error
    if header.get("v") != _CODEC_VERSION or header.get("kind") != "txn":
        raise EventCodecError(f"unsupported event header: {header!r}")
    dim = int(header["dim"])
    if len(body) != dim * 8:
        raise EventCodecError(
            f"feature block is {len(body)} bytes, expected {dim * 8}"
        )
    features = np.frombuffer(body, dtype="<f8", count=dim).copy()
    return TxnEvent(
        txn_id=int(header["txn_id"]),
        buyer_id=None if header["buyer_id"] is None else int(header["buyer_id"]),
        email_id=int(header["email_id"]),
        pmt_id=int(header["pmt_id"]),
        addr_id=int(header["addr_id"]),
        timestamp=float(header["timestamp"]),
        features=features,
        label=int(header["label"]),
        scenario=str(header["scenario"]),
    )


def _event_of(record: TransactionRecord) -> TxnEvent:
    return TxnEvent(
        txn_id=record.txn_id,
        buyer_id=record.buyer_id,
        email_id=record.email_id,
        pmt_id=record.pmt_id,
        addr_id=record.addr_id,
        timestamp=record.timestamp,
        features=np.asarray(record.features, dtype=np.float64),
        label=int(record.label),
        scenario=record.scenario,
    )


def export_events(
    log: TransactionLog, interleave_seed: Optional[int] = None
) -> List[TxnEvent]:
    """Export a transaction log as a time-ordered event stream.

    The generator's clock is globally monotonic, so append order already
    is time order for a freshly generated log; the explicit stable sort
    on ``(timestamp, txn_id)`` makes the contract hold for *any* log
    (e.g. after :meth:`~repro.data.generator.TransactionGenerator.
    downsample_benign`, or logs assembled by tests) and pins a total
    order so the same seed always yields the same event sequence.

    The generator emits scenario by scenario (all benign buyers, then
    the fraud campaigns), so its raw time axis has fraud clustered at
    the end — unrealistic for a stream, where campaigns overlap organic
    traffic. ``interleave_seed`` fixes that deterministically: events
    are permuted by a seeded RNG and re-timed onto the same (sorted)
    multiset of timestamps, preserving every transaction's features,
    links, and label while mixing the scenarios along the clock.
    """
    events = [_event_of(record) for record in log]
    events.sort(key=lambda event: (event.timestamp, event.txn_id))
    if interleave_seed is None:
        return events
    rng = np.random.default_rng(interleave_seed)
    order = rng.permutation(len(events))
    times = [event.timestamp for event in events]  # already ascending
    return [
        replace(events[int(position)], timestamp=timestamp)
        for position, timestamp in zip(order, times)
    ]
