"""Transaction-log record types.

A transaction record is one row of the platform's transaction log
(Figure 3 of the paper): a transaction id, the linking entities it
uses (buyer account, billing email, payment token, shipping address),
the feature vector produced by the upstream risk-identification system,
and the fraud/legit flag used for supervision.

Guest checkouts (Appendix G.3) have ``buyer_id = None`` — the paper
highlights that xFraud can still link them through payment token,
email, or shipping address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class TransactionRecord:
    """One transaction-log row."""

    txn_id: int
    buyer_id: Optional[int]
    email_id: int
    pmt_id: int
    addr_id: int
    label: int
    timestamp: float
    features: np.ndarray
    scenario: str = "benign"

    def linked_entities(self) -> List[tuple]:
        """(entity_kind, entity_id) pairs this transaction links to."""
        links = [
            ("pmt", self.pmt_id),
            ("email", self.email_id),
            ("addr", self.addr_id),
        ]
        if self.buyer_id is not None:
            links.append(("buyer", self.buyer_id))
        return links

    @property
    def is_guest_checkout(self) -> bool:
        return self.buyer_id is None


@dataclass
class TransactionLog:
    """A batch of transaction records plus bookkeeping."""

    records: List[TransactionRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def append(self, record: TransactionRecord) -> None:
        self.records.append(record)

    def extend(self, records: List[TransactionRecord]) -> None:
        self.records.extend(records)

    def fraud_rate(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.label for r in self.records]))

    def feature_matrix(self) -> np.ndarray:
        """Stacked transaction features in record order."""
        if not self.records:
            return np.zeros((0, 0))
        return np.stack([r.features for r in self.records])

    def labels(self) -> np.ndarray:
        return np.array([r.label for r in self.records], dtype=np.int64)

    def scenario_counts(self) -> dict:
        counts: dict = {}
        for record in self.records:
            counts[record.scenario] = counts.get(record.scenario, 0) + 1
        return counts
