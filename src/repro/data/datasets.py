"""Dataset presets mirroring eBay-small / eBay-large / eBay-xlarge.

The paper's datasets (Table 2) are proprietary, so each preset here is
a scaled-down synthetic stand-in preserving the properties the models
actually see:

============ ======== ============ ===========================
preset       features target shape paper counterpart
============ ======== ============ ===========================
small-sim    114      ~3–6k nodes  eBay-small (289K nodes)
large-sim    480      ~15–30k      eBay-large (8.9M nodes)
xlarge-sim   480      ~30–60k      eBay-xlarge (1.1B nodes)
============ ======== ============ ===========================

All presets keep: five node types with txn dominating (Table 6),
sparsity in the 1.5–3.5 edges/node band (Table 5), and a post-
downsampling fraud rate in the 3.5–4.5% band (Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..graph.builder import BuildConfig, GraphBuilder, train_test_split
from ..graph.hetero import HeteroGraph
from .generator import GeneratorConfig, TransactionGenerator
from .records import TransactionLog


@dataclass
class DatasetBundle:
    """A built dataset: graph + index + splits + provenance."""

    name: str
    graph: HeteroGraph
    log: TransactionLog
    index: Dict[str, Dict[int, int]]
    train_nodes: np.ndarray
    test_nodes: np.ndarray

    def summary(self) -> Dict[str, object]:
        """Row of Table 2 plus the node-type mix of Table 6."""
        return {
            "dataset": self.name,
            "features": self.graph.feature_dim,
            "graph_type": "hetero",
            "num_nodes": self.graph.num_nodes,
            "num_edges": self.graph.num_edges // 2,
            "fraud_pct": round(100.0 * self.graph.fraud_rate(), 2),
            "edges_per_node": round(self.graph.edges_per_node(), 2),
            "node_type_counts": self.graph.node_type_counts(),
        }


def _build(name: str, config: GeneratorConfig, test_fraction: float = 0.3) -> DatasetBundle:
    generator = TransactionGenerator(config)
    log = generator.downsample_benign(generator.generate())
    graph, index = GraphBuilder(BuildConfig()).build(log)
    train_nodes, _, test_nodes = train_test_split(
        graph, test_fraction=test_fraction, seed=config.seed
    )
    return DatasetBundle(
        name=name,
        graph=graph,
        log=log,
        index=index,
        train_nodes=train_nodes,
        test_nodes=test_nodes,
    )


def ebay_small_sim(seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    """Small preset: 114-dim features, a few thousand nodes."""
    config = GeneratorConfig(
        num_benign_buyers=int(700 * scale),
        num_stolen_cards=int(12 * scale),
        num_warehouse_rings=max(2, int(4 * scale)),
        num_cultivated_accounts=int(6 * scale),
        num_guest_checkouts=int(25 * scale),
        num_apartment_buildings=max(2, int(4 * scale)),
        feature_dim=114,
        risk_signal=0.4,
        seed=seed,
    )
    return _build("ebay-small-sim", config)


def ebay_large_sim(seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    """Large preset: 480-dim features, tens of thousands of nodes."""
    config = GeneratorConfig(
        num_benign_buyers=int(2500 * scale),
        num_stolen_cards=int(50 * scale),
        num_warehouse_rings=max(4, int(16 * scale)),
        num_cultivated_accounts=int(24 * scale),
        num_guest_checkouts=int(100 * scale),
        num_apartment_buildings=max(3, int(12 * scale)),
        feature_dim=480,
        risk_signal=0.4,
        seed=seed,
    )
    return _build("ebay-large-sim", config)


def ebay_xlarge_sim(seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    """Extra-large preset: the end-to-end distributed workload."""
    config = GeneratorConfig(
        num_benign_buyers=int(5000 * scale),
        num_stolen_cards=int(100 * scale),
        num_warehouse_rings=max(8, int(32 * scale)),
        num_cultivated_accounts=int(48 * scale),
        num_guest_checkouts=int(200 * scale),
        num_apartment_buildings=max(4, int(24 * scale)),
        feature_dim=480,
        risk_signal=0.4,
        seed=seed,
    )
    return _build("ebay-xlarge-sim", config)


_PRESETS = {
    "ebay-small-sim": ebay_small_sim,
    "ebay-large-sim": ebay_large_sim,
    "ebay-xlarge-sim": ebay_xlarge_sim,
}


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    """Load a preset by name ('ebay-small-sim' etc.)."""
    if name not in _PRESETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(_PRESETS)}")
    return _PRESETS[name](seed=seed, scale=scale)


def dataset_summary(*bundles: DatasetBundle) -> Tuple[Dict[str, object], ...]:
    """Table-2-style summary rows for any number of bundles."""
    return tuple(bundle.summary() for bundle in bundles)
