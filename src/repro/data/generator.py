"""Synthetic eBay-like transaction-log generator.

The real eBay datasets are proprietary, so this module synthesises
transaction logs whose *graph mechanics* match what the paper describes
and exploits:

* **Benign buyers** — stable accounts with their own email, one or two
  payment tokens and shipping addresses, producing legitimate
  transactions (the homophilic "legit" background).
* **Stolen cards** (Sec. 3.1) — a payment token first used by its
  legitimate owner, later bursts of fraudulent transactions by a
  different (fraudster) buyer. A legitimate user does not imply all its
  transactions are legitimate.
* **Warehouse fraud rings** (Sec. 5.2, Figure 11) — a generic shipping
  address (warehouse) shared by many buyers with mixed fraud/benign
  transactions; linkage through the address is the stable signal.
* **Cultivated accounts** (Appendix H.5) — accounts that execute benign
  transactions for a long time to gain trust, then launch an attack.
* **Guest checkouts** (Appendix G.3) — transactions without a buyer
  link; some are linkable through a suspicious payment token or email,
  some are fully anonymous (the hard case the paper discusses).

Transaction features emulate the upstream risk identifier: a noisy
risk-score block correlated with the label plus item-category one-hot
and nuisance dimensions. The feature signal is deliberately imperfect
so that graph structure carries real information — exactly the regime
in which the paper's heterogeneous GNN beats feature-only models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .records import TransactionLog, TransactionRecord

NUM_ITEM_CATEGORIES = 8


@dataclass
class GeneratorConfig:
    """Knobs of the synthetic workload.

    The defaults produce an ``eBay-small``-like graph: ~70% txn nodes,
    sparsity around two edges per node, fraud rate a few percent after
    downsampling.
    """

    num_benign_buyers: int = 700
    benign_txns_per_buyer: tuple = (4, 12)
    num_stolen_cards: int = 8
    stolen_card_burst: tuple = (3, 7)
    num_warehouse_rings: int = 3
    ring_buyers: tuple = (4, 7)
    ring_txns_per_buyer: tuple = (1, 3)
    ring_fraud_prob: float = 0.75
    num_cultivated_accounts: int = 5
    cultivated_benign: tuple = (4, 8)
    cultivated_attack: tuple = (2, 4)
    num_guest_checkouts: int = 20
    guest_fraud_prob: float = 0.4
    # Benign address hubs: apartment buildings / PO boxes where many
    # unrelated legitimate buyers ship. Structurally these mimic the
    # fraud warehouses (a high-degree shared address), so telling them
    # apart requires knowing *which entity type* is shared and by whom
    # — the heterogeneity signal the xFraud detector exploits and
    # type-blind models cannot see.
    num_apartment_buildings: int = 3
    apartment_residents: tuple = (6, 12)
    apartment_txns_per_resident: tuple = (1, 3)
    # Entity sharing between benign buyers (households sharing an
    # address). Payment tokens are personal: a token appearing under
    # several buyers is the stolen-card signature, so benign pmt
    # sharing is kept rare.
    addr_sharing: float = 0.25
    pmt_sharing: float = 0.02
    feature_dim: int = 114
    feature_noise: float = 1.0
    risk_signal: float = 1.2
    benign_downsample: float = 0.6
    seed: int = 0


class _EntityAllocator:
    """Hands out fresh integer ids per entity kind."""

    def __init__(self) -> None:
        self._next = {"buyer": 0, "email": 0, "pmt": 0, "addr": 0, "txn": 0}

    def new(self, kind: str) -> int:
        value = self._next[kind]
        self._next[kind] = value + 1
        return value

    def count(self, kind: str) -> int:
        return self._next[kind]


@dataclass
class _BuyerProfile:
    buyer_id: int
    email_id: int
    pmt_ids: List[int]
    addr_ids: List[int]


class TransactionGenerator:
    """Generates a :class:`TransactionLog` according to a config."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self._alloc = _EntityAllocator()
        self._clock = 0.0
        self._shared_addrs: List[int] = []
        self._shared_pmts: List[int] = []

    # ------------------------------------------------------------------
    # Feature model
    # ------------------------------------------------------------------
    #: How visible each fraud scenario is to the upstream feature-based
    #: risk identifier. Stolen-card purchases deliberately mimic normal
    #: buying behaviour, so their *features* look benign — that fraud
    #: is only detectable through the graph (a payment token shared
    #: across buyer accounts), which is precisely the signal a
    #: heterogeneous GNN can exploit and type-blind models cannot.
    SCENARIO_RISK_VISIBILITY = {
        "stolen_card": 0.0,
        "guest_linked": 0.0,
        "cultivated_attack": 0.5,
        "warehouse_ring": 1.0,
        "guest_anonymous": 1.0,
    }

    def _features(self, label: int, scenario: str) -> np.ndarray:
        """Risk-identifier feature vector for one transaction.

        Layout: [risk block | item-category one-hot | nuisance noise].
        The risk block mean is shifted for fraud (scenario-dependent),
        with enough noise that features alone are an imperfect
        detector.
        """
        cfg = self.config
        risk_dim = min(16, cfg.feature_dim)
        features = self.rng.normal(0.0, cfg.feature_noise, size=cfg.feature_dim)
        visibility = self.SCENARIO_RISK_VISIBILITY.get(scenario, 1.0)
        shift = cfg.risk_signal * visibility if label == 1 else 0.0
        # Guest checkouts look riskier to the upstream identifier even
        # when benign, which is one source of false positives.
        if scenario.startswith("guest"):
            shift += 0.3
        features[:risk_dim] += shift
        category = self.rng.integers(NUM_ITEM_CATEGORIES)
        cat_start = risk_dim
        cat_stop = min(cat_start + NUM_ITEM_CATEGORIES, cfg.feature_dim)
        if cat_start + category < cat_stop:
            features[cat_start + category] += 2.0
        return features

    def _tick(self) -> float:
        self._clock += float(self.rng.exponential(1.0))
        return self._clock

    def _record(
        self,
        buyer_id: Optional[int],
        email_id: int,
        pmt_id: int,
        addr_id: int,
        label: int,
        scenario: str,
    ) -> TransactionRecord:
        return TransactionRecord(
            txn_id=self._alloc.new("txn"),
            buyer_id=buyer_id,
            email_id=email_id,
            pmt_id=pmt_id,
            addr_id=addr_id,
            label=label,
            timestamp=self._tick(),
            features=self._features(label, scenario),
            scenario=scenario,
        )

    def _new_buyer(
        self, num_pmt: int = 1, num_addr: int = 1, allow_sharing: bool = False
    ) -> _BuyerProfile:
        def new_addr() -> int:
            if (
                allow_sharing
                and self._shared_addrs
                and self.rng.random() < self.config.addr_sharing
            ):
                return int(self.rng.choice(self._shared_addrs))
            addr = self._alloc.new("addr")
            if allow_sharing:
                self._shared_addrs.append(addr)
            return addr

        def new_pmt() -> int:
            if (
                allow_sharing
                and self._shared_pmts
                and self.rng.random() < self.config.pmt_sharing
            ):
                return int(self.rng.choice(self._shared_pmts))
            pmt = self._alloc.new("pmt")
            if allow_sharing:
                self._shared_pmts.append(pmt)
            return pmt

        return _BuyerProfile(
            buyer_id=self._alloc.new("buyer"),
            email_id=self._alloc.new("email"),
            pmt_ids=[new_pmt() for _ in range(num_pmt)],
            addr_ids=[new_addr() for _ in range(num_addr)],
        )

    def _rand_range(self, bounds: tuple) -> int:
        low, high = bounds
        return int(self.rng.integers(low, high + 1))

    # ------------------------------------------------------------------
    # Scenario emitters
    # ------------------------------------------------------------------
    def _emit_benign_buyers(self, log: TransactionLog) -> List[_BuyerProfile]:
        profiles = []
        for _ in range(self.config.num_benign_buyers):
            profile = self._new_buyer(
                num_pmt=self._rand_range((1, 2)),
                num_addr=self._rand_range((1, 2)),
                allow_sharing=True,
            )
            profiles.append(profile)
            for _ in range(self._rand_range(self.config.benign_txns_per_buyer)):
                log.append(
                    self._record(
                        buyer_id=profile.buyer_id,
                        email_id=profile.email_id,
                        pmt_id=int(self.rng.choice(profile.pmt_ids)),
                        addr_id=int(self.rng.choice(profile.addr_ids)),
                        label=0,
                        scenario="benign",
                    )
                )
        return profiles

    def _emit_stolen_cards(self, log: TransactionLog, victims: List[_BuyerProfile]) -> None:
        """A victim's payment token reused by a fraudster account."""
        if not victims:
            return
        for _ in range(self.config.num_stolen_cards):
            victim = victims[int(self.rng.integers(len(victims)))]
            stolen_pmt = int(self.rng.choice(victim.pmt_ids))
            thief = self._new_buyer()
            for _ in range(self._rand_range(self.config.stolen_card_burst)):
                log.append(
                    self._record(
                        buyer_id=thief.buyer_id,
                        email_id=thief.email_id,
                        pmt_id=stolen_pmt,
                        addr_id=int(self.rng.choice(thief.addr_ids)),
                        label=1,
                        scenario="stolen_card",
                    )
                )

    def _emit_warehouse_rings(self, log: TransactionLog) -> None:
        """Many buyers shipping to one warehouse address, mostly fraud."""
        for _ in range(self.config.num_warehouse_rings):
            warehouse_addr = self._alloc.new("addr")
            for _ in range(self._rand_range(self.config.ring_buyers)):
                member = self._new_buyer()
                for _ in range(self._rand_range(self.config.ring_txns_per_buyer)):
                    label = int(self.rng.random() < self.config.ring_fraud_prob)
                    log.append(
                        self._record(
                            buyer_id=member.buyer_id,
                            email_id=member.email_id,
                            pmt_id=int(self.rng.choice(member.pmt_ids)),
                            addr_id=warehouse_addr,
                            label=label,
                            scenario="warehouse_ring",
                        )
                    )

    def _emit_apartment_buildings(self, log: TransactionLog) -> None:
        """Benign address hubs that structurally mimic warehouses."""
        for _ in range(self.config.num_apartment_buildings):
            building_addr = self._alloc.new("addr")
            for _ in range(self._rand_range(self.config.apartment_residents)):
                resident = self._new_buyer()
                for _ in range(self._rand_range(self.config.apartment_txns_per_resident)):
                    log.append(
                        self._record(
                            buyer_id=resident.buyer_id,
                            email_id=resident.email_id,
                            pmt_id=int(self.rng.choice(resident.pmt_ids)),
                            addr_id=building_addr,
                            label=0,
                            scenario="apartment",
                        )
                    )

    def _emit_cultivated_accounts(self, log: TransactionLog) -> None:
        """Benign history first, then a fraud burst from the same account."""
        for _ in range(self.config.num_cultivated_accounts):
            account = self._new_buyer()
            for _ in range(self._rand_range(self.config.cultivated_benign)):
                log.append(
                    self._record(
                        buyer_id=account.buyer_id,
                        email_id=account.email_id,
                        pmt_id=account.pmt_ids[0],
                        addr_id=account.addr_ids[0],
                        label=0,
                        scenario="cultivated",
                    )
                )
            attack_pmt = self._alloc.new("pmt")
            for _ in range(self._rand_range(self.config.cultivated_attack)):
                log.append(
                    self._record(
                        buyer_id=account.buyer_id,
                        email_id=account.email_id,
                        pmt_id=attack_pmt,
                        addr_id=account.addr_ids[0],
                        label=1,
                        scenario="cultivated_attack",
                    )
                )

    def _emit_guest_checkouts(self, log: TransactionLog, profiles: List[_BuyerProfile]) -> None:
        """Buyer-less transactions; some link to existing risky entities."""
        for _ in range(self.config.num_guest_checkouts):
            fraud = int(self.rng.random() < self.config.guest_fraud_prob)
            if fraud and profiles and self.rng.random() < 0.5:
                # Linkable guest fraud: reuses a stolen token from an
                # existing profile (detectable through graph linkage).
                victim = profiles[int(self.rng.integers(len(profiles)))]
                pmt_id = int(self.rng.choice(victim.pmt_ids))
                scenario = "guest_linked"
            else:
                pmt_id = self._alloc.new("pmt")
                scenario = "guest_anonymous"
            log.append(
                self._record(
                    buyer_id=None,
                    email_id=self._alloc.new("email"),
                    pmt_id=pmt_id,
                    addr_id=self._alloc.new("addr"),
                    label=fraud,
                    scenario=scenario,
                )
            )

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def generate(self) -> TransactionLog:
        """Produce the raw (pre-filter) transaction log."""
        log = TransactionLog()
        profiles = self._emit_benign_buyers(log)
        self._emit_stolen_cards(log, profiles)
        self._emit_warehouse_rings(log)
        self._emit_apartment_buildings(log)
        self._emit_cultivated_accounts(log)
        self._emit_guest_checkouts(log, profiles)
        return log

    def downsample_benign(self, log: TransactionLog, keep_fraction: Optional[float] = None) -> TransactionLog:
        """Keep all fraud and a fraction of benign records (Appendix B).

        Mirrors the paper's label-sampling step that lifts the fraud
        rate from ~0.04% to ~4% before GNN training.
        """
        fraction = self.config.benign_downsample if keep_fraction is None else keep_fraction
        kept = TransactionLog()
        for record in log:
            if record.label == 1 or self.rng.random() < fraction:
                kept.append(record)
        return kept

    def event_stream(self, downsample: bool = True, interleave: bool = False):
        """Event-stream export mode: the synthetic log as a time-ordered
        list of :class:`~repro.data.events.TxnEvent`.

        Same seed ⇒ same event sequence (generation, downsampling, and
        the optional scenario interleave all draw from seeded RNGs, and
        the export order is a total order on ``(timestamp, txn_id)``).
        ``interleave=True`` mixes the scenario-clustered emission order
        along the clock (see :func:`~repro.data.events.export_events`).
        This feeds the ``repro stream --demo`` replay gate and tests.
        """
        from .events import export_events

        log = self.generate()
        if downsample:
            log = self.downsample_benign(log)
        return export_events(
            log, interleave_seed=self.config.seed if interleave else None
        )


def generate_log(config: Optional[GeneratorConfig] = None, downsample: bool = True) -> TransactionLog:
    """Convenience wrapper: generate and optionally downsample a log."""
    generator = TransactionGenerator(config)
    log = generator.generate()
    if downsample:
        log = generator.downsample_benign(log)
    return log


def generate_events(config: Optional[GeneratorConfig] = None, downsample: bool = True):
    """Convenience wrapper: generate a log and export it as events."""
    return TransactionGenerator(config).event_stream(downsample=downsample)
