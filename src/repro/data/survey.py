"""Heterogeneous-graph dataset survey (Appendix A, Table 5 / Figure 1).

The paper situates its workload against the heterogeneous datasets
used in the literature 2015–2021. The survey is static data; we encode
it so the bench target can regenerate the table and the log-log node /
edge landscape of Figure 1, with the three (simulated) xFraud datasets
appended from live statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class SurveyEntry:
    year: int
    paper: str
    dataset: str
    num_nodes: float
    num_edges: float

    @property
    def edges_per_node(self) -> float:
        return self.num_edges / self.num_nodes if self.num_nodes else 0.0


HETERO_DATASET_SURVEY: List[SurveyEntry] = [
    SurveyEntry(2015, "HNE", "BlogCatalog", 5_196, 171_743),
    SurveyEntry(2015, "HNE", "PPI", 16_545, 1_098_711),
    SurveyEntry(2015, "HNE", "DBLP", 69_110, 1_884_236),
    SurveyEntry(2017, "MVE", "Youtube", 14_901, 13_552_130),
    SurveyEntry(2017, "MVE", "Twitter", 304_692, 131_151_083),
    SurveyEntry(2017, "MVE", "Flickr", 35_314, 6_548_830),
    SurveyEntry(2018, "GEM", "GEM-graph", 8e6, 1e7),
    SurveyEntry(2018, "HERec", "Yelp", 95_110, 488_120),
    SurveyEntry(2018, "HERec", "Douban Book", 138_423, 1_026_046),
    SurveyEntry(2018, "HERec", "Douban Movie", 90_241, 1_714_941),
    SurveyEntry(2018, "metapath2vec", "DBIS", 78_366, 326_481),
    SurveyEntry(2018, "metapath2vec", "AMiner CS", 12_522_027, 14_215_558),
    SurveyEntry(2018, "mvn2vec", "Twitter", 116_408, 183_341),
    SurveyEntry(2018, "mvn2vec", "Youtube", 14_900, 7_977_881),
    SurveyEntry(2018, "mvn2vec", "Snapchat", 7_406_859, 131_729_903),
    SurveyEntry(2019, "GATNE", "Alibaba-S", 6_163, 17_865),
    SurveyEntry(2019, "GATNE", "Amazon-GATNE", 312_320, 7_500_100),
    SurveyEntry(2019, "GATNE", "YouTube", 15_088, 13_628_895),
    SurveyEntry(2019, "GATNE", "Twitter", 456_626, 15_367_315),
    SurveyEntry(2019, "GATNE", "Alibaba", 41_991_048, 571_892_183),
    SurveyEntry(2019, "GTN", "DBLP", 26_128, 239_566),
    SurveyEntry(2019, "HAN", "IMDB", 21_420, 86_642),
    SurveyEntry(2019, "HAN", "ACM", 10_942, 547_872),
    SurveyEntry(2019, "HAN", "Yelp", 3_913, 38_680),
    SurveyEntry(2019, "HeGAN", "DBLP", 37_791, 170_794),
    SurveyEntry(2019, "HeGAN", "Aminer", 312_776, 599_951),
    SurveyEntry(2019, "HetGNN", "Movielens", 10_038, 1_014_164),
    SurveyEntry(2019, "HetGNN", "Academic II", 49_708, 137_286),
    SurveyEntry(2019, "HetGNN", "Academic I", 272_272, 544_976),
    SurveyEntry(2019, "HetGNN", "CDs Review", 123_736, 555_050),
    SurveyEntry(2019, "HetGNN", "Movie Review", 74_701, 629_125),
    SurveyEntry(2020, "HGT", "ogbn-mag", 179e6, 2e9),
    SurveyEntry(2020, "HNE-survey", "PubMed", 63_109, 244_986),
    SurveyEntry(2020, "MAGNN", "LastFM-r", 71_689, 3_034_763),
    SurveyEntry(2020, "MAGNN", "Amazon", 10_099, 113_637),
    SurveyEntry(2020, "MV-ACM", "Alibaba", 40_324, 149_587),
    SurveyEntry(2020, "MV-ACM", "Twitter", 40_000, 1_028_364),
    SurveyEntry(2020, "MV-ACM", "PPI", 15_005, 1_044_541),
    SurveyEntry(2020, "MV-ACM", "Youtube", 2_000, 1_114_025),
    SurveyEntry(2020, "MV-ACM", "Aminer", 178_385, 5_935_349),
    SurveyEntry(2021, "HGB", "LastFM", 20_612, 141_521),
    SurveyEntry(2021, "HGB", "Amazon", 10_099, 148_659),
    SurveyEntry(2021, "HGB", "Freebase", 180_098, 148_659),
    SurveyEntry(2021, "HGB", "Movielens", 43_567, 539_300),
    SurveyEntry(2021, "HGB", "Amazon-book", 95_594, 846_434),
    SurveyEntry(2021, "HGB", "Yelp-2018", 91_457, 1_183_610),
    SurveyEntry(2021, "xFraud", "eBay-small", 288_853, 612_904),
    SurveyEntry(2021, "xFraud", "eBay-large", 8_857_866, 13_158_984),
    SurveyEntry(2021, "xFraud", "eBay-xlarge", 1.1e9, 3.7e9),
]


def survey_table(extra: Optional[List[SurveyEntry]] = None) -> List[dict]:
    """Table-5-style rows, sorted by year then paper."""
    entries = list(HETERO_DATASET_SURVEY)
    if extra:
        entries.extend(extra)
    entries.sort(key=lambda e: (e.year, e.paper, e.dataset))
    return [
        {
            "year": entry.year,
            "paper": entry.paper,
            "dataset": entry.dataset,
            "num_nodes": entry.num_nodes,
            "num_edges": entry.num_edges,
            "edges_per_node": round(entry.edges_per_node, 2),
        }
        for entry in entries
    ]


def landscape_points(extra: Optional[List[SurveyEntry]] = None) -> np.ndarray:
    """(log10 nodes, log10 edges) scatter of Figure 1."""
    entries = list(HETERO_DATASET_SURVEY) + list(extra or [])
    return np.array(
        [[np.log10(e.num_nodes), np.log10(e.num_edges)] for e in entries if e.num_nodes > 0]
    )
