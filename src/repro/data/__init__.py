"""repro.data — synthetic transaction-log substrate."""

from .datasets import DatasetBundle, dataset_summary, ebay_large_sim, ebay_small_sim, ebay_xlarge_sim, load_dataset
from .events import TxnEvent, decode_event, encode_event, export_events
from .generator import GeneratorConfig, TransactionGenerator, generate_events, generate_log
from .records import TransactionLog, TransactionRecord
from .survey import HETERO_DATASET_SURVEY, survey_table

__all__ = [
    "TransactionRecord",
    "TransactionLog",
    "TxnEvent",
    "encode_event",
    "decode_event",
    "export_events",
    "GeneratorConfig",
    "TransactionGenerator",
    "generate_log",
    "generate_events",
    "DatasetBundle",
    "ebay_small_sim",
    "ebay_large_sim",
    "ebay_xlarge_sim",
    "load_dataset",
    "dataset_summary",
    "HETERO_DATASET_SURVEY",
    "survey_table",
]
