"""Op-level profiler for the :mod:`repro.nn` autograd engine.

:class:`Profiler` answers "where does a forward/backward pass spend its
time" without touching model code, by installing two hooks for the
duration of a ``with`` block:

* **forward** — :class:`repro.nn.Module.__call__` is wrapped, so every
  module invocation records wall time (total and *self*, i.e. minus
  nested children), a call count, and the bytes of the output array it
  produced. Rows are keyed by module class (``Linear``, ``LayerNorm``,
  ``HeteroConvLayer``, ...).
* **backward** — :meth:`repro.nn.tensor.Tensor._make` is wrapped so
  every backward closure recorded on the tape is timed when the tape
  unwinds; rows are keyed by the op that created the closure
  (``matmul``, ``segment_softmax``, ...) with the gradient bytes it
  received.

Hooks are process-global (they patch the classes), so profilers do not
nest; entering a second one raises. Everything restores on exit even
if the profiled block throws.

Typical use::

    with Profiler() as prof:
        loss = model.loss(graph, batch)
        loss.backward()
    print(prof.report(limit=10))
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["OpRecord", "Profiler"]

_active_lock = threading.Lock()
_active_profiler: Optional["Profiler"] = None


@dataclass
class OpRecord:
    """Accumulated cost of one module class or backward op."""

    phase: str  # "forward" | "backward"
    name: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    bytes: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


@dataclass
class _Frame:
    """One live module invocation on a thread's forward stack."""

    name: str
    child_s: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)


def _backward_op_name(backward: Callable) -> str:
    """Derive the op name from a backward closure's qualname.

    Closures are defined as ``<op>.<locals>.backward`` (methods:
    ``Tensor.__add__.<locals>.backward``); the op segment is the one
    before ``<locals>``. Dunders lose their underscores (``__add__`` →
    ``add``).
    """
    qualname = getattr(backward, "__qualname__", "") or ""
    parts = qualname.split(".")
    name = ""
    for index, part in enumerate(parts):
        if part == "<locals>" and index > 0:
            name = parts[index - 1]
    if not name:
        name = parts[-1] if parts else "op"
    return name.strip("_") or "op"


class Profiler:
    """Context manager that hooks Module forward and Tensor backward.

    Parameters
    ----------
    clock:
        Injectable time source (``time.perf_counter`` by default).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._records: Dict[Tuple[str, str], OpRecord] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._original_call = None
        self._original_make = None

    # -- recording ------------------------------------------------------
    def _stack(self) -> List[_Frame]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, phase: str, name: str, elapsed: float, self_s: float, nbytes: int) -> None:
        key = (phase, name)
        with self._lock:
            record = self._records.get(key)
            if record is None:
                record = OpRecord(phase=phase, name=name)
                self._records[key] = record
            record.calls += 1
            record.total_s += elapsed
            record.self_s += self_s
            record.bytes += nbytes

    # -- hook installation ----------------------------------------------
    def __enter__(self) -> "Profiler":
        global _active_profiler
        from ..nn.module import Module
        from ..nn.tensor import Tensor

        with _active_lock:
            if _active_profiler is not None:
                raise RuntimeError("a Profiler is already active; profilers do not nest")
            _active_profiler = self

        profiler = self
        clock = self._clock
        original_call = Module.__call__
        original_make = Tensor._make  # staticmethod resolves to the plain function

        def profiled_call(module, *args, **kwargs):
            stack = profiler._stack()
            frame = _Frame(type(module).__name__)
            stack.append(frame)
            started = clock()
            try:
                out = original_call(module, *args, **kwargs)
            finally:
                elapsed = clock() - started
                stack.pop()
                if stack:
                    stack[-1].child_s += elapsed
            nbytes = int(getattr(getattr(out, "data", None), "nbytes", 0))
            profiler._record("forward", frame.name, elapsed, elapsed - frame.child_s, nbytes)
            return out

        def profiled_make(data, parents, backward):
            op = _backward_op_name(backward)

            def timed_backward(grad):
                started = clock()
                try:
                    backward(grad)
                finally:
                    elapsed = clock() - started
                    profiler._record(
                        "backward", op, elapsed, elapsed, int(getattr(grad, "nbytes", 0))
                    )

            # Preserve the qualname: ops built on other ops (mean via
            # sum) re-enter profiled_make with the inner closure.
            timed_backward.__qualname__ = getattr(backward, "__qualname__", "backward")
            return original_make(data, parents, timed_backward)

        self._original_call = original_call
        self._original_make = original_make
        Module.__call__ = profiled_call
        Tensor._make = staticmethod(profiled_make)
        return self

    def __exit__(self, *exc_info) -> None:
        global _active_profiler
        from ..nn.module import Module
        from ..nn.tensor import Tensor

        Module.__call__ = self._original_call
        Tensor._make = staticmethod(self._original_make)
        with _active_lock:
            _active_profiler = None

    # -- reporting ------------------------------------------------------
    def records(self, phase: Optional[str] = None) -> List[OpRecord]:
        """Records sorted by total time (descending), optionally one phase."""
        with self._lock:
            rows = list(self._records.values())
        if phase is not None:
            rows = [row for row in rows if row.phase == phase]
        return sorted(rows, key=lambda r: -r.total_s)

    def total_seconds(self, phase: str = "forward") -> float:
        """Root-level time in one phase (self time summed avoids double count)."""
        return sum(record.self_s for record in self.records(phase))

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{"forward/Linear": {calls, total_s, self_s, mean_s, bytes}}``."""
        return {
            f"{record.phase}/{record.name}": {
                "calls": record.calls,
                "total_s": record.total_s,
                "self_s": record.self_s,
                "mean_s": record.mean_s,
                "bytes": record.bytes,
            }
            for record in self.records()
        }

    def report(self, limit: Optional[int] = None) -> str:
        """Human-readable table sorted by total time."""
        rows = self.records()
        if limit is not None:
            rows = rows[:limit]
        headers = ["phase", "op", "calls", "total_ms", "self_ms", "mean_us", "MB"]
        table: List[List[str]] = []
        for record in rows:
            table.append(
                [
                    record.phase,
                    record.name,
                    str(record.calls),
                    f"{record.total_s * 1e3:.3f}",
                    f"{record.self_s * 1e3:.3f}",
                    f"{record.mean_s * 1e6:.1f}",
                    f"{record.bytes / 1e6:.2f}",
                ]
            )
        widths = [
            max(len(headers[i]), max((len(row[i]) for row in table), default=0))
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in table:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)
