"""Span exporters: JSONL dumps and Chrome ``chrome://tracing`` JSON.

Two formats cover the two consumers:

* :func:`write_jsonl` — one span dict per line, trivially greppable and
  streamable; the raw-data format for offline analysis.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format complete events (``ph: "X"``) that ``chrome://tracing`` and
  Perfetto load directly; span nesting renders as stacked bars per
  thread track, which is how you *see* where a request or an epoch
  spends its budget.

Timestamps: tracer clocks are relative (``perf_counter`` or a
``ManualClock`` starting at 0), so events are emitted relative to the
earliest span start, in integer-friendly microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from .trace import Span

__all__ = [
    "spans_to_dicts",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
]


def spans_to_dicts(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Spans as plain dicts, ordered by start time."""
    return [span.to_dict() for span in sorted(spans, key=lambda s: (s.start_s, s.span_id))]


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """One JSON object per line; returns the number of spans written."""
    records = spans_to_dicts(spans)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str) + "\n")
    return len(records)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Inverse of :func:`write_jsonl` (dicts, not Span objects)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """Trace Event Format document for ``chrome://tracing`` / Perfetto.

    Every finished span becomes one complete event (``ph: "X"``) with
    ``ts``/``dur`` in microseconds relative to the earliest span, so a
    ``ManualClock`` trace starting at simulated t=0 renders from 0.
    Span attributes surface under ``args`` alongside the span/parent
    ids, letting the UI's selection panel show the tree linkage.
    """
    spans = [span for span in spans if span.end_s is not None]
    origin = min((span.start_s for span in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    for span in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
        args = {str(k): v for k, v in span.attributes.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round((span.start_s - origin) * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": 1,
                "tid": span.thread_id,
                "cat": "repro",
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path: str) -> int:
    """Write the Chrome trace JSON; returns the number of events."""
    document = chrome_trace(spans)
    with open(path, "w") as handle:
        json.dump(document, handle, default=str)
    return len(document["traceEvents"])
