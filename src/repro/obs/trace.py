"""Nested span tracing with an injectable clock.

A :class:`Tracer` produces :class:`Span` context managers that nest —
each thread keeps its own active-span stack, so a span opened inside
another becomes its child (parent/child ids recorded), and concurrent
request threads never cross wires. The clock is injectable: production
uses ``time.perf_counter``; chaos tests and the ``repro serve --demo``
storyline inject a :class:`~repro.reliability.faults.ManualClock` so
every span's ``ts``/``dur`` is simulated and bit-reproducible.

Finished spans accumulate in a bounded buffer (oldest-first drop
counting, never unbounded growth) and export through
:mod:`repro.obs.export` as JSONL or Chrome ``chrome://tracing`` JSON.

A tracer constructed with ``enabled=False`` (or the module-level
:data:`NULL_TRACER`) hands out a shared no-op span, so instrumented
hot paths cost one attribute check and nothing else when tracing is
off.

:class:`timed` is the one timing helper the training stack shares —
it replaces the hand-rolled ``time.perf_counter()`` pairs that used to
be copy-pasted across ``Trainer.fit``, ``DistributedTrainer`` and
``measure_inference_time``, and optionally emits a span on a tracer
while doing so.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_TRACER", "timed"]


class Span:
    """One timed operation; use as a context manager via :meth:`Tracer.span`.

    Attributes are free-form key/values (``span.set("rung", "gnn")``).
    ``end_s`` is ``None`` until the span finishes.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "start_s",
        "end_s",
        "attributes",
        "thread_id",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        start_s: float,
        thread_id: int,
        tracer: "Tracer",
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.thread_id = thread_id
        self._tracer = tracer

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; chainable."""
        self.attributes[key] = value
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "thread_id": self.thread_id,
            "attributes": dict(self.attributes),
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration_s:.6f})"
        )


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()
    name = ""
    span_id = -1
    parent_id = None
    trace_id = -1
    attributes: Dict[str, Any] = {}
    duration_s = 0.0

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces nested spans; thread-safe; clock injectable.

    Parameters
    ----------
    clock:
        Zero-argument monotonic time source. Defaults to
        ``time.perf_counter``; inject a ``ManualClock`` for
        deterministic chaos traces.
    enabled:
        When false every :meth:`span` call returns the shared no-op
        span — the disabled fast path adds no measurable overhead.
    max_spans:
        Bound on retained finished spans; beyond it the oldest are
        dropped and :attr:`dropped` counts them, keeping a long-running
        service O(1) like the metric reservoirs.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = True,
        max_spans: int = 100_000,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._finished: List[Span] = []
        self._next_id = 1
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attributes: Any):
        """Open a span; nests under the thread's current span."""
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            trace_id=parent.trace_id if parent else span_id,
            start_s=self.clock(),
            thread_id=threading.get_ident(),
            tracer=self,
            attributes=attributes,
        )
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end_s = self.clock()
        stack = self._stack()
        # Pop up to (and including) this span; tolerates exceptional
        # exits that skipped inner __exit__ calls.
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            self._finished.append(span)
            if len(self._finished) > self.max_spans:
                overflow = len(self._finished) - self.max_spans
                del self._finished[:overflow]
                self.dropped += overflow

    # -- inspection -----------------------------------------------------
    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def spans(self) -> List[Span]:
        """Finished spans, oldest first (bounded by ``max_spans``)."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0


#: Shared disabled tracer: instrument code paths unconditionally and
#: let callers opt in by passing a real tracer.
NULL_TRACER = Tracer(enabled=False)


class timed:
    """Measure a block's wall time; optionally emit a span too.

    The single timing helper behind every ``started = perf_counter()``
    pair this repo used to hand-roll::

        with timed() as timer:
            loss = train_epoch(...)
        record.seconds = timer.seconds

    With a tracer the same block also lands in the trace::

        with timed(tracer, "epoch", epoch=3) as timer:
            ...

    The clock defaults to the tracer's (keeping span ``dur`` and
    ``timer.seconds`` on one timeline — essential under a
    ``ManualClock``) and to ``time.perf_counter`` without one.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        name: str = "timed",
        clock: Optional[Callable[[], float]] = None,
        **attributes: Any,
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        if clock is not None:
            self._clock = clock
        elif tracer is not None and tracer.enabled:
            self._clock = tracer.clock
        else:
            self._clock = time.perf_counter
        self.seconds = 0.0
        self.span = None

    def __enter__(self) -> "timed":
        if self._tracer is not None:
            self.span = self._tracer.span(self._name, **self._attributes)
            self.span.__enter__()
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = self._clock() - self._start
        if self.span is not None:
            self.span.__exit__(*exc_info)
