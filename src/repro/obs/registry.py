"""Labelled metric primitives behind a :class:`MetricsRegistry`.

The paper's production claims are all *measured* — inference-time/AUC
trade-offs (Fig. 7), KV read latencies (Figs. 12/13), convergence
timing (Fig. 14) — so the serving and training stacks need first-class
counters rather than ad-hoc lists. This module supplies the three
Prometheus-style primitives:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — a value that can go up and down;
* :class:`Histogram` — fixed cumulative bucket boundaries **plus** a
  bounded :class:`Reservoir` sample, so percentile queries stay
  possible while memory stays O(1) under sustained traffic.

All primitives support labels (``counter.inc(store="mmap")``) and are
thread-safe: one lock per metric guards every mutation, so concurrent
workers (the multi-handle KV loaders, request threads) lose no counts.
:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format, which is what ``repro serve --metrics`` prints at exit.

Dependency-free by design: stdlib only, importable from any layer
(storage, graph, serving) without cycles.
"""

from __future__ import annotations

import random
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..util import nearest_rank_index

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Prometheus-style latency boundaries (seconds). Spans four decades so
#: both a sub-millisecond mmap read and a multi-second epoch land in a
#: discriminating bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Reservoir:
    """Bounded uniform sample of a value stream (Vitter's algorithm R).

    Keeps at most ``capacity`` observations no matter how many are
    offered, each retained observation being a uniform draw over
    everything seen — the standard trick for percentile estimates with
    O(1) memory. Replacement decisions come from a *seeded* PRNG, so
    two identically-fed reservoirs hold identical samples (the same
    determinism the rest of this reproduction demands).

    Not internally locked: callers that share one across threads wrap
    it in their own lock (:class:`Histogram` does).
    """

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: List = []  # floats for histograms; any value works
        self._seen = 0
        self._rng = random.Random(seed)

    def add(self, value) -> None:
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._items[slot] = value

    def extend(self, values: Iterable) -> None:
        for value in values:
            self.add(value)

    @property
    def seen(self) -> int:
        """Total observations offered (not just those retained)."""
        return self._seen

    def values(self) -> List:
        """The retained sample (a copy, at most ``capacity`` long)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()
        self._seen = 0


def _label_key(
    label_names: Tuple[str, ...], labels: Dict[str, str], metric: str
) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"{metric}: expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(label_names: Sequence[str], key: Sequence[str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(label_names, key)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    # Prometheus renders integral samples without an exponent; repr()
    # keeps full float precision for the rest.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared plumbing: name/help validation, label keys, the lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        return _label_key(self.label_names, labels, self.name)

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines

    def render(self) -> str:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge to decrement")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> str:
        lines = self._header()
        with self._lock:
            for key in sorted(self._values):
                labels = _render_labels(self.label_names, key)
                lines.append(f"{self.name}{labels} {_format_value(self._values[key])}")
        return "\n".join(lines)


class Gauge(_Metric):
    """A point-in-time value that can move both directions."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> str:
        lines = self._header()
        with self._lock:
            for key in sorted(self._values):
                labels = _render_labels(self.label_names, key)
                lines.append(f"{self.name}{labels} {_format_value(self._values[key])}")
        return "\n".join(lines)


class _HistogramState:
    """Per-label-set histogram accumulators: buckets + sum + reservoir."""

    __slots__ = ("bucket_counts", "count", "sum", "reservoir")

    def __init__(self, num_buckets: int, reservoir_size: int, seed: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.count = 0
        self.sum = 0.0
        self.reservoir = Reservoir(reservoir_size, seed=seed)


class Histogram(_Metric):
    """Fixed-boundary cumulative histogram with a bounded reservoir.

    The buckets give the Prometheus exposition (``_bucket{le=...}``
    series); the reservoir gives :meth:`percentile` without unbounded
    storage. Both update on every :meth:`observe` under the metric
    lock.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        reservoir_size: int = 1024,
        seed: int = 0,
    ) -> None:
        super().__init__(name, help, labels)
        boundaries = tuple(sorted(float(b) for b in buckets))
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        if len(set(boundaries)) != len(boundaries):
            raise ValueError("bucket boundaries must be distinct")
        self.buckets = boundaries
        self.reservoir_size = reservoir_size
        self._seed = seed
        self._states: Dict[Tuple[str, ...], _HistogramState] = {}

    def _state(self, key: Tuple[str, ...]) -> _HistogramState:
        state = self._states.get(key)
        if state is None:
            state = _HistogramState(len(self.buckets), self.reservoir_size, self._seed)
            self._states[key] = state
        return state

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        key = self._key(labels)
        with self._lock:
            state = self._state(key)
            state.count += 1
            state.sum += value
            state.reservoir.add(value)
            for index, boundary in enumerate(self.buckets):
                if value <= boundary:
                    state.bucket_counts[index] += 1

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            return state.count if state else 0

    def sum(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            return state.sum if state else 0.0

    def percentile(self, q: float, **labels: str) -> float:
        """Reservoir-estimated percentile (``q`` in [0, 100]); NaN when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be within [0, 100]")
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            sample = sorted(state.reservoir.values()) if state else []
        if not sample:
            return float("nan")
        # Nearest-rank on the retained sample — the same selection rule
        # as repro.train.metrics.latency_percentiles, so a p99 from the
        # registry and one from the benchmark tables agree.
        return sample[nearest_rank_index(q, len(sample))]

    def render(self) -> str:
        lines = self._header()
        with self._lock:
            for key in sorted(self._states):
                state = self._states[key]
                for boundary, bucket_count in zip(self.buckets, state.bucket_counts):
                    labels = _render_labels(
                        self.label_names, key, extra=f'le="{repr(boundary)}"'
                    )
                    lines.append(f"{self.name}_bucket{labels} {bucket_count}")
                inf_labels = _render_labels(self.label_names, key, extra='le="+Inf"')
                lines.append(f"{self.name}_bucket{inf_labels} {state.count}")
                plain = _render_labels(self.label_names, key)
                lines.append(f"{self.name}_sum{plain} {_format_value(state.sum)}")
                lines.append(f"{self.name}_count{plain} {state.count}")
        return "\n".join(lines)


class MetricsRegistry:
    """Get-or-create home for every metric in one process.

    ``registry.counter(name, ...)`` returns the existing metric when the
    name is already registered (so two subsystems sharing a metric
    family — e.g. ``kv_read_seconds`` from both the scoring service and
    an instrumented store — compose without coordination), and raises
    when the registered kind or label names conflict.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, kwargs: dict) -> _Metric:
        labels = tuple(kwargs.get("labels", ()))
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                if existing.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, not {labels}"
                    )
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, {"help": help, "labels": labels})

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, {"help": help, "labels": labels})

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        reservoir_size: int = 1024,
        seed: int = 0,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            {
                "help": help,
                "labels": labels,
                "buckets": buckets,
                "reservoir_size": reservoir_size,
                "seed": seed,
            },
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """Prometheus text exposition over every registered metric."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        blocks = [metric.render() for metric in metrics]
        return "\n".join(block for block in blocks if block) + ("\n" if blocks else "")
