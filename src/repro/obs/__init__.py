"""repro.obs — unified observability: metrics, tracing, profiling.

The paper's systems claims are all *measured* (inference-time/AUC
trade-offs, KV read latencies, convergence timing); this package is the
instrumentation layer those measurements flow through:

* :class:`MetricsRegistry` — labelled Counter / Gauge / Histogram
  primitives with Prometheus text exposition; histograms pair fixed
  bucket boundaries with a bounded :class:`Reservoir` so memory stays
  O(1) under sustained traffic;
* :class:`Tracer` / :class:`Span` — nested, thread-safe span context
  managers on an injectable clock (``ManualClock`` chaos runs stay
  deterministic), exported as JSONL or Chrome ``chrome://tracing``
  JSON via :mod:`repro.obs.export`;
* :class:`timed` — the one wall-time helper shared by the training
  loops (replaces hand-rolled ``perf_counter`` pairs);
* :class:`Profiler` — op-level autograd profiler hooking
  :class:`repro.nn.Module` forward and the backward tape for per-op
  wall time, call counts, and array bytes.

Dependency-free (stdlib only) so every layer — storage, graph,
serving, train — can import it without cycles. Instrumentation is
opt-in everywhere: with no registry/tracer attached the hot paths pay
one ``is None`` check.
"""

from .export import (
    chrome_trace,
    read_jsonl,
    spans_to_dicts,
    write_chrome_trace,
    write_jsonl,
)
from .profile import OpRecord, Profiler
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
)
from .trace import NULL_TRACER, Span, Tracer, timed

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "DEFAULT_LATENCY_BUCKETS",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "timed",
    "OpRecord",
    "Profiler",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "spans_to_dicts",
]
