"""Heterogeneous convolution layer of the xFraud detector (Sec. 3.2.2).

Implements eqs. 2–10 of the paper:

* per-node-type Q/K/V linear maps (``Q-Linear_{τ(v)}`` …), multi-head;
* node-type embeddings ``τ(v)^emb`` and edge-type embeddings
  ``φ(e)^emb`` initialised at **zero** (the paper's choice), added to
  the raw inputs only at the first layer (eqs. 2, 4, 6) — deeper layers
  consume ``H^{l-1}`` directly (eqs. 3, 5, 7);
* additive mutual attention per head
  ``α-head = (K·w_att_src + Q·w_att_dst) / sqrt(d_k)`` (eq. 8), with
  per-node-type attention vectors drawn from uniform distributions;
* softmax over the in-neighbourhood of each target node (eq. 9);
* message passing ``msg = ||_i V^i(v_s) · dropout(α^i)`` (eq. 10),
  summed into targets (the Aggregate of eq. 1).

Unlike HGT there is **no target-specific aggregation**: the output path
(residual + layer norm + ReLU) shares weights across node types, which
the paper reports works better on transaction graphs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..graph.hetero import EDGE_TYPES, NODE_TYPES, HeteroGraph
from ..nn import Tensor
from ..nn import functional as F


class HeteroConvLayer(nn.Module):
    """One attention-based heterogeneous convolution layer."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int,
        dropout: float = 0.2,
        first_layer: bool = False,
        target_specific: bool = False,
        per_type_projections: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError("out_dim must be divisible by num_heads")
        rng = rng or np.random.default_rng()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.first_layer = first_layer
        self.target_specific = target_specific
        self.per_type_projections = per_type_projections
        self.dropout_rate = dropout
        self._rng = rng

        # Q/K/V projections (eqs. 2–7), each mapping the layer input to
        # num_heads * head_dim. The paper's stated design principle is
        # that *shared weights among node types perform better* (Sec.
        # 3.2.1) — type information flows through the type embeddings
        # and the per-type attention matrices — so the projections are
        # shared by default; ``per_type_projections=True`` restores the
        # HGT-style type-indexed Q-Linear_{τ(v)} of eq. 2 for ablation.
        projection_types = NODE_TYPES if per_type_projections else ("shared",)
        self.q_linear = nn.ModuleDict(
            {t: nn.Linear(in_dim, out_dim, rng=rng) for t in projection_types}
        )
        self.k_linear = nn.ModuleDict(
            {t: nn.Linear(in_dim, out_dim, rng=rng) for t in projection_types}
        )
        self.v_linear = nn.ModuleDict(
            {t: nn.Linear(in_dim, out_dim, rng=rng) for t in projection_types}
        )

        # Per-node-type attention matrices W^att, uniform init per the
        # paper. Note on eq. 8: read literally as a sum of two scalar
        # projections, the target's term would be constant inside the
        # per-target softmax of eq. 9 and cancel — attention would
        # ignore the target. We therefore use the *mutual* (bilinear)
        # form of the HGT architecture the paper builds on:
        # α-head = (K W^att_src) · (Q W^att_dst) / sqrt(d_k).
        bound = 1.0 / np.sqrt(self.head_dim)
        # Identity + uniform noise: attention starts as the plain K·Q
        # dot-product (transformer-style) and per-type deviations are
        # learned on top, which converges far faster than a near-zero
        # bilinear form.
        eye = np.eye(self.head_dim)[None, None]
        self.att_src = nn.Parameter(
            eye
            + rng.uniform(
                -bound, bound,
                size=(len(NODE_TYPES), num_heads, self.head_dim, self.head_dim),
            )
        )
        self.att_dst = nn.Parameter(
            eye
            + rng.uniform(
                -bound, bound,
                size=(len(NODE_TYPES), num_heads, self.head_dim, self.head_dim),
            )
        )

        if first_layer:
            # Type embeddings live in input space and start at zero
            # (Sec. 3.2.2 initialisation (1)).
            self.node_type_emb = nn.Embedding(len(NODE_TYPES), in_dim, rng=rng, zero_init=True)
            self.edge_type_emb = nn.Embedding(len(EDGE_TYPES), in_dim, rng=rng, zero_init=True)

        # Output path. The xFraud design shares it across node types
        # (``target_specific=True`` restores HGT's per-target-type
        # A-Linear for the ablation of Sec. 3.2.1 — the paper reports
        # the shared variant performs better on transaction graphs).
        # Per Sec. 3.2(2) the aggregation feeds a ReLU that emits the
        # next layer's input; we found an HGT-style residual+LayerNorm
        # output slows convergence markedly at simulation scale.
        if target_specific:
            self.a_linear = nn.ModuleDict(
                {t: nn.Linear(out_dim, out_dim, rng=rng) for t in NODE_TYPES}
            )

    # ------------------------------------------------------------------
    def _per_type_project(
        self, x: Tensor, node_type: np.ndarray, linears: nn.ModuleDict
    ) -> Tensor:
        """Apply the type-specific linear of each node's type.

        Equivalent to indexing a per-type weight stack; implemented by
        computing each type's projection on its node slice and
        scattering back, so each row passes through exactly one linear.
        """
        if not self.per_type_projections:
            return linears["shared"](x)
        return self._apply_per_type(x, node_type, linears)

    def _apply_per_type(
        self, x: Tensor, node_type: np.ndarray, linears: nn.ModuleDict
    ) -> Tensor:
        """Route each row through its type's linear (always per-type)."""
        num_nodes = x.shape[0]
        pieces: List[Tensor] = []
        indices: List[np.ndarray] = []
        for type_id, type_name in enumerate(NODE_TYPES):
            rows = np.flatnonzero(node_type == type_id)
            if len(rows) == 0:
                continue
            pieces.append(linears[type_name](nn.gather(x, rows)))
            indices.append(rows)
        if len(pieces) == 1:
            projected = pieces[0]
            order = indices[0]
        else:
            projected = nn.concat(pieces, axis=0)
            order = np.concatenate(indices)
        return nn.scatter_rows(projected, order, num_nodes)

    # ------------------------------------------------------------------
    def forward(self, graph: HeteroGraph, h: Tensor) -> Tensor:
        """One round of heterogeneous message passing.

        Parameters
        ----------
        graph:
            The (sub)graph being convolved; supplies node/edge types
            and the edge list.
        h:
            ``(num_nodes, in_dim)`` input representations — raw
            transaction features at layer 1, ``H^{l-1}`` afterwards.
        """
        node_type = graph.node_type
        src, dst = graph.edge_src, graph.edge_dst
        num_nodes = graph.num_nodes

        if self.first_layer:
            # eq. 2/4/6 input: X + τ(v)^emb  (+ φ(e)^emb handled below).
            h = h + self.node_type_emb(node_type)

        query = self._per_type_project(h, node_type, self.q_linear)
        key = self._per_type_project(h, node_type, self.k_linear)
        value = self._per_type_project(h, node_type, self.v_linear)

        # Reshape to heads: (nodes, heads, head_dim).
        query = query.reshape(num_nodes, self.num_heads, self.head_dim)
        key = key.reshape(num_nodes, self.num_heads, self.head_dim)
        value = value.reshape(num_nodes, self.num_heads, self.head_dim)

        key_edges = nn.gather(key, src)
        value_edges = nn.gather(value, src)

        if self.first_layer and graph.num_edges:
            # Linearity lets the per-edge φ(e)^emb term of eqs. 4/6 be
            # added after projection: K(X+τ+φ) = K(X+τ) + K(φ) with the
            # bias counted once. The projection type is the edge's
            # source-node type.
            key_extra = self._edge_type_contribution(graph.edge_type, self.k_linear)
            value_extra = self._edge_type_contribution(graph.edge_type, self.v_linear)
            key_edges = key_edges + key_extra.reshape(
                graph.num_edges, self.num_heads, self.head_dim
            )
            value_edges = value_edges + value_extra.reshape(
                graph.num_edges, self.num_heads, self.head_dim
            )

        # eq. 8 (mutual/bilinear form): per-edge per-head logits.
        query_edges = nn.gather(query, dst)
        key_att = self._per_type_bilinear(key_edges, node_type[src], self.att_src)
        query_att = self._per_type_bilinear(query_edges, node_type[dst], self.att_dst)
        logits = (key_att * query_att).sum(axis=2)
        logits = logits * (1.0 / np.sqrt(self.head_dim))

        # eq. 9: softmax over each target's in-neighbourhood.
        attention = nn.segment_softmax(logits, dst, num_nodes)
        attention = F.dropout(
            attention, self.dropout_rate, training=self.training, rng=self._rng
        )

        # eq. 10 + eq. 1 Aggregate: weight values, sum into targets.
        messages = value_edges * attention.reshape(graph.num_edges, self.num_heads, 1)
        aggregated = nn.segment_sum(messages, dst, num_nodes)
        aggregated = aggregated.reshape(num_nodes, self.out_dim)

        return self._output(graph, h, aggregated)

    def _output(self, graph: HeteroGraph, h: Tensor, aggregated: Tensor) -> Tensor:
        """ReLU on the aggregation; optionally per-type A-Linear."""
        if self.target_specific:
            aggregated = self._apply_per_type(
                aggregated, graph.node_type, self.a_linear
            )
        return aggregated.relu()


    def _per_type_bilinear(self, x: Tensor, types: np.ndarray, att: nn.Parameter) -> Tensor:
        """Apply the type-specific attention matrix: rows of ``x``
        (shape ``(n, heads, d)``) are multiplied by ``att[type]``
        (``(heads, d, d)``) according to each row's type."""
        num_rows = x.shape[0]
        pieces: List[Tensor] = []
        indices: List[np.ndarray] = []
        for type_id in range(len(NODE_TYPES)):
            rows = np.flatnonzero(types == type_id)
            if len(rows) == 0:
                continue
            selected = nn.gather(x, rows).transpose(1, 0, 2)  # (h, m, d)
            transformed = (selected @ att[type_id]).transpose(1, 0, 2)
            pieces.append(transformed)
            indices.append(rows)
        projected = pieces[0] if len(pieces) == 1 else nn.concat(pieces, axis=0)
        order = indices[0] if len(indices) == 1 else np.concatenate(indices)
        return nn.scatter_rows(projected, order, num_rows)

    def _edge_type_contribution(
        self, edge_types: np.ndarray, linears: nn.ModuleDict
    ) -> Tensor:
        """Bias-free projection of φ(e)^emb per edge.

        Every edge type has a fixed source-node type, so the projection
        table has just ``len(EDGE_TYPES)`` rows: project the embedding
        table once (8 small matmuls) and gather per edge, instead of
        projecting a per-edge matrix.
        """
        rows: List[Tensor] = []
        for type_name in EDGE_TYPES:
            source_type = (
                type_name.split("->")[0] if self.per_type_projections else "shared"
            )
            type_id = EDGE_TYPES.index(type_name)
            embedding_row = self.edge_type_emb.weight[np.array([type_id])]
            rows.append(embedding_row @ linears[source_type].weight)
        table = nn.concat(rows, axis=0)
        return nn.gather(table, edge_types)


class MaskedHeteroConvLayer(HeteroConvLayer):
    """Conv layer variant that accepts per-edge mask weights.

    The GNNExplainer perturbs the detector by multiplying every edge's
    message by a learnable mask in [0, 1]. The mask enters *before* the
    neighbourhood softmax (scaling the attention logits' exponent), so a
    fully-masked edge contributes nothing.
    """

    def forward(self, graph: HeteroGraph, h: Tensor, edge_mask: Optional[Tensor] = None) -> Tensor:
        if edge_mask is None:
            return super().forward(graph, h)
        return self._forward_masked(graph, h, edge_mask)

    def _forward_masked(self, graph: HeteroGraph, h: Tensor, edge_mask: Tensor) -> Tensor:
        node_type = graph.node_type
        src, dst = graph.edge_src, graph.edge_dst
        num_nodes = graph.num_nodes

        if self.first_layer:
            h = h + self.node_type_emb(node_type)

        query = self._per_type_project(h, node_type, self.q_linear)
        key = self._per_type_project(h, node_type, self.k_linear)
        value = self._per_type_project(h, node_type, self.v_linear)
        query = query.reshape(num_nodes, self.num_heads, self.head_dim)
        key = key.reshape(num_nodes, self.num_heads, self.head_dim)
        value = value.reshape(num_nodes, self.num_heads, self.head_dim)

        key_edges = nn.gather(key, src)
        value_edges = nn.gather(value, src)
        if self.first_layer and graph.num_edges:
            key_extra = self._edge_type_contribution(graph.edge_type, self.k_linear)
            value_extra = self._edge_type_contribution(graph.edge_type, self.v_linear)
            key_edges = key_edges + key_extra.reshape(graph.num_edges, self.num_heads, self.head_dim)
            value_edges = value_edges + value_extra.reshape(graph.num_edges, self.num_heads, self.head_dim)

        query_edges = nn.gather(query, dst)
        key_att = self._per_type_bilinear(key_edges, node_type[src], self.att_src)
        query_att = self._per_type_bilinear(query_edges, node_type[dst], self.att_dst)
        logits = (key_att * query_att).sum(axis=2)
        logits = logits * (1.0 / np.sqrt(self.head_dim))
        attention = nn.segment_softmax(logits, dst, num_nodes)

        # Explainer mask scales the normalised attention weights.
        mask = edge_mask.reshape(graph.num_edges, 1)
        attention = attention * mask

        messages = value_edges * attention.reshape(graph.num_edges, self.num_heads, 1)
        aggregated = nn.segment_sum(messages, dst, num_nodes)
        aggregated = aggregated.reshape(num_nodes, self.out_dim)
        return self._output(graph, h, aggregated)
