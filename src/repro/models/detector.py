"""The xFraud detector (Sec. 3.2).

Architecture (Figure 4, left):

1. input — transaction features for ``txn`` nodes (other node types
   start empty), node-type and edge-type embeddings;
2. ``L`` heterogeneous convolution layers with self-attention
   (:class:`~repro.models.hetero_conv.HeteroConvLayer`);
3. ``tanh`` on the GNN output for target transactions, concatenated
   with the **original transaction features**, then a feed-forward
   network with two hidden layers, dropout, layer norm and ReLU;
4. two-logit output; the detector loss is softmax cross entropy
   (eq. 11) and the risk score is the softmax fraud probability.

``XFraudDetector`` (HGSampling) and ``XFraudDetectorPlus`` (GraphSAGE
sampling) share this network — the paper's ablation (Sec. 3.2.3 /
Figure 10) varies only the sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..graph.hetero import HeteroGraph
from ..graph.sampling import HGSampler, SageSampler
from ..nn import Tensor
from ..nn import functional as F


@dataclass
class DetectorConfig:
    """Hyperparameters (paper defaults scaled to simulation size).

    The paper trains with ``n_hid=400, n_heads=8, n_layers=6``; the
    simulated datasets are ~1000× smaller, so defaults here are scaled
    down while remaining configurable back up.
    """

    feature_dim: int = 114
    hidden_dim: int = 64
    num_heads: int = 4
    num_layers: int = 2
    ffn_hidden_dim: int = 64
    dropout: float = 0.2
    num_classes: int = 2
    # Ablation switches (Sec. 3.2.1): xFraud shares weights across
    # node types. ``target_specific_aggregation`` restores HGT-style
    # per-target-type aggregation; ``per_type_projections`` restores
    # type-indexed Q/K/V linears (eq. 2 read literally).
    target_specific_aggregation: bool = False
    per_type_projections: bool = False
    seed: int = 0


class XFraudDetector(nn.Module):
    """Heterogeneous-GNN fraud detector."""

    def __init__(self, config: DetectorConfig) -> None:
        super().__init__()
        from .hetero_conv import MaskedHeteroConvLayer

        self.config = config
        rng = np.random.default_rng(config.seed)
        self._rng = rng

        self.convs = nn.ModuleList()
        for layer in range(config.num_layers):
            in_dim = config.feature_dim if layer == 0 else config.hidden_dim
            self.convs.append(
                MaskedHeteroConvLayer(
                    in_dim=in_dim,
                    out_dim=config.hidden_dim,
                    num_heads=config.num_heads,
                    dropout=config.dropout,
                    first_layer=(layer == 0),
                    target_specific=config.target_specific_aggregation,
                    per_type_projections=config.per_type_projections,
                    rng=rng,
                )
            )

        # FFN head: [tanh(GNN out) || original features] -> 2 hidden
        # layers -> logits, with dropout / layer norm / ReLU (Sec 3.2(3)).
        head_in = config.hidden_dim + config.feature_dim
        self.head_fc1 = nn.Linear(head_in, config.ffn_hidden_dim, rng=rng)
        self.head_norm1 = nn.LayerNorm(config.ffn_hidden_dim)
        self.head_fc2 = nn.Linear(config.ffn_hidden_dim, config.ffn_hidden_dim, rng=rng)
        self.head_norm2 = nn.LayerNorm(config.ffn_hidden_dim)
        self.head_out = nn.Linear(config.ffn_hidden_dim, config.num_classes, rng=rng)
        self.head_dropout = nn.Dropout(config.dropout, rng=rng)

    # ------------------------------------------------------------------
    def node_representations(
        self,
        graph: HeteroGraph,
        edge_mask: Optional[Tensor] = None,
        feature_mask: Optional[Tensor] = None,
    ) -> Tensor:
        """Run the convolution stack; returns ``(N, hidden_dim)``.

        ``edge_mask`` / ``feature_mask`` are the GNNExplainer hooks:
        per-edge weights in [0,1] and per-node-feature weights.
        """
        features = Tensor(graph.txn_features)
        if feature_mask is not None:
            features = features * feature_mask
        h = features
        for conv in self.convs:
            h = conv(graph, h, edge_mask=edge_mask)
        return h

    def forward(
        self,
        graph: HeteroGraph,
        targets: Sequence[int],
        edge_mask: Optional[Tensor] = None,
        feature_mask: Optional[Tensor] = None,
    ) -> Tensor:
        """Logits ``(len(targets), num_classes)`` for target txn nodes."""
        targets = np.asarray(targets, dtype=np.int64)
        h = self.node_representations(graph, edge_mask=edge_mask, feature_mask=feature_mask)
        gnn_out = nn.gather(h, targets).tanh()
        original = Tensor(graph.txn_features[targets])
        if feature_mask is not None:
            original = original * feature_mask[targets]
        x = nn.concat([gnn_out, original], axis=1)

        x = self.head_fc1(x)
        x = self.head_dropout(x)
        x = self.head_norm1(x).relu()
        x = self.head_fc2(x)
        x = self.head_dropout(x)
        x = self.head_norm2(x).relu()
        return self.head_out(x)

    # ------------------------------------------------------------------
    def predict_proba(self, graph: HeteroGraph, targets: Sequence[int]) -> np.ndarray:
        """Fraud probability per target (inference mode, no graph)."""
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                logits = self.forward(graph, targets)
                probabilities = F.softmax(logits, axis=-1)
        finally:
            self.train(was_training)
        return probabilities.data[:, 1].copy()

    def loss(self, graph: HeteroGraph, targets: Sequence[int]) -> Tensor:
        """Detector loss: softmax cross entropy on labeled targets."""
        targets = np.asarray(targets, dtype=np.int64)
        labels = graph.labels[targets]
        if np.any(labels < 0):
            raise ValueError("loss targets must be labeled transactions")
        logits = self.forward(graph, targets)
        return F.cross_entropy(logits, labels)


class XFraudDetectorPlus(XFraudDetector):
    """detector+ — same network, GraphSAGE-style sampler (Sec. 3.2.3)."""

    def __init__(self, config: DetectorConfig, hops: int = 2, fanout: int = 10) -> None:
        super().__init__(config)
        self.sampler = SageSampler(hops=hops, fanout=fanout, seed=config.seed)

    def predict_proba_sampled(
        self, graph: HeteroGraph, targets: Sequence[int], deadline=None
    ) -> np.ndarray:
        """Sample the neighbourhood first, then score (production path).

        ``deadline`` is an optional duck-typed latency budget
        (:class:`repro.serving.Deadline`) propagated into the sampler;
        the online :class:`~repro.serving.service.ScoringService` uses
        it to bound how long a request can spend in this path.
        """
        sampled = self.sampler.sample(graph, targets, deadline=deadline)
        return self.predict_proba(sampled.graph, sampled.target_local)


class XFraudDetectorHGT(XFraudDetector):
    """detector — same network, HGSampling (equivalent to HGT).

    Default sampler parameters mirror pyHGT's practice of deep,
    wide type-balanced budgets (the source of the cost the paper's
    Figure 10 measures on sparse transaction graphs).
    """

    def __init__(self, config: DetectorConfig, depth: int = 6, width: int = 64) -> None:
        super().__init__(config)
        self.sampler = HGSampler(depth=depth, width=width, seed=config.seed)

    def predict_proba_sampled(
        self, graph: HeteroGraph, targets: Sequence[int], deadline=None
    ) -> np.ndarray:
        """HGSampling-then-score inference path (the Figure-10 subject)."""
        sampled = self.sampler.sample(graph, targets, deadline=deadline)
        return self.predict_proba(sampled.graph, sampled.target_local)
