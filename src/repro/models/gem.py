"""GEM baseline (Liu et al., CIKM 2018) — heterogeneous GCN.

GEM applies a vanilla GCN-style convolution to a heterogeneous graph:
per node-type mean aggregation of neighbours with a per-type weight
matrix, summed with a self transform —

    H^{l+1} = σ( H^l W_self + Σ_t mean_{u ∈ N_t(v)} H^l[u] W_t )

It has no attention, which makes its convolution the cheapest of the
three models (the paper's Table 3 shows GEM with the fastest inference
but lower AUC than detector+).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..graph.hetero import NODE_TYPES, HeteroGraph
from ..nn import Tensor
from ..nn import functional as F
from .detector import DetectorConfig


class GEMLayer(nn.Module):
    """Mean aggregation per neighbour type + self transform."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.out_dim = out_dim
        self.self_linear = nn.Linear(in_dim, out_dim, rng=rng)
        self.type_linear = nn.ModuleDict(
            {t: nn.Linear(in_dim, out_dim, bias=False, rng=rng) for t in NODE_TYPES}
        )

    def forward(self, graph: HeteroGraph, h: Tensor) -> Tensor:
        num_nodes = graph.num_nodes
        out = self.self_linear(h)
        src_types = graph.node_type[graph.edge_src]
        for type_id, type_name in enumerate(NODE_TYPES):
            edges = np.flatnonzero(src_types == type_id)
            if len(edges) == 0:
                continue
            neighbor_values = nn.gather(h, graph.edge_src[edges])
            mean_by_target = nn.segment_mean(neighbor_values, graph.edge_dst[edges], num_nodes)
            out = out + self.type_linear[type_name](mean_by_target)
        # Vanilla GCN-style output (GEM applies a plain GCN): a single
        # nonlinearity, no residual or normalisation.
        return out.relu()


class GEMModel(nn.Module):
    """GEM stack + the shared transaction-classification head."""

    def __init__(self, config: DetectorConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.layers = nn.ModuleList()
        for layer in range(config.num_layers):
            in_dim = config.feature_dim if layer == 0 else config.hidden_dim
            self.layers.append(GEMLayer(in_dim, config.hidden_dim, rng=rng))
        head_in = config.hidden_dim + config.feature_dim
        self.head = nn.Sequential(
            nn.Linear(head_in, config.ffn_hidden_dim, rng=rng),
            nn.Dropout(config.dropout, rng=rng),
            nn.LayerNorm(config.ffn_hidden_dim),
            nn.ReLU(),
            nn.Linear(config.ffn_hidden_dim, config.num_classes, rng=rng),
        )

    def node_representations(self, graph: HeteroGraph) -> Tensor:
        """Per-node embeddings after the GEM stack, ``(N, hidden)``."""
        h = Tensor(graph.txn_features)
        for layer in self.layers:
            h = layer(graph, h)
        return h

    def forward(self, graph: HeteroGraph, targets: Sequence[int]) -> Tensor:
        targets = np.asarray(targets, dtype=np.int64)
        h = self.node_representations(graph)
        gnn_out = nn.gather(h, targets).tanh()
        original = Tensor(graph.txn_features[targets])
        return self.head(nn.concat([gnn_out, original], axis=1))

    def predict_proba(self, graph: HeteroGraph, targets: Sequence[int]) -> np.ndarray:
        """Fraud probability per target transaction (eval mode)."""
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                probabilities = F.softmax(self.forward(graph, targets), axis=-1)
        finally:
            self.train(was_training)
        return probabilities.data[:, 1].copy()

    def loss(self, graph: HeteroGraph, targets: Sequence[int]) -> Tensor:
        """Softmax cross entropy over labeled target transactions."""
        targets = np.asarray(targets, dtype=np.int64)
        labels = graph.labels[targets]
        if np.any(labels < 0):
            raise ValueError("loss targets must be labeled transactions")
        return F.cross_entropy(self.forward(graph, targets), labels)
