"""repro.models — the xFraud detector and the paper's baselines."""

from .detector import (
    DetectorConfig,
    XFraudDetector,
    XFraudDetectorHGT,
    XFraudDetectorPlus,
)
from .gat import GATLayer, GATModel
from .gem import GEMLayer, GEMModel
from .mlp import FeatureMLP
from .hetero_conv import HeteroConvLayer, MaskedHeteroConvLayer

__all__ = [
    "DetectorConfig",
    "XFraudDetector",
    "XFraudDetectorPlus",
    "XFraudDetectorHGT",
    "HeteroConvLayer",
    "MaskedHeteroConvLayer",
    "GATModel",
    "GATLayer",
    "GEMModel",
    "GEMLayer",
    "FeatureMLP",
]
