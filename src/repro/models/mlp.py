"""Feature-only MLP baseline.

The pre-GNN production reality at eBay: a model over the risk
identifier's transaction features with no graph. It quantifies how much
signal the graph adds — every GNN in the repo should beat it whenever
fraud is relationally (not just feature-) visible, e.g. stolen-card
bursts whose features mimic legitimate buying.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import nn
from ..graph.hetero import HeteroGraph
from ..nn import Tensor
from ..nn import functional as F
from .detector import DetectorConfig


class FeatureMLP(nn.Module):
    """Two-hidden-layer MLP over raw transaction features.

    Mirrors the detector's FFN head (same widths, dropout, layer norm)
    so the comparison isolates the graph contribution.
    """

    def __init__(self, config: DetectorConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.net = nn.Sequential(
            nn.Linear(config.feature_dim, config.ffn_hidden_dim, rng=rng),
            nn.Dropout(config.dropout, rng=rng),
            nn.LayerNorm(config.ffn_hidden_dim),
            nn.ReLU(),
            nn.Linear(config.ffn_hidden_dim, config.ffn_hidden_dim, rng=rng),
            nn.Dropout(config.dropout, rng=rng),
            nn.LayerNorm(config.ffn_hidden_dim),
            nn.ReLU(),
            nn.Linear(config.ffn_hidden_dim, config.num_classes, rng=rng),
        )

    def forward(self, graph: HeteroGraph, targets: Sequence[int]) -> Tensor:
        targets = np.asarray(targets, dtype=np.int64)
        return self.net(Tensor(graph.txn_features[targets]))

    def predict_proba(self, graph: HeteroGraph, targets: Sequence[int]) -> np.ndarray:
        """Fraud probability per target from features alone."""
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                probabilities = F.softmax(self.forward(graph, targets), axis=-1)
        finally:
            self.train(was_training)
        return probabilities.data[:, 1].copy()

    def loss(self, graph: HeteroGraph, targets: Sequence[int]) -> Tensor:
        """Softmax cross entropy over labeled target transactions."""
        targets = np.asarray(targets, dtype=np.int64)
        labels = graph.labels[targets]
        if np.any(labels < 0):
            raise ValueError("loss targets must be labeled transactions")
        return F.cross_entropy(self.forward(graph, targets), labels)
