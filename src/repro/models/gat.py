"""GAT baseline (Veličković et al.) — type-blind graph attention.

The paper's strongest homogeneous baseline: multi-head additive
attention over neighbours, ignoring node and edge types entirely. The
classification head matches the detector's so the comparison isolates
the convolution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..graph.hetero import HeteroGraph
from ..nn import Tensor
from ..nn import functional as F
from .detector import DetectorConfig


class GATLayer(nn.Module):
    """One multi-head GAT layer with additive attention."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int,
        dropout: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError("out_dim must be divisible by num_heads")
        rng = rng or np.random.default_rng()
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.out_dim = out_dim
        self.dropout_rate = dropout
        self._rng = rng
        self.proj = nn.Linear(in_dim, out_dim, rng=rng)
        bound = 1.0 / np.sqrt(self.head_dim)
        self.att_src = nn.Parameter(rng.uniform(-bound, bound, size=(num_heads, self.head_dim)))
        self.att_dst = nn.Parameter(rng.uniform(-bound, bound, size=(num_heads, self.head_dim)))

    def forward(self, graph: HeteroGraph, h: Tensor) -> Tensor:
        num_nodes = graph.num_nodes
        src, dst = graph.edge_src, graph.edge_dst
        projected = self.proj(h).reshape(num_nodes, self.num_heads, self.head_dim)

        src_score = (projected * self.att_src).sum(axis=2)
        dst_score = (projected * self.att_dst).sum(axis=2)
        logits = nn.gather(src_score, src) + nn.gather(dst_score, dst)
        logits = F.leaky_relu(logits, negative_slope=0.2)
        attention = nn.segment_softmax(logits, dst, num_nodes)
        attention = F.dropout(attention, self.dropout_rate, training=self.training, rng=self._rng)

        messages = nn.gather(projected, src) * attention.reshape(graph.num_edges, self.num_heads, 1)
        aggregated = nn.segment_sum(messages, dst, num_nodes).reshape(num_nodes, self.out_dim)
        # Vanilla GAT output: ELU on the aggregation, no residual path
        # or normalisation (Velickovic et al.).
        return F.elu(aggregated)


class GATModel(nn.Module):
    """GAT stack + the shared transaction-classification head."""

    def __init__(self, config: DetectorConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.layers = nn.ModuleList()
        for layer in range(config.num_layers):
            in_dim = config.feature_dim if layer == 0 else config.hidden_dim
            self.layers.append(
                GATLayer(in_dim, config.hidden_dim, config.num_heads, config.dropout, rng=rng)
            )
        head_in = config.hidden_dim + config.feature_dim
        self.head = nn.Sequential(
            nn.Linear(head_in, config.ffn_hidden_dim, rng=rng),
            nn.Dropout(config.dropout, rng=rng),
            nn.LayerNorm(config.ffn_hidden_dim),
            nn.ReLU(),
            nn.Linear(config.ffn_hidden_dim, config.ffn_hidden_dim, rng=rng),
            nn.Dropout(config.dropout, rng=rng),
            nn.LayerNorm(config.ffn_hidden_dim),
            nn.ReLU(),
            nn.Linear(config.ffn_hidden_dim, config.num_classes, rng=rng),
        )

    def node_representations(self, graph: HeteroGraph) -> Tensor:
        """Per-node embeddings after the GAT stack, ``(N, hidden)``."""
        h = Tensor(graph.txn_features)
        for layer in self.layers:
            h = layer(graph, h)
        return h

    def forward(self, graph: HeteroGraph, targets: Sequence[int]) -> Tensor:
        targets = np.asarray(targets, dtype=np.int64)
        h = self.node_representations(graph)
        gnn_out = nn.gather(h, targets).tanh()
        original = Tensor(graph.txn_features[targets])
        return self.head(nn.concat([gnn_out, original], axis=1))

    def predict_proba(self, graph: HeteroGraph, targets: Sequence[int]) -> np.ndarray:
        """Fraud probability per target transaction (eval mode)."""
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                probabilities = F.softmax(self.forward(graph, targets), axis=-1)
        finally:
            self.train(was_training)
        return probabilities.data[:, 1].copy()

    def loss(self, graph: HeteroGraph, targets: Sequence[int]) -> Tensor:
        """Softmax cross entropy over labeled target transactions."""
        targets = np.asarray(targets, dtype=np.int64)
        labels = graph.labels[targets]
        if np.any(labels < 0):
            raise ValueError("loss targets must be labeled transactions")
        return F.cross_entropy(self.forward(graph, targets), labels)
