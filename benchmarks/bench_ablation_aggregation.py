"""Design-choice ablation (Sec. 3.2.1) — shared vs target-specific
aggregation weights.

The paper: "We do not allow target-specific aggregation on different
node types ... We see a better performance in our detector when shared
weights among different types of nodes are used." This bench trains
both variants under identical conditions and compares AUC/AP and
parameter counts. Shape check: the shared variant is at least
competitive while using fewer parameters.
"""

import numpy as np

from _helpers import format_table, model_config, write_result
from repro import TrainConfig, Trainer, XFraudDetectorPlus
from repro.models import DetectorConfig


VARIANTS = {
    "shared (xFraud)": {},
    "target-specific aggregation (HGT-style)": {"target_specific_aggregation": True},
    "per-type Q/K/V projections": {"per_type_projections": True},
}


def _train_variant(bundle, overrides: dict, seed: int) -> dict:
    base = model_config(bundle.graph.feature_dim, seed)
    config = DetectorConfig(**{**base.__dict__, **overrides})
    model = XFraudDetectorPlus(config)
    trainer = Trainer(
        model,
        TrainConfig(epochs=20, batch_size=4096, learning_rate=1e-2, seed=seed, patience=10),
    )
    trainer.fit(bundle.graph, bundle.train_nodes, eval_nodes=bundle.test_nodes)
    metrics = trainer.evaluate(bundle.graph, bundle.test_nodes)
    metrics["params"] = model.num_parameters()
    return metrics


def test_ablation_shared_vs_type_specific_weights(benchmark, small):
    results = {}
    for name, overrides in VARIANTS.items():
        per_seed = [_train_variant(small, overrides, seed) for seed in (0, 1)]
        results[name] = {
            "auc": float(np.mean([m["auc"] for m in per_seed])),
            "ap": float(np.mean([m["ap"] for m in per_seed])),
            "params": per_seed[0]["params"],
        }

    model = XFraudDetectorPlus(model_config(small.graph.feature_dim, 0))
    batch = small.test_nodes[:128]
    benchmark.pedantic(
        lambda: model.predict_proba(small.graph, batch), rounds=3, iterations=1
    )

    rows = [
        [name, f"{r['auc']:.4f}", f"{r['ap']:.4f}", f"{r['params']:,}"]
        for name, r in results.items()
    ]
    text = "Ablation — weight sharing across node types (Sec. 3.2.1)\n" + format_table(
        ["Variant", "AUC", "AP", "#params"], rows
    )
    path = write_result("ablation_aggregation", text)
    print("\n" + text + f"\n-> {path}")

    shared = results["shared (xFraud)"]
    for name, variant in results.items():
        if name == "shared (xFraud)":
            continue
        assert shared["params"] < variant["params"]
        # Shared weights must not lose meaningfully (paper: they win).
        assert shared["auc"] >= variant["auc"] - 0.02
