"""Table 5 / Figure 1 — heterogeneous dataset survey landscape.

Regenerates the Appendix A survey table and the Figure 1 log-log
(nodes, edges) landscape, appending the live statistics of the three
simulated datasets. Shape check: eBay-xlarge remains the largest
heterogeneous GNN workload in the survey.
"""

import numpy as np

from _helpers import format_table, write_result
from repro.data import survey_table
from repro.data.survey import HETERO_DATASET_SURVEY, SurveyEntry, landscape_points


def test_table5_fig1_survey(benchmark, small, large, xlarge):
    benchmark.pedantic(lambda: survey_table(), rounds=5, iterations=1)

    live = [
        SurveyEntry(
            2026,
            "repro (sim)",
            bundle.name,
            bundle.graph.num_nodes,
            bundle.graph.num_edges // 2,
        )
        for bundle in (small, large, xlarge)
    ]
    rows = [
        [r["year"], r["paper"], r["dataset"], f"{r['num_nodes']:,.0f}", f"{r['num_edges']:,.0f}", r["edges_per_node"]]
        for r in survey_table(live)
    ]
    table = format_table(["Year", "Paper", "Dataset", "#Nodes", "#Edges", "#E/#N"], rows)

    points = landscape_points(live)
    scatter = "\n".join(
        f"  log10(nodes)={x:.2f}  log10(edges)={y:.2f}" for x, y in points[-6:]
    )
    text = (
        "Table 5 — heterogeneous dataset survey (+ live sim stats)\n"
        + table
        + "\n\nFigure 1 — landscape tail (last 6 points)\n"
        + scatter
    )
    path = write_result("table5_fig1_survey", text)
    print("\n(survey regenerated)" + f"\n-> {path}")

    largest = max(HETERO_DATASET_SURVEY, key=lambda e: e.num_nodes)
    assert largest.dataset == "eBay-xlarge"
    assert np.isfinite(points).all()
