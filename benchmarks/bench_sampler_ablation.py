"""Figure 10 — detector (HGT / HGSampling) vs detector+ (GraphSAGE).

The paper's ablation: on the sparse transaction graphs, the
GraphSAGE-style sampler of detector+ delivers 5–7x faster inference
than HGSampling at equal-or-better AUC. Both variants share one set of
trained weights (they are the same network); only the sampler differs.
"""

import time

import numpy as np

from _helpers import format_table, model_config, write_result
from repro import TrainConfig, Trainer, XFraudDetectorHGT, XFraudDetectorPlus
from repro.graph import batched
from repro.train import roc_auc


def _sampled_inference(model, graph, nodes, batch_size=32):
    start = time.perf_counter()
    scores = []
    for batch in batched(np.asarray(nodes), batch_size):
        scores.append(model.predict_proba_sampled(graph, batch))
    return np.concatenate(scores), time.perf_counter() - start


def _run_dataset(bundle, seed=0):
    config = model_config(bundle.graph.feature_dim, seed)
    plus = XFraudDetectorPlus(config, hops=2, fanout=10)
    Trainer(plus, TrainConfig(epochs=16, batch_size=4096, learning_rate=1e-2)).fit(
        bundle.graph, bundle.train_nodes
    )
    hgt = XFraudDetectorHGT(config)
    hgt.load_state_dict(plus.state_dict())

    test = bundle.test_nodes
    labels = bundle.graph.labels[test]
    scores_plus, seconds_plus = _sampled_inference(plus, bundle.graph, test)
    scores_hgt, seconds_hgt = _sampled_inference(hgt, bundle.graph, test)
    return {
        "dataset": bundle.name,
        "auc_plus": roc_auc(labels, scores_plus),
        "auc_hgt": roc_auc(labels, scores_hgt),
        "time_plus": seconds_plus,
        "time_hgt": seconds_hgt,
        "speedup": seconds_hgt / seconds_plus,
    }


def test_fig10_sampler_ablation(benchmark, small, large):
    results = [_run_dataset(small), _run_dataset(large)]

    plus = XFraudDetectorPlus(model_config(small.graph.feature_dim, 0))
    batch = small.test_nodes[:64]
    benchmark.pedantic(
        lambda: plus.predict_proba_sampled(small.graph, batch), rounds=3, iterations=1
    )

    rows = [
        [
            r["dataset"],
            f"{r['time_hgt']:.2f}s",
            f"{r['time_plus']:.2f}s",
            f"{r['speedup']:.1f}x",
            f"{r['auc_hgt']:.4f}",
            f"{r['auc_plus']:.4f}",
        ]
        for r in results
    ]
    table = format_table(
        [
            "Dataset",
            "detector (HGT) total inf.",
            "detector+ total inf.",
            "speedup",
            "AUC detector",
            "AUC detector+",
        ],
        rows,
    )
    text = "Figure 10 — sampler ablation (test-set inference)\n" + table
    path = write_result("fig10_sampler_ablation", text)
    print("\n" + text + f"\n-> {path}")

    # detector+ must be clearly faster. The paper reports 5-7x at eBay
    # scale; on the simulated graphs the gap is bounded by the small
    # connected components HGSampling saturates, so the larger dataset
    # carries the firm assertion and the smaller one the direction.
    by_name = {r["dataset"]: r for r in results}
    assert by_name["ebay-large-sim"]["speedup"] > 1.3
    assert by_name["ebay-small-sim"]["speedup"] > 1.0
    for r in results:
        # ...without sacrificing AUC (paper: slightly better, even).
        assert r["auc_plus"] > r["auc_hgt"] - 0.03
