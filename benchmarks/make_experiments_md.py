"""Assemble EXPERIMENTS.md from benchmarks/results/*.txt.

Usage:  python benchmarks/make_experiments_md.py
Run after ``pytest benchmarks/ --benchmark-only`` so every result file
exists. Pairs each reproduced artefact with the paper's reference
numbers and the shape conclusion the bench asserts.
"""

from __future__ import annotations

import os

RESULTS = os.path.join(os.path.dirname(__file__), "results")
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of *xFraud* (VLDB 2021) regenerated on the
synthetic substrate. Absolute numbers are not comparable — the paper
ran on eBay's proprietary billion-scale graphs and a GPU cluster, this
repo runs a scaled simulation on one CPU — so each experiment reports
the paper's reference values, our measured values, and whether the
**shape** (orderings, trade-offs, crossovers) reproduces. The shape
claims are enforced as assertions inside `benchmarks/bench_*.py`; a
green `pytest benchmarks/ --benchmark-only` certifies every row below.

Regenerate: `pytest benchmarks/ --benchmark-only && python benchmarks/make_experiments_md.py`
"""

SECTIONS = [
    (
        "Table 2 & 6 — dataset statistics",
        "table2_6_datasets",
        """Paper: eBay-small 289K nodes / 613K edges / 4.30% fraud (114 features);
eBay-large 8.9M / 13.2M / 3.57% (480); eBay-xlarge 1.1B / 3.7B / 4.33% (480);
txn nodes dominate every mix (42–77%).

Shape reproduced: five node types with txn the most frequent, sparsity
in the 1.3–3.5 edges/node band, post-downsampling fraud rate in the low
percent — asserted in `bench_datasets.py`.""",
    ),
    (
        "Table 3 & 7 — end-to-end detector comparison",
        "table3_7_end_to_end",
        """Paper (8 machines, mean over seeds): detector+ AUC 0.9074 > GEM 0.8961 >
GAT 0.8879; detector+ AP 0.594 well ahead (GEM 0.456, GAT 0.430); GEM fastest
inference (0.0167 s/batch), detector+ slowest (0.0799 s/batch); 16 machines
~1.8x faster per epoch with AUC drop for detector+ (0.9074 -> 0.8892).

Shape asserted in `bench_end_to_end.py`: detector+ clearly beats the
GEM-style model on AUC and AP (the paper's headline architecture
comparison, Sec. 1 contribution (1)); GEM fastest inference; 16 workers
faster per epoch with no AUC gain. **Divergence:** at simulation scale the
type-blind GAT baseline overperforms its paper ranking — with 10^3–10^4
labeled nodes and transductive training, convergence speed and neighbour
feature-fingerprint memorisation dominate, favouring the single shared
projection. The bench asserts detector+ stays within noise of GAT and
EXPERIMENTS reports the measured numbers.""",
    ),
    (
        "Figures 8 / 9 / 15 — PR and ROC curves",
        "fig8_9_15_curves",
        """Paper: detector+ dominates the PR trade-off and the ROC at FPR < 0.1
("xFraud significantly outperforms GAT and GEM when only a small FPR is
allowed").

Shape asserted in `bench_curves.py`: detector+'s partial AUC (FPR<0.1) is
at least GEM's and within noise of GAT's (see the GAT divergence note).""",
    ),
    (
        "Figure 10 — sampler ablation (detector vs detector+)",
        "fig10_sampler_ablation",
        """Paper: detector+ (GraphSAGE sampling) is 5x (eBay-large) to 7x
(eBay-small) faster in total test-set inference than detector (HGSampling),
at equal or slightly better AUC (0.7262 vs 0.7248 small; 0.8690 vs 0.8683
large).

Shape asserted in `bench_sampler_ablation.py`: detector+ clearly faster at
equal AUC. The magnitude is bounded on the simulation because HGSampling
saturates our small connected components; the 5–7x arises at eBay scale.""",
    ),
    (
        "Sampler fast path — vectorized CSR batch sampling (repo optimisation)",
        "fastpath",
        """Not a paper table: this is the serving-path optimisation this repo
adds on top of the paper's samplers. The scalar per-node walk is kept as
the executable specification (``reference=True``); the vectorized CSR
path must return seed-for-seed identical subgraphs (both share one
stateless hash RNG), and a bounded LRU subgraph cache fronts the fast
path in serving.

Shape asserted in `bench_sampler_fastpath.py`: equivalence on every
(sampler, batch-size) configuration; vectorized speedup >= 2x at batch
128 for both samplers (the conservative floor CI enforces via
``repro bench-sampler --min-speedup 2.0``); end-to-end fast path
(vectorized + warmed cache) >= 5x at batch 128.""",
    ),
    (
        "Figure 14 — distributed convergence",
        "fig14_convergence",
        """Paper (Appendix C): 16-machine training does not converge faster and
lands at worse final AUC than 8-machine training, for all three models.

Shape asserted in `bench_convergence.py`: detector+'s final AUC on 16
workers does not beat 8 workers.""",
    ),
    (
        "Table 1 — hit rate of 13 centralities vs GNNExplainer vs random",
        "table1_hit_rates",
        """Paper (all 41 communities): informative measures cluster tightly
(H_Top5 0.441–0.469, GNNExplainer 0.445) far above random (0.127); hit
rates grow with k toward ~0.92 at Top25; no centrality dominates.

Shape asserted in `bench_table1_centrality.py`: GNNExplainer and the
centralities beat random at Top5; hit rates grow with k; GNNExplainer
lands inside the centrality band. Absolute agreement is lower than the
paper's (their annotators and the explainer both concentrate on the same
real risk paths; our simulated panel necessarily agrees less).""",
    ),
    (
        "Tables 4 & 12 — hybrid explainer on the 21/20 split",
        "table4_12_hybrid",
        """Paper: the hybrid (grid/ridge) matches or beats both pure strategies at
every k (e.g. Top10 0.811 hybrid-ridge vs 0.782/0.776 pure), and the
polynomial-degree search selects degree 1.

Shape asserted in `bench_hybrid.py`: hybrid never falls below the weaker
pure strategy, matches-or-beats both on a subset of k, and the
polynomial-degree search selects degree 1.""",
    ),
    (
        "Tables 8–11 — GNNExplainer vs random under avg/min/sum aggregation",
        "table8_11_aggregations",
        """Paper: GNNExplainer beats random at every k under every aggregation
(Top5 0.45 vs 0.13); the gap is largest at Top5 and shrinks as k grows; no
substantial difference between aggregation strategies or community labels.

Shape asserted in `bench_agg_methods.py`: positive gap at Top5 and on
average across k for all three aggregations, with no material loss at any
k.""",
    ),
    (
        "Table 13 — confusion by community complexity",
        "table13_case_studies",
        """Paper: no false positives in complex communities; higher FN share in
complex communities (24%) than FP (0%); most communities classified
correctly. Case studies (Figures 11/16/17) rendered as text + DOT.

Shape asserted in `bench_case_studies.py`: counts add up and the majority
of communities are classified correctly.""",
    ),
    (
        "Tables 14–19 — threshold sweeps and the production projection",
        "tables14_19_thresholds",
        """Paper: TPR falls / TNR rises monotonically with the threshold; at high
thresholds detector+ keeps usable recall at precision near 1 where the
baselines are empty; Appendix H.4 projects 0.98 precision at 4.33% fraud
to ~0.32 on the 0.043% stream (and 0.95 -> ~0.16).

Shape asserted in `bench_thresholds.py`: monotone sweeps; detector+
retains recall > 0.02 at precision > 0.8 in the high-threshold regime. The
H.4 projection identities are unit-tested exactly
(`tests/test_metrics.py::TestStreamProjection`).""",
    ),
    (
        "Figure 7 — the explainer/centrality trade-off",
        "fig7_tradeoff",
        """Paper: neither GNNExplainer nor any centrality dominates across
communities — each wins on a meaningful subset, motivating the hybrid.

Shape asserted in `bench_tradeoff.py`: both sides win on >= 3 of the 41
communities for the headline measure (edge betweenness).""",
    ),
    (
        "Figures 12 & 13 — KV-store data loading",
        "fig12_13_kvstore",
        """Paper: replacing the single-threaded (LevelDB-style) store with
multi-reader mmap (LMDB) cut eBay-large data loading from ~45 min to
~1 min per epoch.

Shape asserted in `bench_kvstore.py`: the multi-handle design never loses
to the serialised one under 4-way concurrent loading; its advantage grows
with reader contention (up to ~3x in contended runs on this machine).""",
    ),
    (
        "Table 5 / Figure 1 — heterogeneous dataset survey",
        "table5_fig1_survey",
        """Paper: Appendix A surveys 2015–2021 heterogeneous datasets; eBay-xlarge
is the largest reported heterogeneous GNN workload (1.1B nodes / 3.7B edges).

Reproduced as static data plus the live statistics of the simulated
datasets; asserted in `bench_survey.py`.""",
    ),
    (
        "Ablation — graph value (feature-only MLP vs GNNs)",
        "ablation_feature_only",
        """Implied by the paper's premise: relational fraud (stolen cards whose
features mimic normal buying) is invisible to a feature-only model.

Shape asserted in `bench_feature_only.py`: every GNN beats the
feature-only MLP by a clear AUC margin.""",
    ),
    (
        "Ablation — shared vs target-specific aggregation (Sec. 3.2.1)",
        "ablation_aggregation",
        """Paper: "We see a better performance in our detector when shared weights
among different types of nodes are used" (and lower compute cost).

Shape asserted in `bench_ablation_aggregation.py`: the shared variant uses
fewer parameters and does not lose AUC.""",
    ),
]


def main() -> None:
    parts = [HEADER]
    for title, result_name, commentary in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(commentary.strip() + "\n")
        path = os.path.join(RESULTS, f"{result_name}.txt")
        if os.path.exists(path):
            with open(path) as handle:
                body = handle.read().strip()
            # Keep the generated file readable: clip very long dumps.
            lines = body.splitlines()
            if len(lines) > 60:
                body = "\n".join(lines[:60]) + f"\n… ({len(lines) - 60} more lines in benchmarks/results/{result_name}.txt)"
            parts.append(f"\nMeasured (this run):\n\n```\n{body}\n```\n")
        else:
            parts.append(
                f"\n*(results file benchmarks/results/{result_name}.txt missing — run the bench suite)*\n"
            )
    with open(OUTPUT, "w") as handle:
        handle.write("\n".join(parts))
    print(f"wrote {os.path.abspath(OUTPUT)}")


if __name__ == "__main__":
    main()
