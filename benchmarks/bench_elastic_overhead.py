"""Elastic supervision overhead — self-healing must be (almost) free.

The elastic supervisor wraps every synchronisation round in failure
detection, heartbeat bookkeeping, an in-memory CRC-verified snapshot,
and straggler accounting. None of that may tax the fault-free path:
this bench trains the same model over the *same* rendezvous-hashed
shards twice — once under the plain ``DistributedTrainer``, once under
a fault-free ``ElasticTrainer`` — and compares real (not simulated)
p50 wall-clock per epoch. Shape check: supervision costs under 5% at
the median.
"""

import time

import numpy as np

from _helpers import format_table, model_config, write_result
from repro.data import ebay_small_sim
from repro.models import GEMModel
from repro.obs import Tracer
from repro.train import (
    DistributedTrainer,
    ElasticConfig,
    ElasticTrainer,
    TrainConfig,
    make_worker_partitions,
)

EPOCHS = 12
WORKERS = 8
SCALE = 0.3


def test_elastic_overhead(benchmark):
    bundle = ebay_small_sim(seed=0, scale=SCALE)
    graph = bundle.graph
    config = TrainConfig(epochs=EPOCHS, batch_size=1024, seed=0)
    elastic_config = ElasticConfig(num_partitions=32)

    # Plain engine over the *same* shards the supervisor would build, so
    # the delta is pure supervision (detector + snapshot + accounting).
    supervisor = ElasticTrainer(
        GEMModel(model_config(graph.feature_dim, seed=0)),
        graph,
        bundle.train_nodes,
        num_workers=WORKERS,
        config=config,
        elastic=elastic_config,
    )
    plain_workers = make_worker_partitions(
        graph,
        bundle.train_nodes,
        members=sorted(range(WORKERS)),
        partition_ids=supervisor.partition_ids,
        seed=config.seed,
    )
    plain = DistributedTrainer(
        GEMModel(model_config(graph.feature_dim, seed=0)), plain_workers, config
    )
    plain_epochs = []
    for epoch in range(EPOCHS):
        started = time.perf_counter()
        plain.train_epoch(epoch)
        plain_epochs.append(time.perf_counter() - started)

    tracer = Tracer()
    supervisor.tracer = tracer
    supervisor.fit()
    elastic_epochs = [
        span.duration_s for span in tracer.spans() if span.name == "supervise_epoch"
    ]
    assert len(elastic_epochs) == EPOCHS

    plain_p50 = float(np.median(plain_epochs))
    elastic_p50 = float(np.median(elastic_epochs))
    overhead = elastic_p50 / plain_p50 - 1.0

    benchmark.pedantic(
        lambda: supervisor._supervised_epoch(EPOCHS), rounds=5, iterations=1
    )

    rows = [
        ["plain DDP engine", f"{plain_p50:.3f}s", "-"],
        ["elastic supervisor (fault-free)", f"{elastic_p50:.3f}s", f"{overhead:+.1%}"],
    ]
    table = format_table(["path", "p50 s/epoch", "overhead"], rows)
    text = (
        f"Elastic supervision overhead ({WORKERS} workers, {EPOCHS} epochs, "
        f"scale={SCALE})\n\n{table}\n\n"
        "Fault-free supervision must stay under 5% p50 overhead per epoch; "
        "failure detection, heartbeats, and the CRC-verified in-memory "
        "snapshot are all the elastic path adds when nothing fails."
    )
    path = write_result("elastic", text)
    print(f"\n{text}\nwrote {path}")

    # 5% budget plus measurement headroom (shared-CI timer noise).
    assert overhead < 0.05 + 0.10, f"supervision overhead {overhead:.1%} exceeds budget"
