"""Observability overhead — tracing/metrics must be (almost) free.

The obs layer is wired into the hottest path in the repo: every
``ScoringService.score`` call opens a span tree and, with a registry
attached, lands in latency histograms. This bench scores the same
request stream three ways — instrumentation off (NULL_TRACER),
tracing + metrics on, and trace-disabled (``enabled=False``) — and
compares p50 latency. Shape check: enabling tracing+metrics costs
under 5% at the median, and a disabled tracer costs nothing
measurable.
"""

import time

import numpy as np

from _helpers import format_table, write_result
from repro import (
    DetectorConfig,
    MetricsRegistry,
    ScoringService,
    ServiceConfig,
    TrainConfig,
    Trainer,
    Tracer,
    XFraudDetectorPlus,
)
from repro.data import ebay_small_sim
from repro.train.metrics import latency_percentiles

REQUESTS = 120
WARMUP = 10


def _run(model, graph, nodes, tracer=None, registry=None):
    with ScoringService(
        model,
        graph,
        config=ServiceConfig(deadline_s=5.0),
        tracer=tracer,
        registry=registry,
    ) as service:
        for node in nodes[:WARMUP]:
            service.score(int(node))
        latencies = []
        for node in nodes:
            started = time.perf_counter()
            service.score(int(node))
            latencies.append(time.perf_counter() - started)
    return latency_percentiles(latencies)


def test_obs_overhead(benchmark):
    bundle = ebay_small_sim(seed=0, scale=0.3)
    graph = bundle.graph
    model = XFraudDetectorPlus(DetectorConfig(feature_dim=graph.feature_dim, seed=0))
    Trainer(model, TrainConfig(epochs=1, batch_size=2048, seed=0)).fit(
        graph, bundle.train_nodes
    )
    nodes = np.asarray(bundle.test_nodes[:REQUESTS], dtype=np.int64)

    baseline = _run(model, graph, nodes)
    traced = _run(model, graph, nodes, tracer=Tracer(), registry=MetricsRegistry())
    disabled = _run(model, graph, nodes, tracer=Tracer(enabled=False))

    with ScoringService(
        model, graph, config=ServiceConfig(deadline_s=5.0), tracer=Tracer(),
        registry=MetricsRegistry(),
    ) as service:
        benchmark.pedantic(
            lambda: service.score(int(nodes[0])), rounds=30, iterations=1
        )

    overhead_traced = traced["p50"] / baseline["p50"] - 1.0
    overhead_disabled = disabled["p50"] / baseline["p50"] - 1.0
    rows = [
        ["off (no tracer)", f"{baseline['p50'] * 1e3:.3f}ms", "-"],
        ["tracing + metrics", f"{traced['p50'] * 1e3:.3f}ms", f"{overhead_traced:+.1%}"],
        ["tracer disabled", f"{disabled['p50'] * 1e3:.3f}ms", f"{overhead_disabled:+.1%}"],
    ]
    text = (
        "Observability overhead — ScoringService p50 latency\n"
        + format_table(["Instrumentation", "p50", "overhead"], rows)
    )
    path = write_result("obs_overhead", text)
    print("\n" + text + f"\n-> {path}")

    # Targets: <5% p50 regression with tracing on, ~0% disabled. The
    # asserts carry headroom for CI timer noise on sub-ms latencies.
    assert overhead_traced < 0.05 + 0.10
    assert overhead_disabled < 0.10
