"""Tables 4 & 12 — the hybrid explainer on train/test communities.

Train the hybrid coefficients (ridge and grid) on the first 21
communities, evaluate on the last 20 — exactly the paper's split — and
compare against pure edge betweenness and pure GNNExplainer. Shape
check: the hybrid is at least as good as the weaker pure strategy at
every k, and it beats or matches both pure strategies on most k
(the paper's "consistently outperforms" claim, allowing simulation
noise).
"""

import numpy as np

from _helpers import community_weight_sets, format_table, write_result
from repro.explain import HybridExplainer, fit_grid, fit_polynomial_degree, fit_ridge


def test_table4_12_hybrid_explainer(benchmark, explained_communities):
    weights = community_weight_sets(explained_communities, "edge_betweenness")
    train, test = weights[:21], weights[21:]

    benchmark.pedantic(
        lambda: fit_grid(train[:5], k=5, grid_steps=11, draws=10), rounds=1, iterations=1
    )

    pure_centrality = HybridExplainer(1.0, 0.0, "edge_betweenness")
    pure_explainer = HybridExplainer(0.0, 1.0, "gnn_explainer")

    ks = (5, 10, 15, 20, 25)
    rows = []
    results = {}
    for k in ks:
        ridge = fit_ridge(train, k=k, draws=50)
        grid = fit_grid(train, k=k, grid_steps=101, draws=50)
        cell = {
            "centrality": pure_centrality.hit_rate(test, k, draws=100),
            "explainer": pure_explainer.hit_rate(test, k, draws=100),
            "ridge": ridge.hit_rate(test, k, draws=100),
            "grid": grid.hit_rate(test, k, draws=100),
            "grid_A": grid.coeff_centrality,
        }
        results[k] = cell
        rows.append(
            [
                f"Top{k}",
                f"{cell['centrality']:.4f}",
                f"{cell['explainer']:.4f}",
                f"{cell['ridge']:.4f}",
                f"{cell['grid']:.4f}",
                f"{cell['grid_A']:.2f}",
            ]
        )

    degree, _ = fit_polynomial_degree(train)
    table = format_table(
        [
            "H(_)",
            "Edge betweenness H(c)",
            "GNNExplainer H(e)",
            "Hybrid (ridge) H(h)",
            "Hybrid (grid) H(h)",
            "A_train (grid)",
        ],
        rows,
    )
    text = (
        "Tables 4 & 12 — hybrid explainer on the 21/20 train/test split\n"
        + table
        + f"\n\nBest polynomial feature degree (Appendix F(1)): {degree}"
    )
    path = write_result("table4_12_hybrid", text)
    print("\n" + text + f"\n-> {path}")

    # The hybrid never falls below the weaker pure strategy.
    for k in ks:
        cell = results[k]
        floor = min(cell["centrality"], cell["explainer"]) - 0.02
        assert cell["grid"] >= floor
        assert cell["ridge"] >= floor

    # On at least two of five ks a hybrid matches or beats BOTH pure
    # strategies (the paper reports consistent wins; simulation noise
    # makes the per-k outcome less stable).
    wins = sum(
        1
        for k in ks
        if max(results[k]["grid"], results[k]["ridge"])
        >= max(results[k]["centrality"], results[k]["explainer"]) - 0.01
    )
    assert wins >= 2

    # Appendix F: the linear combination (degree 1) is the best fit.
    assert degree == 1
