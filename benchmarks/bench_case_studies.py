"""Table 13 — TP/TN/FP/FN confusion in simple vs complex communities.

Classifies the 41 explained communities by the detector's seed score
and splits the confusion by community complexity (simple = one buyer).
Also emits one rendered case study per condition (the Figure 11/16/17
analogue, as text + DOT). Shape check from the paper: false negatives
concentrate in complex communities relative to false positives.
"""

from _helpers import format_table, write_result
from repro.explain import classify_communities, confusion_by_complexity, render_dot, render_text


def test_table13_case_studies(benchmark, explained_communities):
    explained = explained_communities
    communities = [e.community for e in explained]
    scores = [e.detector_score for e in explained]

    benchmark.pedantic(
        lambda: confusion_by_complexity(classify_communities(communities, scores)),
        rounds=3,
        iterations=1,
    )

    cases = classify_communities(communities, scores, threshold=0.5)
    table = confusion_by_complexity(cases)

    rows = []
    for bucket in ("simple", "complex"):
        total = max(sum(table[bucket].values()), 1)
        for condition in ("TP", "TN", "FP", "FN"):
            count = table[bucket][condition]
            rows.append([bucket, condition, count, f"{100.0 * count / total:.1f}%"])
    summary = format_table(["Community type", "Condition", "Count", "Share"], rows)

    # One rendered case study per observed condition.
    rendered = []
    seen = set()
    for case, explanation in zip(cases, explained):
        if case.condition in seen:
            continue
        seen.add(case.condition)
        rendered.append(
            f"--- {case.condition} (score={case.score:.3f}) ---\n"
            + render_text(case.community, explanation.explainer, top_edges=5)
            + "\n"
            + render_dot(case.community, explanation.explainer)
        )

    text = "Table 13 — confusion by community complexity\n" + summary + "\n\n" + "\n\n".join(rendered)
    path = write_result("table13_case_studies", text)
    print("\n" + summary + f"\n-> {path}")

    total_cases = sum(sum(bucket.values()) for bucket in table.values())
    assert total_cases == len(communities)
    # The majority of communities are classified correctly (the
    # paper's sample has 27/41 correct at threshold 0.5).
    correct = sum(table[b][c] for b in table for c in ("TP", "TN"))
    assert correct / total_cases > 0.5
