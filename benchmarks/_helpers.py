"""Pure helpers shared by the benchmark suite (no fixtures here)."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro import CommunityWeights, DetectorConfig, XFraudDetectorPlus
from repro.models import GATModel, GEMModel

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Scaled-down stand-ins for the paper's workload sizes, chosen so the
#: full bench suite completes in minutes on one machine.
XLARGE_SCALE = 0.20
SMALL_SCALE = 0.5
LARGE_SCALE = 0.25
EPOCHS = 20
WORKER_COUNTS = (8, 16)
SEEDS = (0, 1)  # the paper's seeds A and B
NUM_COMMUNITIES = 41

MODEL_CLASSES = {"GAT": GATModel, "GEM": GEMModel, "xFraud detector+": XFraudDetectorPlus}


def write_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


def format_table(headers: List[str], rows: List[List[object]]) -> str:
    widths = [
        max(len(str(header)), max((len(str(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def model_config(feature_dim: int, seed: int) -> DetectorConfig:
    return DetectorConfig(
        feature_dim=feature_dim,
        hidden_dim=64,
        num_heads=4,
        num_layers=2,
        ffn_hidden_dim=64,
        dropout=0.2,
        seed=seed,
    )


@dataclass
class EndToEndRun:
    """One (model, #workers, seed) distributed training run."""

    model_name: str
    num_workers: int
    seed: int
    model: object
    metrics: Dict[str, float]
    seconds_per_epoch: float
    convergence: List[float]
    test_scores: np.ndarray
    test_labels: np.ndarray


@dataclass
class ExplainedCommunity:
    community: object
    human: Dict
    centralities: Dict[str, Dict]
    explainer: Dict
    detector_score: float


def community_weight_sets(
    explained: List[ExplainedCommunity], centrality: str = "edge_betweenness"
) -> List[CommunityWeights]:
    return [
        CommunityWeights(
            human=e.human,
            centrality=e.centralities[centrality],
            explainer=e.explainer,
        )
        for e in explained
    ]
