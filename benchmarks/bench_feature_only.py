"""Ablation — the value of the graph: GNNs vs a feature-only MLP.

The paper's premise is that transaction features alone miss relational
fraud (a stolen card looks like normal buying; only the shared payment
token betrays it). This bench trains a feature-only MLP with the same
head as the detector and verifies the graph models beat it.
"""

import numpy as np

from _helpers import format_table, model_config, write_result
from repro import TrainConfig, Trainer, XFraudDetectorPlus
from repro.models import FeatureMLP, GATModel


def _train(model_cls, bundle, seed):
    model = model_cls(model_config(bundle.graph.feature_dim, seed))
    trainer = Trainer(
        model,
        TrainConfig(epochs=20, batch_size=4096, learning_rate=1e-2, seed=seed, patience=10),
    )
    trainer.fit(bundle.graph, bundle.train_nodes, eval_nodes=bundle.test_nodes)
    return trainer.evaluate(bundle.graph, bundle.test_nodes)


def test_graph_value_over_features(benchmark, small):
    results = {}
    for name, cls in (
        ("feature-only MLP", FeatureMLP),
        ("GAT", GATModel),
        ("xFraud detector+", XFraudDetectorPlus),
    ):
        per_seed = [_train(cls, small, seed) for seed in (0, 1)]
        results[name] = {
            "auc": float(np.mean([m["auc"] for m in per_seed])),
            "ap": float(np.mean([m["ap"] for m in per_seed])),
        }

    mlp = FeatureMLP(model_config(small.graph.feature_dim, 0))
    batch = small.test_nodes[:256]
    benchmark.pedantic(lambda: mlp.predict_proba(small.graph, batch), rounds=5, iterations=1)

    rows = [[n, f"{r['auc']:.4f}", f"{r['ap']:.4f}"] for n, r in results.items()]
    text = "Ablation — graph value (feature-only MLP vs GNNs)\n" + format_table(
        ["Model", "AUC", "AP"], rows
    )
    path = write_result("ablation_feature_only", text)
    print("\n" + text + f"\n-> {path}")

    # Relational fraud is invisible to the MLP: every GNN must beat it.
    assert results["xFraud detector+"]["auc"] > results["feature-only MLP"]["auc"] + 0.03
    assert results["GAT"]["auc"] > results["feature-only MLP"]["auc"] + 0.03
