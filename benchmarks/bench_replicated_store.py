"""Hedged reads vs a slow replica — p99 feature-fetch latency.

The replicated feature tier's hedging claim, measured: three replicas
behind real (wall-clock) per-read sleeps, one replica slowed 10x
mid-run. An unhedged store eats the slow replica's latency on every
read it is primary for; a hedged store fires a backup read at the
next-preferred owner once the primary overruns its own latency
quantile, so the tail collapses back to roughly one threshold plus a
fast read. Acceptance: hedging cuts p99 by >= 2x.
"""

import time

from _helpers import format_table, write_result
from repro.reliability.faults import SleepKVStore
from repro.storage import InMemoryKVStore, ReplicatedConfig, ReplicatedKVStore

REPLICAS = 3
KEYS = 60
FAST_S = 0.0005  # healthy per-read latency
SLOW_FACTOR = 10
WARM_READS = 4  # reservoir warm-up sweeps before the slowdown
MEASURED_READS = 120


def _build(concurrent_hedge):
    backings = [InMemoryKVStore() for _ in range(REPLICAS)]
    sleepers = [SleepKVStore(b, delay_s=FAST_S) for b in backings]
    config = ReplicatedConfig(
        replication_factor=REPLICAS,
        concurrent_hedge=concurrent_hedge,
        hedge_quantile=0.95,
        hedge_min_observations=8,
    )
    store = ReplicatedKVStore(sleepers, config=config, clock=time.monotonic, seed=0)
    for index in range(KEYS):
        store.put(f"feat/{index}", f"row-{index}".encode() * 8)
    return store, sleepers


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _measure(concurrent_hedge):
    """p99 read latency with one replica slowed 10x after warm-up."""
    store, sleepers = _build(concurrent_hedge)
    try:
        for _ in range(WARM_READS):  # arm every replica's hedge reservoir
            for index in range(KEYS):
                store.get(f"feat/{index}")
        # Slow the replica that is primary for the most keys — the
        # worst case for an unhedged store.
        primaries = [store.owners(f"feat/{i}")[0] for i in range(KEYS)]
        slow_replica = max(set(primaries), key=primaries.count)
        sleepers[slow_replica].delay_s = FAST_S * SLOW_FACTOR

        samples = []
        for round_index in range(MEASURED_READS):
            key = f"feat/{round_index % KEYS}"
            started = time.perf_counter()
            store.get(key)
            samples.append(time.perf_counter() - started)
        return {
            "p50": _percentile(samples, 0.50),
            "p99": _percentile(samples, 0.99),
            "hedged": store.hedged_reads,
            "overruns": store.hedge_overruns,
        }
    finally:
        store.close()


def test_hedged_reads_cut_p99_vs_slow_replica(benchmark):
    unhedged = _measure(concurrent_hedge=False)
    hedged = _measure(concurrent_hedge=True)

    # pytest-benchmark timing entry: steady-state hedged reads.
    store, sleepers = _build(concurrent_hedge=True)
    for _ in range(WARM_READS):
        for index in range(KEYS):
            store.get(f"feat/{index}")
    benchmark.pedantic(lambda: store.get("feat/0"), rounds=20, iterations=1)
    store.close()

    rows = [
        [
            "unhedged",
            f"{unhedged['p50'] * 1000:.2f}ms",
            f"{unhedged['p99'] * 1000:.2f}ms",
            unhedged["hedged"],
        ],
        [
            "hedged (q=0.95)",
            f"{hedged['p50'] * 1000:.2f}ms",
            f"{hedged['p99'] * 1000:.2f}ms",
            hedged["hedged"],
        ],
        [
            "p99 improvement",
            "",
            f"{unhedged['p99'] / hedged['p99']:.2f}x",
            "",
        ],
    ]
    text = (
        f"Hedged reads vs one replica slowed {SLOW_FACTOR}x "
        f"({REPLICAS} replicas, {MEASURED_READS} reads)\n"
        + format_table(["Mode", "p50", "p99", "Backup reads"], rows)
    )
    path = write_result("replicated_hedging", text)
    print("\n" + text + f"\n-> {path}")

    # The hedging policy actually fired, and the tail claim holds.
    assert hedged["hedged"] > 0
    assert hedged["p99"] * 2 <= unhedged["p99"], (
        f"hedged p99 {hedged['p99'] * 1000:.2f}ms not 2x better than "
        f"unhedged {unhedged['p99'] * 1000:.2f}ms"
    )
