"""Streaming ingestion — WAL, incremental build, and end-to-end scoring
throughput, plus the delta-vs-compacted sampling overhead budget.

PR "streaming ingestion subsystem": events flow WAL → incremental
builder → micro-batched scorer. This bench times each stage over the
same generated event stream and asserts conservative floors (CI runs
them via the ``stream-smoke`` job):

* WAL append (fsync off, the demo configuration) and incremental
  apply+flush both clear comfortable events/s floors;
* the full ingest → build → score → feedback loop clears an
  end-to-end floor;
* sampling against the *delta-merged* CSR costs no more than
  ``DELTA_SAMPLING_BUDGET``x the compacted (canonically rebuilt) CSR —
  the merge is bit-identical, so any overhead is cache warmth, not
  layout.
"""

import time

import numpy as np

from _helpers import format_table, write_result
from repro.data import GeneratorConfig, TransactionGenerator
from repro.graph import SageSampler, SubgraphCache
from repro.models import DetectorConfig, XFraudDetectorPlus
from repro.reliability import ManualClock
from repro.serving import ScoringService, ServiceConfig
from repro.stream import (
    DriftConfig,
    EventLog,
    IncrementalGraphBuilder,
    StreamConfig,
    StreamScorer,
)

WAL_FLOOR_EVENTS_S = 2_000
BUILD_FLOOR_EVENTS_S = 1_000
END_TO_END_FLOOR_EVENTS_S = 30
DELTA_SAMPLING_BUDGET = 1.5  # delta-merged CSR vs compacted, median ratio
SAMPLING_REPEATS = 9


def _events(seed=0):
    config = GeneratorConfig(
        num_benign_buyers=450,
        num_stolen_cards=8,
        num_warehouse_rings=3,
        num_cultivated_accounts=4,
        num_guest_checkouts=16,
        num_apartment_buildings=3,
        feature_dim=114,
        risk_signal=0.4,
        seed=seed,
    )
    return TransactionGenerator(config).event_stream(interleave=True)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _median_seconds(fn, repeats=SAMPLING_REPEATS):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_stream_throughput_and_delta_budget(benchmark, tmp_path):
    events = _events()
    feature_dim = len(events[0].features)
    n_warm = len(events) // 2
    warmup, live = events[:n_warm], events[n_warm:]

    # -- stage 1: WAL append ------------------------------------------
    wal = EventLog(str(tmp_path / "bench-wal"), segment_max_bytes=256 * 1024, fsync=False)
    _, wal_seconds = _timed(lambda: wal.append_many(live))
    wal.close()
    wal_rate = len(live) / wal_seconds

    # -- stage 2: incremental apply + flush ---------------------------
    def build_all():
        builder = IncrementalGraphBuilder(feature_dim=feature_dim)
        for position, event in enumerate(events):
            builder.apply(event)
            if position % 64 == 63:
                builder.flush()
                builder.graph.csr()  # keep a CSR live so flushes merge
        builder.flush()
        return builder

    builder, build_seconds = _timed(build_all)
    build_rate = len(events) / build_seconds

    # -- delta-vs-compacted sampling overhead -------------------------
    graph = builder.graph
    probe = graph.txn_nodes[-128:]
    sampler = SageSampler(hops=2, fanout=10, seed=0)
    graph.csr()
    delta_seconds = _median_seconds(lambda: sampler.sample(graph, probe))
    builder.compact()
    compact_seconds = _median_seconds(lambda: sampler.sample(graph, probe))
    overhead = delta_seconds / compact_seconds

    # -- stage 3: end-to-end ingest → score → feedback ----------------
    warm_builder = IncrementalGraphBuilder(feature_dim=feature_dim)
    for event in warmup:
        warm_builder.apply(event)
    warm_builder.flush()
    for event in warmup:
        if event.label >= 0:
            warm_builder.apply_label(event.txn_id, event.label)
    warm_builder.compact()
    clock = ManualClock()
    clock.advance(warmup[-1].timestamp)
    model = XFraudDetectorPlus(DetectorConfig(feature_dim=feature_dim, seed=0))
    service = ScoringService(
        model,
        warm_builder.graph,
        config=ServiceConfig(
            deadline_s=60.0, queue_capacity=256, static_prior=0.05, batch_size=32
        ),
        clock=clock,
        cache=SubgraphCache(capacity=256),
    )
    scorer = StreamScorer(
        service,
        warm_builder,
        wal=EventLog(str(tmp_path / "e2e-wal"), fsync=False),
        config=StreamConfig(
            batch_size=32,
            queue_capacity=128,
            label_delay_s=4.0,
            compact_every=128,
            drift=DriftConfig(window=64, min_samples=32),
        ),
        clock=clock,
    )

    def stream_all():
        scored = 0
        for event in live:
            if event.timestamp > clock():
                clock.advance(event.timestamp - clock())
            while not scorer.ingest(event):
                scored += len(scorer.pump(max_batches=1))
            if scorer.lag_events >= 32:
                scored += len(scorer.pump(max_batches=1))
        scored += len(scorer.pump())
        return scored

    scored, e2e_seconds = _timed(stream_all)
    e2e_rate = scored / e2e_seconds
    assert scored == len(live)

    # Timed artefact for the pytest-benchmark table: one scoring
    # micro-batch through the warm stack (re-pumping matured state).
    replay = live[:32]
    def one_batch():
        nodes = [scorer.builder.node_of(event.txn_id) for event in replay]
        from repro.serving import ScoreRequest

        service.score_batch(
            [
                ScoreRequest(node=node, features=event.features)
                for node, event in zip(nodes, replay)
            ]
        )

    benchmark.pedantic(one_batch, rounds=5, iterations=1)

    rows = [
        ["wal append", len(live), f"{wal_rate:,.0f}", f">= {WAL_FLOOR_EVENTS_S:,}"],
        ["apply+flush", len(events), f"{build_rate:,.0f}", f">= {BUILD_FLOOR_EVENTS_S:,}"],
        ["ingest→score→feedback", scored, f"{e2e_rate:,.0f}", f">= {END_TO_END_FLOOR_EVENTS_S:,}"],
    ]
    table = format_table(["stage", "events", "events/s", "floor"], rows)
    overhead_line = (
        f"delta-vs-compacted sampling overhead: {overhead:.2f}x "
        f"(budget <= {DELTA_SAMPLING_BUDGET:.2f}x; "
        f"delta {delta_seconds * 1e3:.2f}ms vs compacted {compact_seconds * 1e3:.2f}ms "
        f"per 128-target sample)"
    )
    write_result("stream", table + "\n\n" + overhead_line)
    print("\n" + table + "\n" + overhead_line)

    assert wal_rate >= WAL_FLOOR_EVENTS_S
    assert build_rate >= BUILD_FLOOR_EVENTS_S
    assert e2e_rate >= END_TO_END_FLOOR_EVENTS_S
    assert overhead <= DELTA_SAMPLING_BUDGET
