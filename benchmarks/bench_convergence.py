"""Figure 14 — convergence of distributed training, 8 vs 16 workers.

Per-epoch test AUC for GAT / GEM / detector+ on both worker counts and
both seeds. Shape check from Appendix C: training on 16 workers does
not converge to a better AUC than 8 workers.
"""

import numpy as np

from _helpers import MODEL_CLASSES, WORKER_COUNTS, format_table, write_result


def test_fig14_convergence(benchmark, end_to_end_runs):
    runs = end_to_end_runs
    benchmark.pedantic(lambda: [r.convergence for r in runs], rounds=1, iterations=1)

    lines = []
    for run in runs:
        series = ", ".join(
            "-" if auc is None else f"{auc:.3f}" for auc in run.convergence
        )
        lines.append(
            f"{run.model_name:18s} workers={run.num_workers:2d} seed={'AB'[run.seed]}: {series}"
        )

    rows = []
    for model_name in MODEL_CLASSES:
        for workers in WORKER_COUNTS:
            finals = [
                run.convergence[-1]
                for run in runs
                if run.model_name == model_name and run.num_workers == workers
            ]
            rows.append([model_name, workers, f"{np.mean(finals):.4f}"])
    summary = format_table(["Model", "#machines", "final AUC (mean over seeds)"], rows)

    text = "Figure 14 — convergence (per-epoch test AUC)\n\n" + summary + "\n\n" + "\n".join(lines)
    path = write_result("fig14_convergence", text)
    print("\n" + summary + f"\n-> {path}")

    # 16-worker training must not beat 8-worker on final AUC for the
    # detector (restrained neighbour fields; Appendix C's finding).
    def final(model_name, workers):
        return float(
            np.mean(
                [
                    run.convergence[-1]
                    for run in runs
                    if run.model_name == model_name and run.num_workers == workers
                ]
            )
        )

    assert final("xFraud detector+", 16) <= final("xFraud detector+", 8) + 0.02
