"""Tables 2 & 6 — dataset summary statistics.

Regenerates the dataset-summary table (nodes, edges, fraud rate,
feature dims) and the per-node-type counts for the three simulated
datasets; the benchmark measures graph construction throughput.
"""

from repro.data import GeneratorConfig, TransactionGenerator, ebay_small_sim
from repro.graph import GraphBuilder, NODE_TYPES

from _helpers import format_table, write_result


def test_table2_table6_dataset_summary(benchmark, small, large, xlarge):
    def build_small_graph():
        generator = TransactionGenerator(GeneratorConfig(num_benign_buyers=150, seed=3))
        log = generator.downsample_benign(generator.generate())
        graph, _ = GraphBuilder().build(log)
        return graph

    benchmark.pedantic(build_small_graph, rounds=3, iterations=1)

    bundles = [small, large, xlarge]
    rows2 = []
    for bundle in bundles:
        summary = bundle.summary()
        rows2.append(
            [
                summary["dataset"],
                summary["features"],
                summary["graph_type"],
                summary["num_nodes"],
                summary["num_edges"],
                f"{summary['fraud_pct']:.2f}%",
                summary["edges_per_node"],
            ]
        )
    table2 = format_table(
        ["Dataset", "Features", "Graph type", "#Nodes", "#Edges", "Fraud%", "Edges/Node"],
        rows2,
    )

    rows6 = []
    for bundle in bundles:
        counts = bundle.graph.node_type_counts()
        total = sum(counts.values())
        for node_type in NODE_TYPES:
            rows6.append(
                [
                    bundle.name,
                    node_type,
                    counts[node_type],
                    f"{100.0 * counts[node_type] / total:.1f}%",
                ]
            )
    table6 = format_table(["Dataset", "Node type", "#Count", "Node type%"], rows6)

    text = "Table 2 (dataset summary)\n" + table2 + "\n\nTable 6 (node type counts)\n" + table6
    path = write_result("table2_6_datasets", text)
    print("\n" + text + f"\n-> {path}")

    # Shape checks mirroring the paper's bands.
    for bundle in bundles:
        assert 1.0 < bundle.summary()["fraud_pct"] < 10.0
        assert 1.2 < bundle.summary()["edges_per_node"] < 3.5
