"""Figures 8, 9, 15 — precision-recall and ROC curves on xlarge-sim.

Emits the curve series (sampled points) for every (model, #workers,
seed) run, plus the restricted-FPR (< 0.1) partial AUC of Figure 9.
Shape check: detector+'s partial AUC at small FPR beats GAT and GEM —
the paper's "xFraud significantly outperforms when only a small FPR is
allowed".
"""

import numpy as np

from _helpers import format_table, write_result
from repro.train import partial_roc_auc, precision_recall_curve, roc_curve


def _sample_series(x, y, points=12):
    idx = np.linspace(0, len(x) - 1, min(points, len(x))).astype(int)
    return [(float(x[i]), float(y[i])) for i in idx]


def test_fig8_9_15_curves(benchmark, end_to_end_runs):
    runs = end_to_end_runs
    example = runs[0]
    benchmark.pedantic(
        lambda: roc_curve(example.test_labels, example.test_scores),
        rounds=5,
        iterations=1,
    )

    lines = []
    partial = {}
    for run in runs:
        labels, scores = run.test_labels, run.test_scores
        precision, recall, _ = precision_recall_curve(labels, scores)
        fpr, tpr, _ = roc_curve(labels, scores)
        p_auc = partial_roc_auc(labels, scores, max_fpr=0.1)
        partial.setdefault((run.model_name, run.num_workers), []).append(p_auc)
        lines.append(
            f"[{run.model_name} | {run.num_workers} workers | seed {'AB'[run.seed]}]"
        )
        lines.append(
            "  PR curve (recall, precision): "
            + ", ".join(f"({r:.2f},{p:.2f})" for p, r in _sample_series(precision, recall))
        )
        lines.append(
            "  ROC curve (fpr, tpr): "
            + ", ".join(f"({f:.3f},{t:.2f})" for f, t in _sample_series(fpr, tpr))
        )
        lines.append(f"  partial AUC (FPR<0.1): {p_auc:.4f}")

    rows = [
        [model, workers, f"{np.mean(values):.4f}"]
        for (model, workers), values in sorted(partial.items())
    ]
    summary = format_table(["Model", "#machines", "partial AUC (FPR<0.1)"], rows)
    text = "Figures 8/9/15 — PR and ROC curves\n\n" + summary + "\n\n" + "\n".join(lines)
    path = write_result("fig8_9_15_curves", text)
    print("\n" + summary + f"\n-> {path}")

    detector_pauc = np.mean(partial[("xFraud detector+", 8)])
    assert detector_pauc >= np.mean(partial[("GEM", 8)]) - 1e-6
    # Competitive with GAT in the small-FPR regime (see EXPERIMENTS.md
    # for why GAT overperforms its paper ranking at simulation scale).
    assert detector_pauc >= np.mean(partial[("GAT", 8)]) - 0.02
