"""Tables 14–19 — TPR/FNR/FPR/TNR and precision/recall threshold sweeps.

Sweeps the prediction-score grids of the paper (coarse 0.1–0.9 and the
fine 0.95–0.987 tail) for every model, plus the Appendix H.4 projection
of precision back onto the pre-downsampling stream. Shape checks: TPR
falls and TNR rises with the threshold; at high thresholds detector+
retains recall where the baselines are already empty; high-threshold
precision approaches 1.
"""

import numpy as np

from _helpers import format_table, write_result
from repro.train import project_precision_to_stream, threshold_sweep

COARSE = [round(t, 2) for t in np.arange(0.1, 0.95, 0.1)]
FINE = [0.95, 0.96, 0.97, 0.975, 0.977, 0.98, 0.983, 0.985, 0.987]


def test_tables14_19_threshold_sweeps(benchmark, end_to_end_runs, xlarge):
    runs = [r for r in end_to_end_runs if r.num_workers == 8]
    benchmark.pedantic(
        lambda: threshold_sweep(runs[0].test_labels, runs[0].test_scores, COARSE),
        rounds=3,
        iterations=1,
    )

    blocks = []
    sweeps = {}
    for run in runs:
        rows = []
        for rates in threshold_sweep(run.test_labels, run.test_scores, COARSE + FINE):
            precision = "-" if rates.precision is None else f"{rates.precision:.4f}"
            rows.append(
                [
                    f"{rates.threshold:.3f}",
                    f"{rates.tpr:.4f}",
                    f"{rates.fnr:.4f}",
                    f"{rates.fpr:.4f}",
                    f"{rates.tnr:.4f}",
                    precision,
                    f"{rates.recall:.4f}",
                ]
            )
        sweeps[(run.model_name, run.seed)] = threshold_sweep(
            run.test_labels, run.test_scores, COARSE + FINE
        )
        blocks.append(
            f"[{run.model_name} | seed {'AB'[run.seed]}]\n"
            + format_table(
                ["threshold", "TPR", "FNR", "FPR", "TNR", "precision", "recall"], rows
            )
        )

    # Appendix H.4: project high-threshold precision to the raw stream.
    fraud_rate = xlarge.graph.fraud_rate()
    stream_rate = 0.00043
    detector = sweeps[("xFraud detector+", 0)]
    projections = []
    for rates in detector:
        if rates.precision is not None and rates.precision > 0.8 and rates.recall > 0.01:
            projections.append(
                (
                    rates.threshold,
                    rates.precision,
                    project_precision_to_stream(rates.precision, fraud_rate, stream_rate),
                    rates.recall,
                )
            )
    projection_rows = [
        [f"{t:.3f}", f"{p:.3f}", f"{sp:.3f}", f"{r:.3f}"] for t, p, sp, r in projections
    ]
    projection_table = format_table(
        ["threshold", "precision (sampled)", "precision (stream)", "recall"],
        projection_rows,
    )

    text = (
        "Tables 14-19 — threshold sweeps (8 workers)\n\n"
        + "\n\n".join(blocks)
        + "\n\nAppendix H.4 — precision projected to the 0.043% stream\n"
        + projection_table
    )
    path = write_result("tables14_19_thresholds", text)
    print("\n(threshold sweeps for all models)\n" + projection_table + f"\n-> {path}")

    for sweep in sweeps.values():
        tprs = [r.tpr for r in sweep]
        tnrs = [r.tnr for r in sweep]
        assert all(a >= b - 1e-12 for a, b in zip(tprs, tprs[1:]))
        assert all(a <= b + 1e-12 for a, b in zip(tnrs, tnrs[1:]))

    # detector+ keeps recall at thresholds where precision is high.
    detector_high = [r for r in detector if r.threshold >= 0.9]
    assert any(r.recall > 0.02 and (r.precision or 0) > 0.8 for r in detector_high)
