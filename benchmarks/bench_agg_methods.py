"""Tables 8–11 — GNNExplainer vs random under avg / min / sum
aggregation, overall and split by community label.

Appendix E computes the human edge-importance score by aggregating the
incident node scores three ways and reports the explainer-vs-random
hit-rate gap for each, also split into fraud-seeded (c1) and
legit-seeded (c0) communities. Shape checks: GNNExplainer beats random
under every aggregation; the Δ is largest at top-5 and shrinks with k.
"""

import numpy as np

from _helpers import format_table, write_result
from repro import AnnotatorPanel
from repro.explain import (
    AGGREGATIONS,
    TOPK_GRID,
    human_edge_importance,
    random_edge_weights,
    topk_hit_rate,
)


def test_table8_to_11_aggregations(benchmark, explained_communities):
    explained = explained_communities
    panel = AnnotatorPanel(seed=0)

    benchmark.pedantic(
        lambda: human_edge_importance(explained[0].community, panel, "avg"),
        rounds=3,
        iterations=1,
    )

    blocks = []
    deltas_by_agg = {}
    for aggregation in AGGREGATIONS:
        humans = [
            human_edge_importance(e.community, panel, aggregation) for e in explained
        ]

        def mean_rate(weight_fn, subset=None):
            rates = []
            for i, (e, human) in enumerate(zip(explained, humans)):
                if subset is not None and e.community.label != subset:
                    continue
                rates.append(topk_hit_rate(human, weight_fn(e, i), k, draws=100))
            return float(np.mean(rates)) if rates else float("nan")

        rows = []
        deltas = []
        for label, name in ((None, "all"), (0, "c0"), (1, "c1")):
            explainer_row, random_row, delta_row = [], [], []
            for k in TOPK_GRID:
                explainer_rate = mean_rate(lambda e, i: e.explainer, label)
                random_rate = mean_rate(
                    lambda e, i: random_edge_weights(e.community.graph, seed=i), label
                )
                explainer_row.append(explainer_rate)
                random_row.append(random_rate)
                delta_row.append(explainer_rate - random_rate)
            rows.append([f"Random ({name})"] + [f"{v:.2f}" for v in random_row])
            rows.append([f"GNNExplainer ({name})"] + [f"{v:.2f}" for v in explainer_row])
            rows.append([f"Δ ({name})"] + [f"{v:.2f}" for v in delta_row])
            if label is None:
                deltas = delta_row
        deltas_by_agg[aggregation] = deltas
        blocks.append(
            f'Aggregation "{aggregation}"\n'
            + format_table(["Topk hit rate"] + [f"Top{k}" for k in TOPK_GRID], rows)
        )

    text = "Tables 8-11 — GNNExplainer vs random by aggregation\n\n" + "\n\n".join(blocks)
    path = write_result("table8_11_aggregations", text)
    print("\n" + text + f"\n-> {path}")

    for aggregation, deltas in deltas_by_agg.items():
        # GNNExplainer beats random under every aggregation at the
        # small-k end, and never loses materially anywhere.
        assert deltas[0] > 0.0, (aggregation, deltas)
        assert np.mean(deltas) > 0.0, (aggregation, deltas)
        assert all(d > -0.03 for d in deltas), (aggregation, deltas)
