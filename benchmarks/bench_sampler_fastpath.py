"""Sampler fast path — reference vs vectorized vs cached throughput.

PR "vectorized batch fast path": the CSR array sampler must (a) return
seed-for-seed *identical* subgraphs to the scalar reference walk, and
(b) be materially faster at serving batch sizes. This bench times both
samplers at batch sizes 1 / 16 / 128 over the same target stream plus
the warmed :class:`~repro.graph.cache.SubgraphCache` in front of the
fast path (the full serving configuration), and asserts:

* equivalence on every (sampler, batch) configuration — the benchmark
  doubles as an end-to-end correctness sweep;
* vectorized speedup >= 2x at batch 128 for both samplers (the
  conservative floor CI also enforces via ``repro bench-sampler``);
* end-to-end fast-path (vectorized + cache) speedup >= 5x at batch 128.
"""

import numpy as np

from _helpers import format_table, write_result
from repro.graph.benchmark import (
    check_fastpath,
    render_fastpath_report,
    run_fastpath_benchmark,
)

MIN_VECTORIZED_SPEEDUP = 2.0
MIN_FASTPATH_SPEEDUP = 5.0
AT_BATCH = 128


def test_fastpath_speedup_and_equivalence(benchmark):
    results = run_fastpath_benchmark(
        batch_sizes=(1, 16, AT_BATCH), total_targets=AT_BATCH, repeats=5, seed=0
    )

    # Timed artefact for the pytest-benchmark table: one vectorized
    # batch-128 pass per sampler (the serving-path configuration).
    from repro.graph.benchmark import _make_sampler, build_bench_graph

    graph = build_bench_graph(seed=0)
    stream = graph.txn_nodes[np.arange(AT_BATCH) % len(graph.txn_nodes)]
    samplers = [_make_sampler(kind, 0, reference=False) for kind in ("sage", "hg")]
    benchmark.pedantic(
        lambda: [sampler.sample(graph, stream) for sampler in samplers],
        rounds=5,
        iterations=1,
    )

    report = render_fastpath_report(results)
    summary_rows = [
        [
            r.sampler,
            r.batch_size,
            f"{r.throughput:,.0f}",
            f"{r.speedup:.1f}x",
            f"{r.cached_speedup:.1f}x",
        ]
        for r in results
        if r.batch_size == AT_BATCH
    ]
    text = (
        report
        + "\n\n"
        + format_table(
            ["sampler", "batch", "targets/s (vectorized)", "speedup", "fastpath (cached)"],
            summary_rows,
        )
    )
    write_result("fastpath", text)

    # Shape assertions — equivalence everywhere, conservative vectorized
    # floor, and the 5x end-to-end fast-path criterion at batch 128.
    failures = check_fastpath(results, MIN_VECTORIZED_SPEEDUP, at_batch_size=AT_BATCH)
    assert not failures, failures
    for result in results:
        if result.batch_size == AT_BATCH:
            assert result.cached_speedup >= MIN_FASTPATH_SPEEDUP, (
                f"{result.sampler}@batch={AT_BATCH}: end-to-end fast path "
                f"{result.cached_speedup:.1f}x below {MIN_FASTPATH_SPEEDUP:.0f}x"
            )
