"""Figures 12 & 13 — single- vs multi-handle KV-store data loading.

The paper replaced a single-threaded (LevelDB-style) KV-store with a
multi-reader memory-mapped one (LMDB) and cut per-epoch data loading
from ~45 min to ~1 min. This bench loads feature batches from both
designs with four concurrent workers and reports throughput. Shape
check: the multi-handle design is not slower, and under contention it
wins.
"""

import threading
import time

import numpy as np

from _helpers import format_table, write_result
from repro.storage import GraphStore, MmapKVStore, WorkerLoader

NUM_WORKERS = 4
BATCHES_PER_WORKER = 30
BATCH = 64


def _concurrent_load(store, private_handle, graph):
    rng = np.random.default_rng(0)
    batches = [
        rng.integers(0, graph.num_nodes, BATCH)
        for _ in range(NUM_WORKERS * BATCHES_PER_WORKER)
    ]
    errors = []

    def worker(worker_id):
        loader = WorkerLoader(store, private_handle=private_handle)
        try:
            for i in range(BATCHES_PER_WORKER):
                loader.load_features(batches[worker_id * BATCHES_PER_WORKER + i])
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            loader.close()

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(NUM_WORKERS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors
    return elapsed


def test_fig12_13_kvstore_loading(benchmark, small, tmp_path_factory):
    graph = small.graph
    base = tmp_path_factory.mktemp("kvstore")

    single = MmapKVStore(str(base / "single.bin"), single_handle=True)
    GraphStore(single).save(graph)
    multi = MmapKVStore(str(base / "multi.bin"), single_handle=False)
    GraphStore(multi).save(graph)

    single_seconds = _concurrent_load(single, private_handle=False, graph=graph)
    multi_seconds = _concurrent_load(multi, private_handle=True, graph=graph)

    loader = WorkerLoader(multi, private_handle=True)
    rows_idx = np.arange(min(BATCH, graph.num_nodes))
    benchmark.pedantic(lambda: loader.load_features(rows_idx), rounds=5, iterations=1)
    loader.close()

    total_rows = NUM_WORKERS * BATCHES_PER_WORKER * BATCH
    rows = [
        [
            "single-handle (LevelDB-like)",
            f"{single_seconds:.3f}s",
            f"{total_rows / single_seconds:,.0f}",
        ],
        [
            "multi-handle (LMDB-like)",
            f"{multi_seconds:.3f}s",
            f"{total_rows / multi_seconds:,.0f}",
        ],
        ["speedup", f"{single_seconds / multi_seconds:.2f}x", ""],
    ]
    text = (
        "Figures 12/13 — concurrent feature loading (4 workers)\n"
        + format_table(["Design", "Wall time", "Rows/s"], rows)
    )
    path = write_result("fig12_13_kvstore", text)
    print("\n" + text + f"\n-> {path}")

    single.close()
    multi.close()

    # The multi-handle design must not lose to the serialised one.
    assert multi_seconds <= single_seconds * 1.25
