"""Tables 3 & 7 — end-to-end performance on eBay-xlarge-sim.

Reproduces the full grid (GAT / GEM / detector+, 8 vs 16 workers,
seeds A/B): accuracy, AP, AUC, simulated training time per epoch, and
per-batch inference time (batch of 640 target nodes). Shape checks:
detector+ clearly beats the GEM-style model on AUC and AP (the paper's
headline architecture comparison) and stays competitive with GAT; GEM
has the fastest inference; 16 workers run faster per epoch but score
no better than 8.
"""

import numpy as np

from _helpers import MODEL_CLASSES, SEEDS, WORKER_COUNTS, format_table, write_result
from repro.train import measure_inference_time


def _inference_stats(runs, graph, nodes):
    """Per-model inference timing using seed-A models on 8 workers."""
    stats = {}
    for run in runs:
        if run.seed == SEEDS[0] and run.num_workers == WORKER_COUNTS[0]:
            stats[run.model_name] = measure_inference_time(
                run.model, graph, nodes, batch_size=640
            )
    return stats


def test_table3_table7_end_to_end(benchmark, end_to_end_runs, xlarge):
    runs = end_to_end_runs
    inference = _inference_stats(runs, xlarge.graph, xlarge.test_nodes)

    # The benchmark times one detector+ inference batch (640 nodes),
    # the unit the paper reports.
    detector_run = next(
        r for r in runs if r.model_name == "xFraud detector+" and r.seed == 0
    )
    batch = xlarge.test_nodes[:640]
    benchmark.pedantic(
        lambda: detector_run.model.predict_proba(xlarge.graph, batch),
        rounds=3,
        iterations=1,
    )

    rows7 = []
    for run in runs:
        rows7.append(
            [
                run.model_name,
                run.num_workers,
                "AB"[run.seed],
                f"{run.metrics['accuracy']:.4f}",
                f"{run.metrics['ap']:.4f}",
                f"{run.metrics['auc']:.4f}",
                f"{run.seconds_per_epoch:.3f}",
            ]
        )
    table7 = format_table(
        ["Model", "#machines", "Seed", "Accuracy", "AP", "AUC", "Train s/epoch (sim)"],
        rows7,
    )

    rows3 = []
    for num_workers in WORKER_COUNTS:
        for model_name in MODEL_CLASSES:
            subset = [
                r for r in runs if r.model_name == model_name and r.num_workers == num_workers
            ]
            mean_auc = float(np.mean([r.metrics["auc"] for r in subset]))
            mean_epoch = float(np.mean([r.seconds_per_epoch for r in subset]))
            timing = inference[model_name]
            rows3.append(
                [
                    num_workers,
                    model_name,
                    f"{mean_auc:.4f}",
                    f"{mean_epoch:.3f}",
                    f"{timing['mean_s_per_batch']:.4f} ± {timing['std_s_per_batch']:.4f}",
                ]
            )
    table3 = format_table(
        ["#machines", "Model", "AUC", "Train s/epoch (sim)", "Inference s/batch"], rows3
    )

    text = "Table 3 (averaged over seeds)\n" + table3 + "\n\nTable 7 (full grid)\n" + table7
    path = write_result("table3_7_end_to_end", text)
    print("\n" + text + f"\n-> {path}")

    # --- shape assertions -------------------------------------------------
    def mean_auc(model_name, workers):
        return float(
            np.mean(
                [
                    r.metrics["auc"]
                    for r in runs
                    if r.model_name == model_name and r.num_workers == workers
                ]
            )
        )

    # The paper's headline GEM comparison (Sec. 1 contribution (1)):
    # the heterogeneous architecture beats the GEM-style model clearly.
    assert mean_auc("xFraud detector+", 8) > mean_auc("GEM", 8)

    def mean_ap(model_name):
        return float(
            np.mean(
                [r.metrics["ap"] for r in runs if r.model_name == model_name and r.num_workers == 8]
            )
        )

    assert mean_ap("xFraud detector+") > mean_ap("GEM")

    # Against GAT the paper reports a ~2-point AUC edge; on the
    # simulated substrate the type-blind GAT converges faster and
    # closes that gap (see EXPERIMENTS.md), so we assert detector+
    # stays competitive rather than strictly ahead.
    assert mean_auc("xFraud detector+", 8) > mean_auc("GAT", 8) - 0.05

    # GEM's attention-free convolution gives the fastest inference.
    assert (
        inference["GEM"]["mean_s_per_batch"]
        <= inference["xFraud detector+"]["mean_s_per_batch"]
    )

    # 16 workers: faster per epoch (wall-clock = slowest worker), and
    # detector+ does not improve over 8 workers (restrained fields).
    for model_name in MODEL_CLASSES:
        assert np.mean(
            [r.seconds_per_epoch for r in runs if r.model_name == model_name and r.num_workers == 16]
        ) < np.mean(
            [r.seconds_per_epoch for r in runs if r.model_name == model_name and r.num_workers == 8]
        )
    assert mean_auc("xFraud detector+", 16) <= mean_auc("xFraud detector+", 8) + 0.02
