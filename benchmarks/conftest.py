"""Session fixtures for the benchmark suite.

Heavy artefacts (trained models, explained communities) are built once
per session and shared by every bench that reproduces a table or
figure. Every bench writes its reproduced table to
``benchmarks/results/<name>.txt`` in addition to its pytest-benchmark
timing entry, so the regenerated evaluation survives the run.
"""

from __future__ import annotations

from typing import List

import pytest

from _helpers import (
    EPOCHS,
    LARGE_SCALE,
    MODEL_CLASSES,
    NUM_COMMUNITIES,
    SEEDS,
    SMALL_SCALE,
    WORKER_COUNTS,
    XLARGE_SCALE,
    EndToEndRun,
    ExplainedCommunity,
    model_config,
)
from repro import (
    AnnotatorPanel,
    ExplainerConfig,
    GNNExplainer,
    TrainConfig,
    XFraudDetectorPlus,
)
from repro.data import ebay_large_sim, ebay_small_sim, ebay_xlarge_sim
from repro.explain import all_centrality_edge_weights, human_edge_importance
from repro.graph import select_communities
from repro.train import DistributedTrainer, Trainer, make_worker_partitions


@pytest.fixture(scope="session")
def xlarge():
    return ebay_xlarge_sim(seed=0, scale=XLARGE_SCALE)


@pytest.fixture(scope="session")
def small():
    return ebay_small_sim(seed=0, scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def large():
    return ebay_large_sim(seed=0, scale=LARGE_SCALE)


@pytest.fixture(scope="session")
def end_to_end_runs(xlarge) -> List[EndToEndRun]:
    """The Table 3/7 grid: 3 models x {8, 16} workers x seeds A/B."""
    runs: List[EndToEndRun] = []
    for num_workers in WORKER_COUNTS:
        workers = make_worker_partitions(
            xlarge.graph, xlarge.train_nodes, num_workers=num_workers, num_partitions=128
        )
        for model_name, model_cls in MODEL_CLASSES.items():
            for seed in SEEDS:
                model = model_cls(model_config(xlarge.graph.feature_dim, seed))
                trainer = DistributedTrainer(
                    model,
                    workers,
                    TrainConfig(
                        epochs=EPOCHS, batch_size=4096, learning_rate=1e-2, seed=seed
                    ),
                )
                result = trainer.fit(eval_graph=xlarge.graph, eval_nodes=xlarge.test_nodes)
                scores = model.predict_proba(xlarge.graph, xlarge.test_nodes)
                runs.append(
                    EndToEndRun(
                        model_name=model_name,
                        num_workers=num_workers,
                        seed=seed,
                        model=model,
                        metrics=result.metrics,
                        seconds_per_epoch=result.seconds_per_epoch,
                        convergence=[c for c in result.convergence_curve()],
                        test_scores=scores,
                        test_labels=xlarge.graph.labels[xlarge.test_nodes],
                    )
                )
    return runs


@pytest.fixture(scope="session")
def small_detector(small):
    model = XFraudDetectorPlus(model_config(small.graph.feature_dim, seed=0))
    Trainer(
        model,
        TrainConfig(epochs=20, batch_size=4096, learning_rate=1e-2, patience=10),
    ).fit(small.graph, small.train_nodes, eval_nodes=small.test_nodes)
    return model


@pytest.fixture(scope="session")
def explained_communities(small, small_detector) -> List[ExplainedCommunity]:
    """The Sec. 5.1 sample: 41 seed communities, annotated + explained."""
    # The paper's sample: 41 communities, 18 fraud-seeded / 23 legit.
    communities = select_communities(
        small.graph,
        small.test_nodes,
        count=NUM_COMMUNITIES,
        seed=7,
        min_edges=10,
        fraud_count=18,
        max_hops=3,
    )
    panel = AnnotatorPanel(seed=0)
    explainer = GNNExplainer(small_detector, ExplainerConfig(epochs=40, seed=0))
    explained: List[ExplainedCommunity] = []
    for community in communities:
        explanation = explainer.explain(community.graph, community.seed_local)
        score = small_detector.predict_proba(community.graph, [community.seed_local])[0]
        explained.append(
            ExplainedCommunity(
                community=community,
                human=human_edge_importance(community, panel),
                centralities=all_centrality_edge_weights(community.graph),
                explainer=explanation.undirected_edge_weights(community.graph),
                detector_score=float(score),
            )
        )
    return explained
