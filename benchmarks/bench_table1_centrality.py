"""Table 1 — top-k hit rate of 13 centralities, GNNExplainer, random.

On all 41 communities: the agreement of every edge-importance source
with the (simulated) human annotations at k in {5, 10, 15, 20, 25}.
Shape checks: all informative measures beat random at every k; hit
rates grow with k; GNNExplainer lands in the same band as the
centralities (the paper's "similar hit rates" observation).
"""

import numpy as np

from _helpers import format_table, write_result
from repro.explain import CENTRALITY_MEASURES, TOPK_GRID, random_edge_weights, topk_hit_rate


def test_table1_centrality_vs_explainer(benchmark, explained_communities):
    explained = explained_communities

    benchmark.pedantic(
        lambda: topk_hit_rate(explained[0].human, explained[0].explainer, 5, draws=20),
        rounds=3,
        iterations=1,
    )

    def profile(weight_fn):
        return {
            k: float(
                np.mean([topk_hit_rate(e.human, weight_fn(e, i), k, draws=100) for i, e in enumerate(explained)])
            )
            for k in TOPK_GRID
        }

    rows = []
    table = {}
    for measure in CENTRALITY_MEASURES:
        table[measure] = profile(lambda e, i, m=measure: e.centralities[m])
        rows.append(
            [measure.replace("_", " ")]
            + [f"{table[measure][k]:.3f}" for k in TOPK_GRID]
        )
    table["gnn_explainer"] = profile(lambda e, i: e.explainer)
    rows.append(
        ["GNNExplainer weights"] + [f"{table['gnn_explainer'][k]:.3f}" for k in TOPK_GRID]
    )
    table["random"] = profile(
        lambda e, i: random_edge_weights(e.community.graph, seed=i)
    )
    rows.append(["random weights"] + [f"{table['random'][k]:.3f}" for k in TOPK_GRID])

    text = "Table 1 — top-k hit rate on all 41 communities\n" + format_table(
        ["Measure"] + [f"H_Top{k}" for k in TOPK_GRID], rows
    )
    path = write_result("table1_hit_rates", text)
    print("\n" + text + f"\n-> {path}")

    # Every informative source beats random at k=5, and does not lose
    # materially at k=10 (per-measure noise at one k is tolerated).
    for name in list(CENTRALITY_MEASURES) + ["gnn_explainer"]:
        assert table[name][5] > table["random"][5] - 0.01
        assert table[name][10] > table["random"][10] - 0.03
    assert table["gnn_explainer"][5] > table["random"][5]

    # Hit rate grows with k for the explainer and random baselines.
    for name in ("gnn_explainer", "random"):
        values = [table[name][k] for k in TOPK_GRID]
        assert values[-1] > values[0]

    # GNNExplainer lands within the centrality band (±0.12 of mean).
    centrality_top5 = np.mean([table[m][5] for m in CENTRALITY_MEASURES])
    assert abs(table["gnn_explainer"][5] - centrality_top5) < 0.15
