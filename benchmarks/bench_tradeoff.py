"""Figure 7 — the per-community trade-off between H(e) and H(c).

For each of the 41 communities, the difference between the
GNNExplainer hit rate and the best centrality hit rates at top-5.
Shape check: neither source dominates — each wins on a meaningful
fraction of communities, which is precisely the motivation for the
hybrid explainer.
"""

import numpy as np

from _helpers import format_table, write_result
from repro.explain import topk_hit_rate

BEST_CENTRALITIES = ("edge_betweenness", "degree", "edge_load", "closeness", "harmonic")


def test_fig7_tradeoff(benchmark, explained_communities):
    explained = explained_communities

    benchmark.pedantic(
        lambda: topk_hit_rate(explained[0].human, explained[0].explainer, 5, draws=20),
        rounds=3,
        iterations=1,
    )

    lines = []
    explainer_wins = {name: 0 for name in BEST_CENTRALITIES}
    centrality_wins = {name: 0 for name in BEST_CENTRALITIES}
    deltas = {name: [] for name in BEST_CENTRALITIES}
    for index, e in enumerate(explained):
        h_e = topk_hit_rate(e.human, e.explainer, 5, draws=100)
        per_measure = []
        for name in BEST_CENTRALITIES:
            h_c = topk_hit_rate(e.human, e.centralities[name], 5, draws=100)
            delta = h_e - h_c
            deltas[name].append(delta)
            if delta > 0.01:
                explainer_wins[name] += 1
            elif delta < -0.01:
                centrality_wins[name] += 1
            per_measure.append(f"{name}:{delta:+.2f}")
        lines.append(f"community {index:2d} (label {e.community.label}): " + "  ".join(per_measure))

    rows = [
        [
            name,
            explainer_wins[name],
            centrality_wins[name],
            len(explained) - explainer_wins[name] - centrality_wins[name],
            f"{np.mean(deltas[name]):+.3f}",
        ]
        for name in BEST_CENTRALITIES
    ]
    summary = format_table(
        ["Centrality", "explainer wins", "centrality wins", "ties", "mean Δ(H(e)-H(c))"],
        rows,
    )
    text = "Figure 7 — per-community trade-off at top-5\n\n" + summary + "\n\n" + "\n".join(lines)
    path = write_result("fig7_tradeoff", text)
    print("\n" + summary + f"\n-> {path}")

    # The trade-off: for the headline measure both sides win somewhere.
    assert explainer_wins["edge_betweenness"] >= 3
    assert centrality_wins["edge_betweenness"] >= 3
