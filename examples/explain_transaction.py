"""Explain a flagged transaction with the hybrid explainer (Sec. 5).

Trains a detector, extracts the community around a fraud-seeded
transaction, runs the modified GNNExplainer and edge-betweenness
centrality, combines them with the learnable hybrid explainer, and
renders the community with the learned edge weights (text + Graphviz
DOT you can pipe into ``dot -Tpng``).

Run:  python examples/explain_transaction.py
"""

from repro import (
    AnnotatorPanel,
    CommunityWeights,
    DetectorConfig,
    ExplainerConfig,
    GNNExplainer,
    TrainConfig,
    Trainer,
    XFraudDetectorPlus,
    ebay_small_sim,
    fit_grid,
    select_communities,
    topk_hit_rate,
)
from repro.explain import centrality_edge_weights, human_edge_importance, render_dot, render_text


def main() -> None:
    data = ebay_small_sim(seed=0, scale=0.5)
    config = DetectorConfig(feature_dim=data.graph.feature_dim, hidden_dim=64, num_heads=4, seed=0)
    detector = XFraudDetectorPlus(config)
    print("Training the detector ...")
    Trainer(detector, TrainConfig(epochs=12, batch_size=2048, learning_rate=1e-2)).fit(
        data.graph, data.train_nodes
    )

    print("Selecting communities around test transactions ...")
    communities = select_communities(
        data.graph, data.test_nodes, count=8, seed=2, min_edges=10, max_hops=3
    )
    fraud = next((c for c in communities if c.label == 1), communities[0])
    print(render_text(fraud))

    print("\nRunning the modified GNNExplainer ...")
    explainer = GNNExplainer(detector, ExplainerConfig(epochs=60, seed=0))
    explanation = explainer.explain(fraud.graph, fraud.seed_local)
    explainer_weights = explanation.undirected_edge_weights(fraud.graph)
    print(f"  predicted label for seed: {explanation.predicted_label}")
    top = explanation.top_features(fraud.seed_local, k=5)
    print(f"  most influential feature dims of the seed: {top.tolist()}")

    print("\nComputing edge betweenness centrality ...")
    centrality_weights = centrality_edge_weights(fraud.graph, "edge_betweenness")

    print("Fitting the hybrid explainer on the remaining communities ...")
    panel = AnnotatorPanel(seed=0)
    train_weights = []
    for community in communities:
        if community is fraud:
            continue
        community_explanation = explainer.explain(community.graph, community.seed_local)
        train_weights.append(
            CommunityWeights(
                human=human_edge_importance(community, panel),
                centrality=centrality_edge_weights(community.graph, "edge_betweenness"),
                explainer=community_explanation.undirected_edge_weights(community.graph),
            )
        )
    hybrid = fit_grid(train_weights, k=5, grid_steps=21, draws=30)
    print(f"  learned A (centrality) = {hybrid.coeff_centrality:.2f}, "
          f"B (explainer) = {hybrid.coeff_explainer:.2f}")

    target = CommunityWeights(
        human=human_edge_importance(fraud, panel),
        centrality=centrality_weights,
        explainer=explainer_weights,
    )
    hybrid_weights = hybrid.weights(target)
    print(f"  top-5 hit rate vs (simulated) human annotations: "
          f"{topk_hit_rate(target.human, hybrid_weights, 5):.3f}")

    print("\nCommunity with hybrid weights (strongest edges):")
    print(render_text(fraud, hybrid_weights, top_edges=8))
    print("\nGraphviz DOT (pipe into `dot -Tpng -o community.png`):")
    print(render_dot(fraud, hybrid_weights))


if __name__ == "__main__":
    main()
