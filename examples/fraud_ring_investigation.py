"""Investigate a warehouse fraud ring (the paper's Figure 11 scenario).

Generates a workload with a pronounced warehouse ring — one shipping
address shared by many buyers with mixed fraud/benign transactions —
trains the detector, then walks through the business-unit workflow:
flag high-risk transactions, pull the community around one of them,
and inspect the shared entities the explainer highlights.

Run:  python examples/fraud_ring_investigation.py
"""

import numpy as np

from repro import (
    DetectorConfig,
    ExplainerConfig,
    GeneratorConfig,
    GNNExplainer,
    TrainConfig,
    Trainer,
    TransactionGenerator,
    XFraudDetectorPlus,
    extract_community,
)
from repro.explain import render_text
from repro.graph import (
    NODE_TYPE_IDS,
    GraphBuilder,
    homophily_report,
    render_homophily_report,
    train_test_split,
)


def main() -> None:
    config = GeneratorConfig(
        num_benign_buyers=500,
        num_warehouse_rings=4,
        ring_buyers=(6, 10),
        ring_txns_per_buyer=(2, 4),
        num_stolen_cards=6,
        feature_dim=64,
        seed=11,
    )
    generator = TransactionGenerator(config)
    log = generator.downsample_benign(generator.generate())
    graph, index = GraphBuilder().build(log)
    train_nodes, _, test_nodes = train_test_split(graph, test_fraction=0.3, seed=0)
    print(f"Workload: {graph.num_nodes:,} nodes, fraud rate {100*graph.fraud_rate():.2f}%")

    # The paper's footnote-1 homophily tests: which entity types carry
    # fraud signal? (pmt should stand out — stolen cards.)
    print("\nHomophily tests per entity type:")
    print(render_homophily_report(homophily_report(graph)))

    detector = XFraudDetectorPlus(
        DetectorConfig(feature_dim=graph.feature_dim, hidden_dim=64, num_heads=4, seed=0)
    )
    print("Training ...")
    Trainer(detector, TrainConfig(epochs=12, batch_size=2048, learning_rate=1e-2)).fit(
        graph, train_nodes
    )

    # Business-unit triage: score the test set, take the riskiest txns.
    scores = detector.predict_proba(graph, test_nodes)
    order = np.argsort(-scores)
    print("\nTop flagged transactions:")
    ring_records = {r.txn_id for r in log if r.scenario == "warehouse_ring"}
    txn_of_node = {node: txn for txn, node in index["txn"].items()}
    flagged = []
    for position in order[:8]:
        node = int(test_nodes[position])
        txn_id = txn_of_node[node]
        in_ring = "warehouse ring!" if txn_id in ring_records else ""
        truth = "fraud" if graph.labels[node] == 1 else "legit"
        print(f"  txn {txn_id} (node {node}): risk={scores[position]:.3f} truth={truth} {in_ring}")
        flagged.append(node)

    # Pull the community around the riskiest flagged transaction.
    seed_node = flagged[0]
    community = extract_community(graph, seed_node, max_nodes=80)
    print(f"\nCommunity around node {seed_node}:")

    explainer = GNNExplainer(detector, ExplainerConfig(epochs=50, seed=0))
    explanation = explainer.explain(community.graph, community.seed_local)
    weights = explanation.undirected_edge_weights(community.graph)
    print(render_text(community, weights, top_edges=8))

    # Which shared entity does the explainer point at?
    addr_type = NODE_TYPE_IDS["addr"]
    addr_strength = {}
    for (u, v), weight in weights.items():
        for node in (u, v):
            if community.graph.node_type[node] == addr_type:
                addr_strength[node] = addr_strength.get(node, 0.0) + weight
    if addr_strength:
        hub = max(addr_strength, key=addr_strength.get)
        degree = len(community.graph.in_neighbors(hub))
        print(
            f"\nStrongest shipping address: local node {hub} "
            f"(degree {degree}, accumulated edge weight {addr_strength[hub]:.2f})"
        )
        print("A high-degree address shared across buyers is the warehouse pattern "
              "the paper's Figure 11 describes.")


if __name__ == "__main__":
    main()
