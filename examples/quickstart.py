"""Quickstart: train the xFraud detector+ and score transactions.

Builds a synthetic eBay-small-like transaction graph, trains the
heterogeneous-GNN detector, and reports the evaluation metrics the
paper uses (accuracy / AP / AUC), plus a few scored transactions.

Run:  python examples/quickstart.py
"""

from repro import (
    DetectorConfig,
    TrainConfig,
    Trainer,
    XFraudDetectorPlus,
    ebay_small_sim,
)


def main() -> None:
    print("Building the ebay-small-sim transaction graph ...")
    data = ebay_small_sim(seed=0, scale=0.5)
    summary = data.summary()
    print(
        f"  {summary['num_nodes']:,} nodes / {summary['num_edges']:,} edges, "
        f"fraud rate {summary['fraud_pct']}%"
    )

    config = DetectorConfig(
        feature_dim=data.graph.feature_dim,
        hidden_dim=64,
        num_heads=4,
        num_layers=2,
        seed=0,
    )
    detector = XFraudDetectorPlus(config)
    trainer = Trainer(
        detector, TrainConfig(epochs=12, batch_size=2048, learning_rate=1e-2)
    )

    print("Training the detector ...")
    result = trainer.fit(data.graph, data.train_nodes, eval_nodes=data.test_nodes)
    for record in result.history:
        print(
            f"  epoch {record.epoch}: loss={record.loss:.4f} "
            f"test AUC={record.eval_auc:.4f} ({record.seconds:.2f}s)"
        )

    metrics = trainer.evaluate(data.graph, data.test_nodes)
    print(
        f"\nTest metrics: accuracy={metrics['accuracy']:.4f} "
        f"AP={metrics['ap']:.4f} AUC={metrics['auc']:.4f}"
    )

    print("\nRisk scores for the first five test transactions:")
    sample = data.test_nodes[:5]
    scores = detector.predict_proba(data.graph, sample)
    for node, score in zip(sample, scores):
        label = "fraud" if data.graph.labels[node] == 1 else "legit"
        print(f"  txn node {node}: risk={score:.4f} (truth: {label})")


if __name__ == "__main__":
    main()
