"""Incremental / online training (Appendix H.5).

The paper's production proposal: train on historical data (period
T-1), then fine-tune with the newest period's transactions so the
detector tracks fresh fraud patterns without retraining from scratch.
We split the synthetic log by timestamp into two periods and compare
(a) the stale model, (b) the fine-tuned model, and (c) a model trained
on period T only, all evaluated on period-T transactions.

Run:  python examples/incremental_training.py
"""

import numpy as np

from repro import (
    DetectorConfig,
    GeneratorConfig,
    TrainConfig,
    Trainer,
    TransactionGenerator,
    XFraudDetectorPlus,
)
from repro.graph import GraphBuilder
from repro.train import roc_auc


def main() -> None:
    generator = TransactionGenerator(
        GeneratorConfig(num_benign_buyers=700, feature_dim=64, seed=21)
    )
    log = generator.downsample_benign(generator.generate())
    graph, index = GraphBuilder().build(log)

    # Split labeled transactions by timestamp median: T-1 vs T.
    stamps = {index["txn"][r.txn_id]: r.timestamp for r in log}
    nodes = np.array(sorted(stamps, key=stamps.get))
    cut = len(nodes) // 2
    period_prev, period_now = nodes[:cut], nodes[cut:]
    rng = np.random.default_rng(0)
    now_shuffled = rng.permutation(period_now)
    finetune_nodes = now_shuffled[: len(now_shuffled) // 2]
    eval_nodes = now_shuffled[len(now_shuffled) // 2 :]
    print(
        f"period T-1: {len(period_prev)} txns | period T: {len(finetune_nodes)} "
        f"fine-tune + {len(eval_nodes)} eval"
    )

    config = DetectorConfig(feature_dim=graph.feature_dim, hidden_dim=64, num_heads=4, seed=0)

    def auc(model):
        scores = model.predict_proba(graph, eval_nodes)
        return roc_auc(graph.labels[eval_nodes], scores)

    print("\nTraining on period T-1 (historical) ...")
    stale = XFraudDetectorPlus(config)
    Trainer(stale, TrainConfig(epochs=12, batch_size=2048, learning_rate=1e-2)).fit(
        graph, period_prev
    )
    stale_auc = auc(stale)
    print(f"  stale model AUC on period T: {stale_auc:.4f}")

    print("Fine-tuning with period-T data (incremental update) ...")
    finetuned = XFraudDetectorPlus(config)
    finetuned.load_state_dict(stale.state_dict())
    Trainer(
        finetuned, TrainConfig(epochs=3, batch_size=2048, learning_rate=1e-3)
    ).fit(graph, np.concatenate([period_prev, finetune_nodes]))
    finetuned_auc = auc(finetuned)
    print(f"  fine-tuned model AUC on period T: {finetuned_auc:.4f}")

    print("Training from scratch on period T only (forgets history) ...")
    fresh = XFraudDetectorPlus(config)
    Trainer(fresh, TrainConfig(epochs=12, batch_size=2048, learning_rate=1e-2)).fit(
        graph, finetune_nodes
    )
    fresh_auc = auc(fresh)
    print(f"  period-T-only model AUC: {fresh_auc:.4f}")

    print(
        f"\nstale={stale_auc:.4f}  fine-tuned={finetuned_auc:.4f}  fresh-only={fresh_auc:.4f}"
    )
    print(
        "Fine-tuning recovers most of the gap to a period-T model at a "
        "fraction of the training cost. Appendix H.5's caveat: in "
        "production one should combine historical and up-to-date data — "
        "long-con accounts are 'cultivated' over months, so purely fresh "
        "models (which win on this short synthetic horizon) would miss "
        "slowly-built fraud patterns."
    )


if __name__ == "__main__":
    main()
