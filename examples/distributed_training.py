"""Simulated distributed training (Sec. 3.3): 1 vs 4 vs 8 workers.

Partitions an eBay-large-like graph with PIC, groups the partitions
into worker shards, and trains the detector with DDP-style gradient
averaging. Reports the speed/quality trade-off the paper discusses:
more workers cut wall-clock per epoch but restrain each replica's
neighbour field.

Run:  python examples/distributed_training.py
"""

from repro import (
    DetectorConfig,
    TrainConfig,
    XFraudDetectorPlus,
    ebay_large_sim,
    make_worker_partitions,
)
from repro.train import DistributedTrainer


def main() -> None:
    print("Building the ebay-large-sim transaction graph ...")
    data = ebay_large_sim(seed=0, scale=0.12)
    print(f"  {data.graph.num_nodes:,} nodes, {len(data.train_nodes):,} labeled train txns")

    for num_workers in (1, 4, 8):
        workers = make_worker_partitions(
            data.graph, data.train_nodes, num_workers=num_workers, num_partitions=64
        )
        shard_sizes = [w.graph.num_nodes for w in workers]
        cut_edges = data.graph.num_edges - sum(w.graph.num_edges for w in workers)
        model = XFraudDetectorPlus(
            DetectorConfig(feature_dim=data.graph.feature_dim, hidden_dim=64, num_heads=4, seed=0)
        )
        trainer = DistributedTrainer(
            model, workers, TrainConfig(epochs=12, batch_size=4096, learning_rate=1e-2)
        )
        result = trainer.fit(eval_graph=data.graph, eval_nodes=data.test_nodes)
        print(
            f"\nworkers={num_workers}: shards={shard_sizes} "
            f"(edges cut by partitioning: {cut_edges})"
        )
        print(
            f"  simulated wall-clock {result.seconds_per_epoch:.2f}s/epoch, "
            f"final AUC={result.metrics['auc']:.4f}, AP={result.metrics['ap']:.4f}"
        )
        curve = ", ".join(f"{a:.3f}" for a in result.convergence_curve())
        print(f"  convergence (test AUC per epoch): {curve}")


if __name__ == "__main__":
    main()
