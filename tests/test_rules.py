"""Rule mining and the Appendix-B prefilter pipeline."""

import numpy as np
import pytest

from repro.data import GeneratorConfig, TransactionGenerator
from repro.rules import (
    Condition,
    MinerConfig,
    Rule,
    RuleMiner,
    RuleSet,
    appendix_b_pipeline,
    rule_prefilter,
)


def separable_data(n=600, seed=0):
    """Feature 0 separates the classes; feature 1 is noise."""
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.1).astype(int)
    features = rng.normal(size=(n, 4))
    features[labels == 1, 0] += 3.0
    return features, labels


class TestCondition:
    def test_greater(self):
        cond = Condition(0, ">", 1.0)
        mask = cond.apply(np.array([[0.5, 0], [1.5, 0]]))
        np.testing.assert_array_equal(mask, [False, True])

    def test_leq(self):
        cond = Condition(1, "<=", 0.0)
        mask = cond.apply(np.array([[0, -1.0], [0, 1.0]]))
        np.testing.assert_array_equal(mask, [True, False])

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            Condition(0, ">=", 1.0)

    def test_str(self):
        assert "x[2] > 1.5000" in str(Condition(2, ">", 1.5))


class TestRule:
    def test_conjunction(self):
        rule = Rule((Condition(0, ">", 0.0), Condition(1, "<=", 0.0)))
        features = np.array([[1.0, -1.0], [1.0, 1.0], [-1.0, -1.0]])
        np.testing.assert_array_equal(rule.apply(features), [True, False, False])

    def test_precision_recall(self):
        rule = Rule((Condition(0, ">", 0.5),))
        features = np.array([[1.0], [1.0], [0.0], [0.0]])
        labels = np.array([1, 0, 1, 0])
        precision, recall = rule.precision_recall(features, labels)
        assert precision == 0.5 and recall == 0.5

    def test_empty_fire(self):
        rule = Rule((Condition(0, ">", 100.0),))
        precision, recall = rule.precision_recall(np.zeros((4, 1)), np.array([1, 0, 1, 0]))
        assert precision == 0.0 and recall == 0.0


class TestMiner:
    def test_finds_separating_rule(self):
        features, labels = separable_data()
        rules = RuleMiner(MinerConfig(min_precision=0.5, min_recall=0.1)).fit(features, labels)
        assert len(rules) >= 1
        # The top rule fires on feature 0.
        assert any(c.feature == 0 for c in rules.rules[0].conditions)

    def test_rules_meet_floors(self):
        features, labels = separable_data(seed=1)
        config = MinerConfig(min_precision=0.5, min_recall=0.05)
        rules = RuleMiner(config).fit(features, labels)
        for precision, recall in rules.scores:
            assert precision >= config.min_precision
            assert recall >= config.min_recall

    def test_no_fraud_no_rules(self):
        features = np.random.default_rng(0).normal(size=(50, 3))
        rules = RuleMiner().fit(features, np.zeros(50, dtype=int))
        assert len(rules) == 0

    def test_ruleset_disjunction(self):
        rules = RuleSet(
            rules=[Rule((Condition(0, ">", 0.0),)), Rule((Condition(1, ">", 0.0),))],
            scores=[(1.0, 0.5), (1.0, 0.5)],
        )
        features = np.array([[1.0, -1.0], [-1.0, 1.0], [-1.0, -1.0]])
        np.testing.assert_array_equal(rules.apply(features), [True, True, False])

    def test_describe(self):
        features, labels = separable_data()
        rules = RuleMiner(MinerConfig(min_precision=0.3)).fit(features, labels)
        if len(rules):
            assert "p=" in rules.describe()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            RuleMiner().fit(np.zeros((3, 2)), np.zeros(4, dtype=int))


@pytest.fixture(scope="module")
def raw_log():
    config = GeneratorConfig(
        num_benign_buyers=250,
        benign_txns_per_buyer=(4, 10),
        num_stolen_cards=3,
        num_warehouse_rings=1,
        num_cultivated_accounts=2,
        num_guest_checkouts=5,
        feature_dim=24,
        seed=9,
    )
    return TransactionGenerator(config).generate()


class TestPrefilter:
    def test_keeps_all_fraud(self, raw_log):
        miner = RuleMiner(MinerConfig(min_precision=0.2))
        rules = miner.fit(raw_log.feature_matrix(), raw_log.labels())
        filtered = rule_prefilter(raw_log, rules, keep_benign_floor=0.1)
        assert sum(r.label for r in filtered) == sum(r.label for r in raw_log)

    def test_raises_fraud_rate(self, raw_log):
        miner = RuleMiner(MinerConfig(min_precision=0.2))
        rules = miner.fit(raw_log.feature_matrix(), raw_log.labels())
        filtered = rule_prefilter(raw_log, rules, keep_benign_floor=0.1)
        assert filtered.fraud_rate() > raw_log.fraud_rate()

    def test_invalid_floor(self, raw_log):
        with pytest.raises(ValueError):
            rule_prefilter(raw_log, RuleSet(), keep_benign_floor=1.5)

    def test_empty_ruleset_keeps_floor_fraction(self, raw_log):
        filtered = rule_prefilter(raw_log, RuleSet(), keep_benign_floor=0.5, seed=1)
        benign_before = sum(1 for r in raw_log if r.label == 0)
        benign_after = sum(1 for r in filtered if r.label == 0)
        assert 0.35 < benign_after / benign_before < 0.65


class TestPipeline:
    def test_three_stages_monotone_fraud_rate(self, raw_log):
        result = appendix_b_pipeline(raw_log, keep_benign_floor=0.3, benign_sample=0.2)
        rates = [stage.fraud_rate for stage in result.stages]
        assert len(rates) == 3
        # The paper's progression: each stage raises the fraud rate.
        assert rates[0] < rates[1] < rates[2]

    def test_all_fraud_survives(self, raw_log):
        result = appendix_b_pipeline(raw_log)
        fraud_raw = sum(r.label for r in raw_log)
        fraud_final = sum(r.label for r in result.log)
        assert fraud_final == fraud_raw

    def test_describe_output(self, raw_log):
        result = appendix_b_pipeline(raw_log)
        text = result.describe()
        assert "original stream" in text and "after label sampling" in text
