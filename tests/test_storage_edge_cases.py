"""Additional storage edge cases: empty stores, iteration, reopen,
torn/truncated files."""

import os

import numpy as np
import pytest

from repro.storage import CorruptStoreError, GraphStore, InMemoryKVStore, MmapKVStore


class TestEmptyStores:
    def test_empty_mmap_store_finalize(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "empty.bin"))
        store.finalize()
        assert store.keys() == []
        with pytest.raises(KeyError):
            store.get("missing")
        store.close()

    def test_double_finalize_idempotent(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "kv.bin"))
        store.put("a", b"1")
        store.finalize()
        store.finalize()
        assert store.get("a") == b"1"
        store.close()

    def test_close_before_finalize(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "kv.bin"))
        store.put("a", b"1")
        store.close()  # must not raise


class TestIteration:
    def test_items_yields_pairs(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "kv.bin"))
        payload = {f"k{i}": bytes([i, i]) for i in range(5)}
        for key, value in payload.items():
            store.put(key, value)
        store.finalize()
        assert dict(store.items()) == payload
        store.close()

    def test_contains_before_finalize(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "kv.bin"))
        store.put("a", b"1")
        assert "a" in store and "b" not in store
        store.close()


class TestTornFiles:
    """A finalized store file damaged on disk must fail *loudly* at
    open() — CorruptStoreError with a reason, never garbage reads."""

    def _finalized(self, tmp_path, records=8):
        path = str(tmp_path / "kv.bin")
        store = MmapKVStore(path)
        for index in range(records):
            store.put(f"key/{index}", bytes([index]) * 32)
        store.finalize()
        store.close()
        return path

    def test_truncated_mid_record(self, tmp_path):
        """Half the file gone — the footer (written last) is missing."""
        path = self._finalized(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(CorruptStoreError) as excinfo:
            MmapKVStore.open(path)
        assert "truncated" in str(excinfo.value) or "footer" in str(excinfo.value)

    def test_torn_footer(self, tmp_path):
        """A write torn inside the footer itself (last bytes missing)."""
        path = self._finalized(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        with pytest.raises(CorruptStoreError):
            MmapKVStore.open(path)

    def test_file_smaller_than_footer(self, tmp_path):
        path = self._finalized(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(4)
        with pytest.raises(CorruptStoreError) as excinfo:
            MmapKVStore.open(path)
        assert "too small" in str(excinfo.value)

    def test_flipped_byte_in_index_region(self, tmp_path):
        """Footer intact but the index blob it points at is damaged:
        the index checksum catches it."""
        from repro.storage.kvstore import _FOOTER_BYTES

        path = self._finalized(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - _FOOTER_BYTES - 2)
            byte = handle.read(1)
            handle.seek(size - _FOOTER_BYTES - 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptStoreError) as excinfo:
            MmapKVStore.open(path)
        assert "checksum" in str(excinfo.value)

    def test_unfinalized_file_rejected_at_open(self, tmp_path):
        path = str(tmp_path / "kv.bin")
        store = MmapKVStore(path)
        store.put("k", b"x" * 64)  # large enough to hold a footer's worth
        store.close()  # close without finalize: no footer
        with pytest.raises(CorruptStoreError) as excinfo:
            MmapKVStore.open(path)
        assert "finalized" in str(excinfo.value) or "footer" in str(excinfo.value)

    def test_intact_file_still_opens(self, tmp_path):
        """Control: the happy path survives all this suspicion."""
        path = self._finalized(tmp_path)
        reopened = MmapKVStore.open(path)
        assert reopened.get("key/3") == bytes([3]) * 32
        reopened.close()


class TestGraphStoreEdgeCases:
    def test_zero_feature_graph(self, tmp_path):
        """Graphs whose entity features are all-zero roundtrip exactly."""
        from repro.graph.hetero import NODE_TYPE_IDS, HeteroGraph

        graph = HeteroGraph(
            node_type=[NODE_TYPE_IDS["txn"], NODE_TYPE_IDS["pmt"]],
            edge_src=[0, 1],
            edge_dst=[1, 0],
            edge_type=[0, 1],
            txn_features=np.array([[1.5, -2.5], [0.0, 0.0]]),
            labels=[1, -1],
        )
        store = GraphStore(InMemoryKVStore())
        store.save(graph)
        loaded = store.load()
        np.testing.assert_allclose(loaded.txn_features, graph.txn_features)
        np.testing.assert_array_equal(loaded.labels, graph.labels)

    def test_rejects_non_bytes_values(self):
        with pytest.raises(TypeError):
            InMemoryKVStore().put("k", 123)
