"""Additional storage edge cases: empty stores, iteration, reopen."""

import numpy as np
import pytest

from repro.storage import GraphStore, InMemoryKVStore, MmapKVStore


class TestEmptyStores:
    def test_empty_mmap_store_finalize(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "empty.bin"))
        store.finalize()
        assert store.keys() == []
        with pytest.raises(KeyError):
            store.get("missing")
        store.close()

    def test_double_finalize_idempotent(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "kv.bin"))
        store.put("a", b"1")
        store.finalize()
        store.finalize()
        assert store.get("a") == b"1"
        store.close()

    def test_close_before_finalize(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "kv.bin"))
        store.put("a", b"1")
        store.close()  # must not raise


class TestIteration:
    def test_items_yields_pairs(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "kv.bin"))
        payload = {f"k{i}": bytes([i, i]) for i in range(5)}
        for key, value in payload.items():
            store.put(key, value)
        store.finalize()
        assert dict(store.items()) == payload
        store.close()

    def test_contains_before_finalize(self, tmp_path):
        store = MmapKVStore(str(tmp_path / "kv.bin"))
        store.put("a", b"1")
        assert "a" in store and "b" not in store
        store.close()


class TestGraphStoreEdgeCases:
    def test_zero_feature_graph(self, tmp_path):
        """Graphs whose entity features are all-zero roundtrip exactly."""
        from repro.graph.hetero import NODE_TYPE_IDS, HeteroGraph

        graph = HeteroGraph(
            node_type=[NODE_TYPE_IDS["txn"], NODE_TYPE_IDS["pmt"]],
            edge_src=[0, 1],
            edge_dst=[1, 0],
            edge_type=[0, 1],
            txn_features=np.array([[1.5, -2.5], [0.0, 0.0]]),
            labels=[1, -1],
        )
        store = GraphStore(InMemoryKVStore())
        store.save(graph)
        loaded = store.load()
        np.testing.assert_allclose(loaded.txn_features, graph.txn_features)
        np.testing.assert_array_equal(loaded.labels, graph.labels)

    def test_rejects_non_bytes_values(self):
        with pytest.raises(TypeError):
            InMemoryKVStore().put("k", 123)
