"""Community rendering and case-study analysis (Sec. 5.2, Table 13)."""

import numpy as np
import pytest

from repro.explain import (
    classify_communities,
    confusion_by_complexity,
    render_dot,
    render_text,
)
from repro.explain.visualize import CaseStudy
from repro.graph import select_communities


@pytest.fixture(scope="module")
def communities(tiny_graph, tiny_splits):
    _, test = tiny_splits
    return select_communities(tiny_graph, test, count=6, seed=3)


class TestRenderText:
    def test_contains_summary(self, communities):
        text = render_text(communities[0])
        assert "community(" in text
        assert f"label={communities[0].label}" in text

    def test_edge_weights_listed(self, communities):
        community = communities[0]
        weights = {e: float(i) for i, e in enumerate(community.undirected_edges())}
        text = render_text(community, weights, top_edges=3)
        assert text.count("w=") == 3

    def test_marks_seed(self, communities):
        community = communities[0]
        weights = {e: 1.0 for e in community.undirected_edges()}
        text = render_text(community, weights, top_edges=100)
        assert "*" in text


class TestRenderDot:
    def test_valid_dot_structure(self, communities):
        dot = render_dot(communities[0])
        assert dot.startswith("graph community {")
        assert dot.endswith("}")

    def test_seed_double_circle(self, communities):
        dot = render_dot(communities[0])
        assert "doublecircle" in dot

    def test_penwidth_encodes_weight(self, communities):
        community = communities[0]
        edges = community.undirected_edges()
        weights = {e: float(i) for i, e in enumerate(edges)}
        dot = render_dot(community, weights)
        assert "penwidth" in dot

    def test_fraud_nodes_red(self, communities):
        fraud_community = next((c for c in communities if c.label == 1), None)
        if fraud_community is None:
            pytest.skip("no fraud-seeded community in sample")
        assert '"red"' in render_dot(fraud_community)


class TestCaseStudies:
    def test_conditions(self, communities):
        scores = [1.0 if c.label == 1 else 0.0 for c in communities]
        cases = classify_communities(communities, scores)
        assert all(case.condition in ("TP", "TN") for case in cases)

    def test_misclassification_conditions(self, communities):
        scores = [0.0 if c.label == 1 else 1.0 for c in communities]
        cases = classify_communities(communities, scores)
        assert all(case.condition in ("FP", "FN") for case in cases)

    def test_score_count_mismatch(self, communities):
        with pytest.raises(ValueError):
            classify_communities(communities, [0.5])

    def test_confusion_by_complexity_totals(self, communities):
        scores = np.linspace(0, 1, len(communities))
        cases = classify_communities(communities, scores)
        table = confusion_by_complexity(cases)
        total = sum(sum(bucket.values()) for bucket in table.values())
        assert total == len(communities)
        assert set(table) == {"simple", "complex"}

    def test_threshold_changes_classification(self, communities):
        community = communities[0]
        low = classify_communities([community], [0.4], threshold=0.3)[0]
        high = classify_communities([community], [0.4], threshold=0.5)[0]
        assert low.predicted == 1 and high.predicted == 0
