"""Synthetic transaction-log generator: scenarios and pipeline."""

import numpy as np
import pytest

from repro.data import GeneratorConfig, TransactionGenerator, generate_log


def tiny_config(**overrides) -> GeneratorConfig:
    base = dict(
        num_benign_buyers=40,
        benign_txns_per_buyer=(2, 4),
        num_stolen_cards=3,
        num_warehouse_rings=2,
        num_apartment_buildings=1,
        num_cultivated_accounts=2,
        num_guest_checkouts=5,
        feature_dim=16,
        seed=3,
    )
    base.update(overrides)
    return GeneratorConfig(**base)


class TestScenarios:
    def test_all_scenarios_present(self):
        log = TransactionGenerator(tiny_config()).generate()
        scenarios = set(log.scenario_counts())
        assert {"benign", "stolen_card", "warehouse_ring", "cultivated"} <= scenarios
        assert scenarios & {"guest_linked", "guest_anonymous"}

    def test_stolen_card_reuses_victim_token(self):
        log = TransactionGenerator(tiny_config()).generate()
        benign_pmts = {r.pmt_id for r in log if r.scenario == "benign"}
        stolen = [r for r in log if r.scenario == "stolen_card"]
        assert stolen
        assert all(r.pmt_id in benign_pmts for r in stolen)
        assert all(r.label == 1 for r in stolen)

    def test_warehouse_ring_shares_address(self):
        log = TransactionGenerator(tiny_config()).generate()
        ring = [r for r in log if r.scenario == "warehouse_ring"]
        addresses = {r.addr_id for r in ring}
        # Few warehouse addresses serve many ring transactions.
        assert len(addresses) <= 2
        buyers = {r.buyer_id for r in ring}
        assert len(buyers) > len(addresses)

    def test_cultivated_attack_same_buyer_new_token(self):
        log = TransactionGenerator(tiny_config()).generate()
        benign = {r.buyer_id: r.pmt_id for r in log if r.scenario == "cultivated"}
        attacks = [r for r in log if r.scenario == "cultivated_attack"]
        assert attacks
        for record in attacks:
            assert record.buyer_id in benign
            assert record.pmt_id != benign[record.buyer_id]
            assert record.label == 1

    def test_guest_checkouts_have_no_buyer(self):
        log = TransactionGenerator(tiny_config()).generate()
        guests = [r for r in log if r.is_guest_checkout]
        assert guests
        assert all(r.buyer_id is None for r in guests)
        assert all(r.scenario.startswith("guest") for r in guests)

    def test_timestamps_strictly_increase(self):
        log = TransactionGenerator(tiny_config()).generate()
        stamps = [r.timestamp for r in log]
        assert all(b > a for a, b in zip(stamps, stamps[1:]))

    def test_txn_ids_unique(self):
        log = TransactionGenerator(tiny_config()).generate()
        ids = [r.txn_id for r in log]
        assert len(set(ids)) == len(ids)


class TestFeatures:
    def test_feature_dim_respected(self):
        log = TransactionGenerator(tiny_config(feature_dim=33)).generate()
        assert all(len(r.features) == 33 for r in log)

    def test_fraud_features_shifted(self):
        log = TransactionGenerator(tiny_config(num_benign_buyers=100)).generate()
        features = log.feature_matrix()
        labels = log.labels()
        risk_block = features[:, :16].mean(axis=1)
        assert risk_block[labels == 1].mean() > risk_block[labels == 0].mean()

    def test_feature_matrix_shape(self):
        log = TransactionGenerator(tiny_config()).generate()
        assert log.feature_matrix().shape == (len(log), 16)


class TestDownsampling:
    def test_keeps_all_fraud(self):
        generator = TransactionGenerator(tiny_config())
        log = generator.generate()
        fraud_before = sum(r.label for r in log)
        kept = generator.downsample_benign(log, keep_fraction=0.1)
        fraud_after = sum(r.label for r in kept)
        assert fraud_after == fraud_before

    def test_reduces_benign(self):
        generator = TransactionGenerator(tiny_config())
        log = generator.generate()
        kept = generator.downsample_benign(log, keep_fraction=0.1)
        benign_before = sum(1 for r in log if r.label == 0)
        benign_after = sum(1 for r in kept if r.label == 0)
        assert benign_after < benign_before

    def test_raises_fraud_rate(self):
        generator = TransactionGenerator(tiny_config())
        log = generator.generate()
        kept = generator.downsample_benign(log, keep_fraction=0.2)
        assert kept.fraud_rate() > log.fraud_rate()

    def test_generate_log_wrapper(self):
        log = generate_log(tiny_config(), downsample=True)
        assert len(log) > 0


class TestDeterminism:
    def test_same_seed_same_log(self):
        a = TransactionGenerator(tiny_config()).generate()
        b = TransactionGenerator(tiny_config()).generate()
        assert [r.txn_id for r in a] == [r.txn_id for r in b]
        assert [r.label for r in a] == [r.label for r in b]
        np.testing.assert_allclose(a.feature_matrix(), b.feature_matrix())

    def test_different_seed_differs(self):
        a = TransactionGenerator(tiny_config(seed=1)).generate()
        b = TransactionGenerator(tiny_config(seed=2)).generate()
        assert not np.allclose(
            a.feature_matrix()[: min(len(a), len(b))],
            b.feature_matrix()[: min(len(a), len(b))],
        )


class TestLogContainer:
    def test_empty_log(self):
        from repro.data import TransactionLog

        log = TransactionLog()
        assert len(log) == 0
        assert log.fraud_rate() == 0.0
        assert log.feature_matrix().size == 0


class TestApartmentBuildings:
    def test_apartment_txns_all_benign(self):
        log = TransactionGenerator(tiny_config(num_apartment_buildings=2)).generate()
        apartments = [r for r in log if r.scenario == "apartment"]
        assert apartments
        assert all(r.label == 0 for r in apartments)

    def test_apartment_shares_one_address_many_buyers(self):
        log = TransactionGenerator(tiny_config(num_apartment_buildings=1)).generate()
        apartments = [r for r in log if r.scenario == "apartment"]
        addresses = {r.addr_id for r in apartments}
        buyers = {r.buyer_id for r in apartments}
        assert len(addresses) == 1
        assert len(buyers) >= 3

    def test_apartment_structurally_mimics_warehouse(self):
        """Both scenarios produce a high-degree shared address; only the
        labels (and entity semantics) differ."""
        log = TransactionGenerator(
            tiny_config(num_apartment_buildings=1, num_warehouse_rings=1)
        ).generate()
        apartment_addr = {r.addr_id for r in log if r.scenario == "apartment"}
        warehouse_addr = {r.addr_id for r in log if r.scenario == "warehouse_ring"}
        apartment_degree = sum(1 for r in log if r.addr_id in apartment_addr)
        warehouse_degree = sum(1 for r in log if r.addr_id in warehouse_addr)
        assert apartment_degree >= 3 and warehouse_degree >= 3
