"""Single-machine trainer: learning, early stopping, evaluation."""

import numpy as np
import pytest

from repro.models import DetectorConfig, GEMModel, XFraudDetectorPlus
from repro.train import TrainConfig, Trainer, measure_inference_time, roc_auc


class TestTraining:
    def test_loss_decreases(self, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = XFraudDetectorPlus(detector_config)
        trainer = Trainer(model, TrainConfig(epochs=6, learning_rate=5e-3, seed=0))
        result = trainer.fit(tiny_graph, train)
        losses = [r.loss for r in result.history]
        assert losses[-1] < losses[0]

    def test_model_beats_chance(self, trained_detector, tiny_graph, tiny_splits):
        _, test = tiny_splits
        scores = trained_detector.predict_proba(tiny_graph, test)
        auc = roc_auc(tiny_graph.labels[test], scores)
        assert auc > 0.7

    def test_evaluate_returns_metric_dict(self, trained_detector, tiny_graph, tiny_splits):
        _, test = tiny_splits
        trainer = Trainer(trained_detector, TrainConfig(epochs=0))
        metrics = trainer.evaluate(tiny_graph, test)
        assert set(metrics) == {"accuracy", "ap", "auc"}
        assert 0 <= metrics["accuracy"] <= 1
        assert 0 <= metrics["ap"] <= 1

    def test_history_records_timing(self, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = GEMModel(detector_config)
        trainer = Trainer(model, TrainConfig(epochs=2))
        result = trainer.fit(tiny_graph, train)
        assert len(result.history) == 2
        assert all(r.seconds > 0 for r in result.history)
        assert result.seconds_per_epoch > 0

    def test_eval_nodes_tracked(self, tiny_graph, tiny_splits, detector_config):
        train, test = tiny_splits
        model = GEMModel(detector_config)
        trainer = Trainer(model, TrainConfig(epochs=3))
        result = trainer.fit(tiny_graph, train, eval_nodes=test)
        assert all(r.eval_auc is not None for r in result.history)
        assert result.best_auc > 0

    def test_early_stopping_restores_best(self, tiny_graph, tiny_splits, detector_config):
        train, test = tiny_splits
        model = GEMModel(detector_config)
        trainer = Trainer(model, TrainConfig(epochs=8, patience=1, learning_rate=0.05))
        result = trainer.fit(tiny_graph, train, eval_nodes=test)
        # The restored model must reproduce the best recorded AUC.
        scores = model.predict_proba(tiny_graph, test)
        final_auc = roc_auc(tiny_graph.labels[test], scores)
        assert final_auc == pytest.approx(result.best_auc, abs=1e-9)

    def test_shuffle_off_is_deterministic(self, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits

        def run():
            model = GEMModel(detector_config)
            trainer = Trainer(model, TrainConfig(epochs=2, shuffle=False, seed=1))
            trainer.fit(tiny_graph, train)
            return model.predict_proba(tiny_graph, train[:5])

        np.testing.assert_allclose(run(), run())


class TestInferenceTiming:
    def test_full_graph_timing(self, trained_detector, tiny_graph, tiny_splits):
        _, test = tiny_splits
        stats = measure_inference_time(trained_detector, tiny_graph, test, batch_size=64)
        assert stats["batches"] == int(np.ceil(len(test) / 64))
        assert stats["mean_s_per_batch"] > 0
        assert stats["total_s"] >= stats["mean_s_per_batch"]

    def test_sampled_timing_uses_sampler(self, trained_detector, tiny_graph, tiny_splits):
        _, test = tiny_splits
        stats = measure_inference_time(
            trained_detector, tiny_graph, test[:32], batch_size=16, sampled=True
        )
        assert stats["batches"] == 2
