"""Weight initialisers."""

import numpy as np
import pytest

from repro.nn import kaiming_uniform, uniform, xavier_uniform, zeros


class TestInitializers:
    def test_zeros(self):
        out = zeros((3, 4))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out, 0.0)

    def test_uniform_bounds(self):
        rng = np.random.default_rng(0)
        out = uniform((1000,), -0.5, 0.5, rng)
        assert out.min() >= -0.5 and out.max() <= 0.5
        assert abs(out.mean()) < 0.05

    def test_xavier_bound_formula(self):
        rng = np.random.default_rng(0)
        out = xavier_uniform((100, 200), rng)
        bound = np.sqrt(6.0 / 300)
        assert np.abs(out).max() <= bound + 1e-12

    def test_xavier_gain(self):
        rng = np.random.default_rng(0)
        small = xavier_uniform((50, 50), np.random.default_rng(1), gain=0.5)
        large = xavier_uniform((50, 50), np.random.default_rng(1), gain=2.0)
        assert np.abs(large).max() > np.abs(small).max()

    def test_xavier_one_dim(self):
        out = xavier_uniform((10,), np.random.default_rng(0))
        assert out.shape == (10,)

    def test_kaiming_bound(self):
        rng = np.random.default_rng(0)
        out = kaiming_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(out).max() <= bound + 1e-12

    def test_variance_preservation_through_linear_stack(self):
        """Xavier keeps forward activation scale roughly stable."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(256, 64))
        for _ in range(4):
            w = xavier_uniform((x.shape[1], 64), rng)
            x = np.tanh(x @ w)
        assert 0.05 < x.std() < 1.5
