"""Graph construction from transaction logs (Sec. 3.1, App. B)."""

import numpy as np
import pytest

from repro.data import GeneratorConfig, TransactionGenerator
from repro.graph import BuildConfig, GraphBuilder, NODE_TYPE_IDS, train_test_split


@pytest.fixture(scope="module")
def log():
    config = GeneratorConfig(
        num_benign_buyers=50,
        num_stolen_cards=3,
        num_warehouse_rings=2,
        num_cultivated_accounts=2,
        num_guest_checkouts=6,
        feature_dim=12,
        seed=5,
    )
    generator = TransactionGenerator(config)
    return generator.downsample_benign(generator.generate())


class TestBuild:
    def test_txn_nodes_first_and_labeled(self, log):
        graph, index = GraphBuilder().build(log)
        txn_ids = sorted(index["txn"].values())
        assert txn_ids == list(range(len(log)))
        assert np.all(graph.labels[: len(log)] >= 0)

    def test_entities_deduplicated(self, log):
        graph, index = GraphBuilder().build(log)
        pmt_external = {r.pmt_id for r in log}
        assert len(index["pmt"]) == len(pmt_external)

    def test_every_record_linked(self, log):
        graph, index = GraphBuilder().build(log)
        for record in log:
            txn_node = index["txn"][record.txn_id]
            neighbors = set(graph.in_neighbors(txn_node).tolist())
            for kind, external in record.linked_entities():
                assert index[kind][external] in neighbors

    def test_guest_checkout_has_no_buyer_edge(self, log):
        graph, index = GraphBuilder().build(log)
        guests = [r for r in log if r.is_guest_checkout]
        assert guests
        buyer_nodes = set(index["buyer"].values())
        for record in guests:
            txn_node = index["txn"][record.txn_id]
            neighbors = set(graph.in_neighbors(txn_node).tolist())
            assert not neighbors & buyer_nodes

    def test_only_txn_nodes_have_features(self, log):
        graph, _ = GraphBuilder().build(log)
        entity_rows = graph.txn_features[graph.node_type != NODE_TYPE_IDS["txn"]]
        np.testing.assert_allclose(entity_rows, 0.0)

    def test_empty_log_rejected(self):
        from repro.data import TransactionLog

        with pytest.raises(ValueError):
            GraphBuilder().build(TransactionLog())

    def test_fraud_rate_preserved(self, log):
        graph, _ = GraphBuilder().build(log)
        assert graph.fraud_rate() == pytest.approx(log.fraud_rate())


class TestEntityThreshold:
    def test_min_entity_txns_prunes_rare_entities(self, log):
        full, _ = GraphBuilder(BuildConfig(min_entity_txns=1)).build(log)
        pruned, _ = GraphBuilder(BuildConfig(min_entity_txns=3)).build(log)
        assert pruned.num_nodes < full.num_nodes
        assert pruned.num_edges < full.num_edges

    def test_txn_nodes_never_pruned(self, log):
        pruned, _ = GraphBuilder(BuildConfig(min_entity_txns=100)).build(log)
        assert int(np.sum(pruned.node_type == NODE_TYPE_IDS["txn"])) == len(log)


class TestSeedExpansion:
    def test_expansion_keeps_all_fraud_when_filter_permits(self, log):
        # With the neighbourhood-size filter at 1 every fraud seed's
        # neighbourhood survives (the seed itself is a transaction).
        config = BuildConfig(
            seed_expansion=True,
            hops=2,
            max_neighbors_per_hop=8,
            min_txns_per_neighborhood=1,
            benign_seed_fraction=0.3,
        )
        graph, _ = GraphBuilder(config).build(log)
        fraud_total = sum(r.label for r in log)
        assert int(np.sum(graph.labels == 1)) == fraud_total

    def test_neighborhood_filter_drops_small_fraud_components(self, log):
        # The paper filters neighbourhoods with fewer than five
        # transactions, which may drop isolated fraud seeds.
        config = BuildConfig(
            seed_expansion=True,
            hops=1,
            max_neighbors_per_hop=4,
            min_txns_per_neighborhood=5,
            benign_seed_fraction=0.3,
        )
        graph, _ = GraphBuilder(config).build(log)
        fraud_total = sum(r.label for r in log)
        assert 0 < int(np.sum(graph.labels == 1)) <= fraud_total

    def test_expansion_shrinks_graph(self, log):
        full, _ = GraphBuilder().build(log)
        config = BuildConfig(
            seed_expansion=True,
            hops=1,
            max_neighbors_per_hop=3,
            min_txns_per_neighborhood=1,
            benign_seed_fraction=0.05,
        )
        sampled, _ = GraphBuilder(config).build(log)
        assert sampled.num_nodes <= full.num_nodes


class TestSplit:
    def test_split_partitions_labeled_nodes(self, log):
        graph, _ = GraphBuilder().build(log)
        train, val, test = train_test_split(graph, test_fraction=0.25, val_fraction=0.1)
        combined = np.concatenate([train, val, test])
        assert len(np.unique(combined)) == len(combined)
        np.testing.assert_array_equal(np.sort(combined), graph.labeled_nodes)

    def test_split_stratified(self, log):
        graph, _ = GraphBuilder().build(log)
        train, _, test = train_test_split(graph, test_fraction=0.3, seed=1)
        assert (graph.labels[test] == 1).any()
        assert (graph.labels[train] == 1).any()

    def test_split_deterministic(self, log):
        graph, _ = GraphBuilder().build(log)
        a, _, _ = train_test_split(graph, seed=9)
        b, _, _ = train_test_split(graph, seed=9)
        np.testing.assert_array_equal(a, b)
