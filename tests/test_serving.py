"""Online scoring service: deadlines, breaker, admission, ladder."""

import math

import numpy as np
import pytest

from repro.reliability import (
    ManualClock,
    OutageKVStore,
    RetryPolicy,
    SlowKVStore,
    TransientReadError,
)
from repro.rules.miner import MinerConfig, RuleMiner, RuleSet
from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    RUNG_GNN,
    RUNG_PRIOR,
    RUNG_RULES,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    AdmissionQueue,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    ScoreRequest,
    ScoringService,
    ServiceConfig,
    ServiceStats,
    TokenBucket,
)
from repro.storage import GraphStore, InMemoryKVStore


class TestDeadline:
    def test_remaining_counts_down_on_injected_clock(self):
        clock = ManualClock()
        deadline = Deadline(0.1, clock=clock)
        assert deadline.remaining() == pytest.approx(0.1)
        clock.advance(0.04)
        assert deadline.remaining() == pytest.approx(0.06)
        assert not deadline.expired()
        clock.advance(0.07)
        assert deadline.expired()

    def test_check_raises_typed_error_with_stage(self):
        clock = ManualClock()
        deadline = Deadline(0.01, clock=clock)
        deadline.check("sampling hop 0")  # within budget: no raise
        clock.advance(0.02)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("feature fetch")
        assert excinfo.value.stage == "feature fetch"
        assert excinfo.value.elapsed_s == pytest.approx(0.02)

    def test_never_expires(self):
        clock = ManualClock()
        deadline = Deadline.never(clock=clock)
        clock.advance(1e9)
        deadline.check("anything")
        assert not deadline.expired()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        kwargs = dict(
            failure_threshold=0.5,
            window=4,
            min_calls=2,
            cooldown_s=1.0,
            half_open_probes=2,
            clock=clock,
        )
        kwargs.update(overrides)
        return CircuitBreaker(**kwargs)

    def test_closed_to_open_on_failure_rate(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            with pytest.raises(TransientReadError):
                breaker.call(self._boom)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

    def test_half_open_probe_success_closes(self):
        clock = ManualClock()
        breaker = self._breaker(clock, half_open_probes=1)
        for _ in range(2):
            with pytest.raises(TransientReadError):
                breaker.call(self._boom)
        clock.advance(1.5)  # cool-down elapses
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CLOSED
        assert breaker.transition_path() == (CLOSED, OPEN, HALF_OPEN, CLOSED)

    def test_half_open_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = self._breaker(clock, half_open_probes=1)
        for _ in range(2):
            with pytest.raises(TransientReadError):
                breaker.call(self._boom)
        clock.advance(1.5)
        with pytest.raises(TransientReadError):
            breaker.call(self._boom)
        assert breaker.state == OPEN
        # Re-opened: the cool-down restarts from the probe failure.
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "nope")

    def test_successes_keep_breaker_closed(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(10):
            breaker.call(lambda: 1)
        with pytest.raises(TransientReadError):
            breaker.call(self._boom)
        assert breaker.state == CLOSED  # one failure in the window is below 50%

    def test_transitions_are_reported(self):
        clock = ManualClock()
        seen = []
        breaker = CircuitBreaker(
            min_calls=1,
            window=2,
            cooldown_s=0.1,
            half_open_probes=1,
            clock=clock,
            on_transition=lambda a, b: seen.append((a, b)),
        )
        with pytest.raises(TransientReadError):
            breaker.call(self._boom)
        clock.advance(0.2)
        breaker.call(lambda: "ok")
        assert seen == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    @staticmethod
    def _boom():
        raise TransientReadError("injected")


class TestAdmission:
    def test_token_bucket_limits_and_refills(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst spent
        clock.advance(0.1)  # 1 token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_queue_sheds_when_full(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.offer("a") == (True, None)
        assert queue.offer("b") == (True, None)
        assert queue.offer("c") == (False, SHED_QUEUE_FULL)
        assert queue.take() == "a"
        assert queue.offer("c") == (True, None)

    def test_queue_sheds_on_rate_limit(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, capacity=1.0, clock=clock)
        queue = AdmissionQueue(capacity=10, bucket=bucket)
        assert queue.offer("a") == (True, None)
        assert queue.offer("b") == (False, SHED_RATE_LIMITED)

    def test_full_queue_sheds_before_spending_a_token(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, capacity=1.0, clock=clock)
        queue = AdmissionQueue(capacity=1, bucket=bucket)
        assert queue.offer("a") == (True, None)
        assert queue.offer("b") == (False, SHED_QUEUE_FULL)
        # The token the full queue rejected is still available.
        assert queue.take() == "a"
        with pytest.raises(IndexError):
            queue.take()


class TestServiceStats:
    def test_latency_percentiles_and_describe(self):
        stats = ServiceStats()
        for latency in [0.01, 0.02, 0.03, 0.04]:
            stats.record_response(RUNG_GNN, latency)
        summary = stats.latency_summary()
        # Nearest-rank: p50 of 4 samples is the 2nd, an observed value.
        assert summary["p50"] == pytest.approx(0.02)
        assert "p95=" in stats.describe()

    def test_auc_is_nan_not_error_on_single_class(self):
        stats = ServiceStats()
        stats.record_outcome(0, 0.1)
        stats.record_outcome(0, 0.2)
        assert math.isnan(stats.auc())
        assert math.isnan(ServiceStats().auc())

    def test_breaker_state_path(self):
        stats = ServiceStats()
        stats.record_breaker_transition(CLOSED, OPEN)
        stats.record_breaker_transition(OPEN, HALF_OPEN)
        assert stats.breaker_state_path() == (CLOSED, OPEN, HALF_OPEN)


@pytest.fixture(scope="module")
def mined_rules(tiny_log):
    rules = RuleMiner(MinerConfig(seed=0)).fit(
        tiny_log.feature_matrix(), tiny_log.labels()
    )
    assert len(rules) >= 1  # the ladder needs a live middle rung
    return rules


@pytest.fixture()
def feature_kv(tiny_graph):
    store = InMemoryKVStore()
    GraphStore(store).save(tiny_graph)
    return store


def _txn_nodes(graph, count=4):
    return [int(n) for n in np.flatnonzero(graph.labels >= 0)[:count]]


class TestScoringService:
    def test_gnn_rung_matches_sampled_prediction_shape(
        self, trained_detector, tiny_graph
    ):
        service = ScoringService(trained_detector, tiny_graph)
        node = _txn_nodes(tiny_graph, 1)[0]
        response = service.score(node)
        assert response.admitted
        assert response.rung == RUNG_GNN
        assert 0.0 <= response.score <= 1.0
        assert response.verdict in ("fraud", "legit")
        assert service.stats.rungs[RUNG_GNN] == 1

    def test_kv_backed_scoring_matches_in_memory(
        self, trained_detector, tiny_graph, feature_kv
    ):
        node = _txn_nodes(tiny_graph, 1)[0]
        direct = ScoringService(trained_detector, tiny_graph).score(node)
        kv_backed = ScoringService(
            trained_detector, tiny_graph, feature_store=feature_kv
        ).score(node)
        assert kv_backed.rung == RUNG_GNN
        # The sampler RNG advances between calls, so compare loosely:
        # the KV-hydrated features are bitwise the in-memory ones.
        assert 0.0 <= kv_backed.score <= 1.0
        assert direct.rung == RUNG_GNN

    def test_rate_limit_sheds_with_prior_verdict(self, trained_detector, tiny_graph):
        clock = ManualClock()
        config = ServiceConfig(rate=1.0, burst=1.0, static_prior=0.01)
        service = ScoringService(
            trained_detector, tiny_graph, config=config, clock=clock
        )
        nodes = _txn_nodes(tiny_graph, 2)
        first = service.score(nodes[0])
        second = service.score(nodes[1])
        assert first.admitted
        assert not second.admitted
        assert second.shed_reason == SHED_RATE_LIMITED
        assert second.rung == RUNG_PRIOR
        assert second.score == pytest.approx(0.01)
        assert second.verdict == "legit"
        assert service.stats.total_shed == 1

    def test_queue_burst_sheds_beyond_capacity(self, trained_detector, tiny_graph):
        config = ServiceConfig(queue_capacity=2)
        service = ScoringService(trained_detector, tiny_graph, config=config)
        nodes = _txn_nodes(tiny_graph, 4)
        shed = [service.submit(n) for n in nodes]
        rejected = [s for s in shed if s is not None]
        assert len(rejected) == 2
        assert all(r.shed_reason == SHED_QUEUE_FULL for r in rejected)
        responses = service.drain()
        assert len(responses) == 2
        assert all(r.admitted for r in responses)

    def test_kv_outage_degrades_to_rules_not_error(
        self, trained_detector, tiny_graph, feature_kv, mined_rules
    ):
        clock = ManualClock()
        store = OutageKVStore(feature_kv, windows=[(0, 10_000)])
        config = ServiceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            breaker_min_calls=2,
            breaker_window=4,
        )
        service = ScoringService(
            trained_detector,
            tiny_graph,
            feature_store=store,
            rules=mined_rules,
            config=config,
            clock=clock,
        )
        node = _txn_nodes(tiny_graph, 1)[0]
        request = ScoreRequest(node=node, features=tiny_graph.txn_features[node])
        response = service.score(request)
        assert response.admitted
        assert response.rung == RUNG_RULES
        assert response.degraded_reason == "kv_unavailable"
        assert service.stats.kv_failures == 1
        assert service.stats.kv_retries == 1

    def test_kv_outage_without_rules_falls_to_prior(
        self, trained_detector, tiny_graph, feature_kv
    ):
        clock = ManualClock()
        store = OutageKVStore(feature_kv, windows=[(0, 10_000)])
        config = ServiceConfig(
            retry=RetryPolicy(max_attempts=1), static_prior=0.07
        )
        service = ScoringService(
            trained_detector,
            tiny_graph,
            feature_store=store,
            rules=RuleSet(),  # empty: middle rung unavailable
            config=config,
            clock=clock,
        )
        node = _txn_nodes(tiny_graph, 1)[0]
        response = service.score(node)
        assert response.rung == RUNG_PRIOR
        assert response.score == pytest.approx(0.07)

    def test_transient_blips_are_absorbed_by_retries(
        self, trained_detector, tiny_graph, feature_kv
    ):
        from repro.reliability import FlakyKVStore

        clock = ManualClock()
        store = FlakyKVStore(feature_kv, fail_first=1)
        # fail_first faults the first read of *each key*, so fetch one
        # row per breaker call: every chunk fails once, then succeeds.
        config = ServiceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0001), fetch_chunk=1
        )
        service = ScoringService(
            trained_detector,
            tiny_graph,
            feature_store=store,
            config=config,
            clock=clock,
        )
        node = _txn_nodes(tiny_graph, 1)[0]
        response = service.score(node)
        assert response.rung == RUNG_GNN  # retried through, no degradation
        assert service.stats.kv_retries > 0
        assert service.breaker.state == CLOSED

    def test_invalid_node_rejected(self, trained_detector, tiny_graph):
        service = ScoringService(trained_detector, tiny_graph)
        with pytest.raises(ValueError):
            service.score(tiny_graph.num_nodes + 5)

    def test_context_manager_closes_owned_store(self, trained_detector, tiny_graph):
        class ClosableStore(InMemoryKVStore):
            closed = False

            def close(self):
                self.closed = True

        store = ClosableStore()
        GraphStore(store).save(tiny_graph)
        with ScoringService(
            trained_detector, tiny_graph, feature_store=store, own_store=True
        ) as service:
            node = _txn_nodes(tiny_graph, 1)[0]
            assert service.score(node).admitted
        assert store.closed

    def test_labeled_outcomes_feed_online_auc(self, trained_detector, tiny_graph):
        service = ScoringService(trained_detector, tiny_graph)
        fraud = [int(n) for n in np.flatnonzero(tiny_graph.labels == 1)[:3]]
        legit = [int(n) for n in np.flatnonzero(tiny_graph.labels == 0)[:3]]
        service.score_batch(fraud + legit)
        auc = service.stats.auc()
        assert not math.isnan(auc)
        assert 0.0 <= auc <= 1.0
