"""Simulated annotations, IAA, node→edge aggregation (Appendix E)."""

import numpy as np
import pytest

from repro.explain import (
    AGGREGATIONS,
    AnnotatorPanel,
    cohen_kappa,
    edge_importance_from_nodes,
    ground_truth_importance,
    human_edge_importance,
    mean_pairwise_kappa,
    random_panel,
)
from repro.graph import select_communities


@pytest.fixture(scope="module")
def communities(tiny_graph, tiny_splits):
    _, test = tiny_splits
    return select_communities(tiny_graph, test, count=6, seed=3)


class TestGroundTruth:
    def test_scores_in_range(self, communities):
        for community in communities:
            truth = ground_truth_importance(community)
            assert truth.shape == (community.graph.num_nodes,)
            assert np.all((truth >= 0) & (truth <= 2))

    def test_seed_most_important(self, communities):
        for community in communities:
            truth = ground_truth_importance(community)
            assert truth[community.seed_local] == 2

    def test_distance_decay(self, communities):
        """Mean importance near the seed exceeds the periphery's."""
        from repro.explain.annotations import _bfs_distance

        near_scores, far_scores = [], []
        for community in communities:
            truth = ground_truth_importance(community)
            distance = _bfs_distance(community.graph, community.seed_local)
            near_scores.extend(truth[distance <= 1])
            far_scores.extend(truth[distance > 2])
        if far_scores:
            assert np.mean(near_scores) > np.mean(far_scores)


class TestPanel:
    def test_panel_shape(self, communities):
        panel = AnnotatorPanel().annotate(communities[0])
        assert panel.shape == (5, communities[0].graph.num_nodes)
        assert np.all((panel >= 0) & (panel <= 2))

    def test_iaa_calibrated_to_paper(self, communities):
        """Mean pairwise kappa near the paper's 0.53."""
        kappas = [
            mean_pairwise_kappa(AnnotatorPanel().annotate(c)) for c in communities
        ]
        assert 0.35 < float(np.mean(kappas)) < 0.7

    def test_random_panel_iaa_near_zero(self, communities):
        kappas = [
            mean_pairwise_kappa(random_panel(c.graph.num_nodes, seed=i))
            for i, c in enumerate(communities)
        ]
        assert abs(float(np.mean(kappas))) < 0.12

    def test_node_importance_is_mean(self, communities):
        panel = AnnotatorPanel(seed=1)
        scores = panel.node_importance(communities[0])
        raw = panel.annotate(communities[0])
        np.testing.assert_allclose(scores, raw.mean(axis=0))

    def test_deterministic_per_community(self, communities):
        a = AnnotatorPanel(seed=2).annotate(communities[0])
        b = AnnotatorPanel(seed=2).annotate(communities[0])
        np.testing.assert_array_equal(a, b)


class TestCohenKappa:
    def test_perfect_agreement(self):
        a = np.array([0, 1, 2, 1, 0])
        assert cohen_kappa(a, a) == pytest.approx(1.0)

    def test_random_agreement_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, 10_000)
        b = rng.integers(0, 3, 10_000)
        assert abs(cohen_kappa(a, b)) < 0.05

    def test_systematic_disagreement_negative(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert cohen_kappa(a, b) < 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cohen_kappa([0, 1], [0])


class TestEdgeAggregation:
    def test_three_strategies(self, communities):
        community = communities[0]
        scores = np.arange(community.graph.num_nodes, dtype=float)
        for aggregation in AGGREGATIONS:
            weights = edge_importance_from_nodes(community, scores, aggregation)
            assert set(weights) == set(community.undirected_edges())

    def test_avg_between_min_and_sum(self, communities):
        community = communities[0]
        scores = np.random.default_rng(0).random(community.graph.num_nodes)
        avg = edge_importance_from_nodes(community, scores, "avg")
        low = edge_importance_from_nodes(community, scores, "min")
        total = edge_importance_from_nodes(community, scores, "sum")
        for edge in avg:
            assert low[edge] <= avg[edge] <= total[edge]

    def test_sum_is_twice_avg(self, communities):
        community = communities[0]
        scores = np.random.default_rng(1).random(community.graph.num_nodes)
        avg = edge_importance_from_nodes(community, scores, "avg")
        total = edge_importance_from_nodes(community, scores, "sum")
        for edge in avg:
            assert total[edge] == pytest.approx(2 * avg[edge])

    def test_unknown_aggregation(self, communities):
        with pytest.raises(KeyError):
            edge_importance_from_nodes(communities[0], np.zeros(1), "median")

    def test_human_edge_importance_range(self, communities):
        weights = human_edge_importance(communities[0], AnnotatorPanel())
        values = np.array(list(weights.values()))
        # avg aggregation of scores in [0, 2] stays in [0, 2].
        assert np.all((values >= 0) & (values <= 2))
