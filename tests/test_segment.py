"""Segment (message-passing) kernels: values and gradients."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    gather,
    scatter_rows,
    segment_count,
    segment_max_data,
    segment_mean,
    segment_softmax,
    segment_sum,
)


class TestGather:
    def test_values(self):
        source = Tensor(np.array([[1.0, 2], [3, 4], [5, 6]]))
        out = gather(source, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[5, 6], [1, 2]])

    def test_grad_scatter_add(self):
        source = Tensor(np.zeros((3, 2)), requires_grad=True)
        gather(source, np.array([1, 1, 0])).sum().backward()
        np.testing.assert_allclose(source.grad, [[1, 1], [2, 2], [0, 0]])


class TestSegmentSum:
    def test_values_unsorted_ids(self):
        values = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = segment_sum(values, np.array([1, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[2], [4], [0]])

    def test_empty_segment_is_zero(self):
        values = Tensor(np.ones((2, 2)))
        out = segment_sum(values, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data[1:], 0)

    def test_grad(self):
        values = Tensor(np.ones((3, 2)), requires_grad=True)
        out = segment_sum(values, np.array([0, 1, 0]), 2)
        (out * Tensor(np.array([[1.0, 1], [5, 5]]))).sum().backward()
        np.testing.assert_allclose(values.grad, [[1, 1], [5, 5], [1, 1]])


class TestSegmentMeanCount:
    def test_count(self):
        np.testing.assert_allclose(segment_count(np.array([0, 0, 2]), 4), [2, 0, 1, 0])

    def test_mean(self):
        values = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = segment_mean(values, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3], [6]])

    def test_mean_empty_segment_zero(self):
        values = Tensor(np.array([[2.0]]))
        out = segment_mean(values, np.array([0]), 2)
        np.testing.assert_allclose(out.data, [[2], [0]])


class TestSegmentSoftmax:
    def test_normalises_per_segment(self):
        logits = Tensor(np.array([1.0, 2.0, 3.0, 4.0]))
        ids = np.array([0, 0, 1, 1])
        out = segment_softmax(logits, ids, 2)
        np.testing.assert_allclose(out.data[:2].sum(), 1.0, atol=1e-9)
        np.testing.assert_allclose(out.data[2:].sum(), 1.0, atol=1e-9)

    def test_matches_dense_softmax(self):
        logits = Tensor(np.array([1.0, 2.0, 3.0]))
        out = segment_softmax(logits, np.array([0, 0, 0]), 1)
        dense = np.exp([1.0, 2, 3]) / np.exp([1.0, 2, 3]).sum()
        np.testing.assert_allclose(out.data, dense, atol=1e-9)

    def test_numerically_stable_large_logits(self):
        logits = Tensor(np.array([1000.0, 1000.0]))
        out = segment_softmax(logits, np.array([0, 0]), 1)
        np.testing.assert_allclose(out.data, [0.5, 0.5], atol=1e-9)

    def test_two_dim_logits(self):
        logits = Tensor(np.zeros((4, 3)))
        out = segment_softmax(logits, np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, 0.5)

    def test_grad_matches_numeric(self):
        raw = np.array([0.5, -1.0, 2.0, 0.3])
        ids = np.array([0, 1, 0, 1])

        def value(arr):
            t = Tensor(arr)
            out = segment_softmax(t, ids, 2)
            return float((out * Tensor(np.array([1.0, 2, 3, 4]))).sum().data)

        t = Tensor(raw.copy(), requires_grad=True)
        out = segment_softmax(t, ids, 2)
        (out * Tensor(np.array([1.0, 2, 3, 4]))).sum().backward()

        eps = 1e-6
        numeric = np.zeros_like(raw)
        for i in range(len(raw)):
            up, down = raw.copy(), raw.copy()
            up[i] += eps
            down[i] -= eps
            numeric[i] = (value(up) - value(down)) / (2 * eps)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)


class TestSegmentMax:
    def test_values(self):
        values = np.array([1.0, 5.0, 3.0])
        out = segment_max_data(values, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out, [5, 3])

    def test_empty_segment_replaced(self):
        out = segment_max_data(np.array([1.0]), np.array([0]), 2)
        assert np.isfinite(out).all()


class TestScatterRows:
    def test_places_rows(self):
        values = Tensor(np.array([[1.0, 2], [3, 4]]))
        out = scatter_rows(values, np.array([2, 0]), 3)
        np.testing.assert_allclose(out.data, [[3, 4], [0, 0], [1, 2]])

    def test_duplicates_accumulate(self):
        values = Tensor(np.ones((2, 1)))
        out = scatter_rows(values, np.array([0, 0]), 2)
        np.testing.assert_allclose(out.data, [[2], [0]])

    def test_base_array(self):
        values = Tensor(np.ones((1, 1)))
        base = np.full((2, 1), 7.0)
        out = scatter_rows(values, np.array([1]), 2, base=base)
        np.testing.assert_allclose(out.data, [[7], [8]])
        # base must not be mutated
        np.testing.assert_allclose(base, 7.0)

    def test_grad(self):
        values = Tensor(np.ones((2, 2)), requires_grad=True)
        out = scatter_rows(values, np.array([1, 0]), 3)
        (out * Tensor(np.array([[1.0, 1], [2, 2], [3, 3]]))).sum().backward()
        np.testing.assert_allclose(values.grad, [[2, 2], [1, 1]])
