"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_prints_summary(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "ebay-small-sim" in out
        assert "fraud rate" in out

    def test_dataset_choice_validated(self):
        with pytest.raises(SystemExit):
            main(["datasets", "--dataset", "nope"])


class TestTrainEvaluate:
    def test_train_save_evaluate(self, tmp_path, capsys):
        save_path = str(tmp_path / "model.npz")
        code = main(
            [
                "train",
                "--dataset",
                "ebay-small-sim",
                "--scale",
                "0.1",
                "--model",
                "gem",
                "--epochs",
                "2",
                "--save",
                save_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "auc=" in out and "saved model state" in out

        code = main(
            [
                "evaluate",
                "--dataset",
                "ebay-small-sim",
                "--scale",
                "0.1",
                "--model",
                "gem",
                "--load",
                save_path,
            ]
        )
        assert code == 0
        assert "auc=" in capsys.readouterr().out

    def test_evaluate_reproduces_training_metrics(self, tmp_path, capsys):
        save_path = str(tmp_path / "model.npz")
        main(
            ["train", "--scale", "0.1", "--model", "gem", "--epochs", "2", "--save", save_path]
        )
        train_out = capsys.readouterr().out
        main(["evaluate", "--scale", "0.1", "--model", "gem", "--load", save_path])
        eval_out = capsys.readouterr().out
        train_auc = train_out.split("auc=")[1].split()[0]
        eval_auc = eval_out.split("auc=")[1].split()[0]
        assert train_auc == eval_auc


class TestExplainCommand:
    def test_explain_trains_and_renders(self, capsys):
        code = main(
            [
                "explain",
                "--scale",
                "0.1",
                "--model",
                "detector+",
                "--epochs",
                "2",
                "--explainer-epochs",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "risk score" in out
        assert "community(" in out

    def test_explain_rejects_entity_node(self, capsys):
        # Node 10^9 is out of range -> error exit code 2.
        code = main(
            [
                "explain",
                "--scale",
                "0.1",
                "--epochs",
                "1",
                "--explainer-epochs",
                "2",
                "--node",
                "999999999",
            ]
        )
        assert code == 2

    def test_explain_dot_flag(self, capsys):
        code = main(
            [
                "explain",
                "--scale",
                "0.1",
                "--epochs",
                "1",
                "--explainer-epochs",
                "3",
                "--dot",
            ]
        )
        assert code == 0
        assert "graph community {" in capsys.readouterr().out


class TestPipelineCommand:
    def test_pipeline_stages_printed(self, capsys):
        assert main(["pipeline", "--buyers", "150"]) == 0
        out = capsys.readouterr().out
        assert "original stream" in out
        assert "after label sampling" in out


class TestLoadErrorHandling:
    def test_evaluate_missing_load_exits_2(self, capsys):
        code = main(["evaluate", "--scale", "0.1", "--load", "/nonexistent/model.npz"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_evaluate_non_archive_load_exits_2(self, tmp_path, capsys):
        junk = tmp_path / "junk.npz"
        junk.write_text("definitely not an npz archive")
        code = main(["evaluate", "--scale", "0.1", "--load", str(junk)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_explain_missing_load_exits_2(self, capsys):
        code = main(["explain", "--scale", "0.1", "--load", "/nonexistent/model.npz"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCheckpointFlags:
    def test_train_writes_checkpoints_and_resumes(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "ckpts")
        code = main(
            ["train", "--scale", "0.1", "--model", "gem", "--epochs", "2",
             "--checkpoint-dir", ckpt_dir]
        )
        assert code == 0
        capsys.readouterr()
        import os

        files = sorted(os.listdir(ckpt_dir))
        assert "MANIFEST.json" in files
        assert any(name.startswith("ckpt-") for name in files)

        code = main(
            ["train", "--scale", "0.1", "--model", "gem", "--epochs", "4",
             "--checkpoint-dir", ckpt_dir, "--resume"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "trained gem for 4 epochs" in out

    def test_resume_without_dir_exits_2(self, capsys):
        code = main(["train", "--scale", "0.1", "--epochs", "1", "--resume"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_empty_dir_exits_2(self, tmp_path, capsys):
        code = main(
            ["train", "--scale", "0.1", "--epochs", "1",
             "--checkpoint-dir", str(tmp_path / "fresh"), "--resume"]
        )
        assert code == 2
        assert "no checkpoints" in capsys.readouterr().err


class TestExplainWithLoad:
    def test_explain_loads_saved_model(self, tmp_path, capsys):
        save_path = str(tmp_path / "m.npz")
        main(["train", "--scale", "0.1", "--model", "detector+", "--epochs", "2",
              "--save", save_path])
        capsys.readouterr()
        code = main(["explain", "--scale", "0.1", "--model", "detector+",
                     "--load", save_path, "--explainer-epochs", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "risk score" in out
        assert "training a detector first" not in out


class TestScoreCommand:
    def test_score_default_nodes(self, capsys):
        code = main(["score", "--scale", "0.1", "--epochs", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("verdict=") == 5
        assert "rung=gnn" in out
        assert "requests      : 5 received, 5 admitted" in out

    def test_score_explicit_node_and_deadline(self, capsys):
        from repro.data import load_dataset

        bundle = load_dataset("ebay-small-sim", seed=0, scale=0.1)
        node = str(int(bundle.test_nodes[0]))
        code = main(
            ["score", "--scale", "0.1", "--epochs", "0", "--node", node,
             "--deadline-ms", "250"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"node {int(node):6d}:" in out

    def test_score_rejects_entity_node(self, capsys):
        # Node 0 on the simulator graph is a labeled txn only if labels[0]>=0;
        # pick a guaranteed-unlabeled entity node instead.
        from repro.data import load_dataset
        import numpy as np

        bundle = load_dataset("ebay-small-sim", seed=0, scale=0.1)
        entity = str(int(np.flatnonzero(bundle.graph.labels < 0)[0]))
        code = main(["score", "--scale", "0.1", "--epochs", "0", "--node", entity])
        assert code == 2
        assert "not a labeled transaction" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_requires_demo_flag(self, capsys):
        assert main(["serve"]) == 2
        assert "--demo" in capsys.readouterr().err

    def test_serve_demo_replays_incident(self, capsys):
        code = main(
            ["serve", "--demo", "--scale", "0.1", "--epochs", "1",
             "--requests", "30", "--burst", "14"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "breaker journey" in out
        assert "closed -> open" in out
        assert "rungs:" in out
        assert "shed with verdict" in out

    def test_serve_demo_replicated_absorbs_failover(self, capsys):
        code = main(
            ["serve", "--demo", "--replicas", "3", "--scale", "0.1",
             "--epochs", "1", "--requests", "30", "--burst", "14", "--health"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3-replica feature tier" in out
        assert "kv_failures=0" in out
        assert "breaker[r1]" in out  # the killed replica's own journey
        assert "anti-entropy:" in out
        assert "replicated store: 3 replicas" in out  # --health table
        assert "replica failover absorbed" in out

    def test_serve_rejects_bad_replicas(self, capsys):
        assert main(["serve", "--demo", "--replicas", "0"]) == 2
        assert "--replicas" in capsys.readouterr().err


class TestHealthcheckCommand:
    def test_healthcheck_recovers_from_kill(self, capsys):
        code = main(
            ["healthcheck", "--replicas", "3", "--keys", "40",
             "--kill-replica", "1", "--metrics"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replicated store: 3 replicas" in out
        assert "kv_replica_state" in out  # Prometheus exposition
        assert "kv_replica_info" in out
        assert "anti-entropy:" in out
        assert "all replicas serving" in out
        # The killed replica's journey is visible in the health table.
        assert "probing" in out

    def test_healthcheck_clean_run(self, capsys):
        code = main(["healthcheck", "--replicas", "2", "--keys", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all replicas serving" in out

    def test_healthcheck_rejects_bad_args(self, capsys):
        assert main(["healthcheck", "--replicas", "2", "--kill-replica", "5"]) == 2
        assert "out of range" in capsys.readouterr().err
