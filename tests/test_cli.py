"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_prints_summary(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "ebay-small-sim" in out
        assert "fraud rate" in out

    def test_dataset_choice_validated(self):
        with pytest.raises(SystemExit):
            main(["datasets", "--dataset", "nope"])


class TestTrainEvaluate:
    def test_train_save_evaluate(self, tmp_path, capsys):
        save_path = str(tmp_path / "model.npz")
        code = main(
            [
                "train",
                "--dataset",
                "ebay-small-sim",
                "--scale",
                "0.1",
                "--model",
                "gem",
                "--epochs",
                "2",
                "--save",
                save_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "auc=" in out and "saved model state" in out

        code = main(
            [
                "evaluate",
                "--dataset",
                "ebay-small-sim",
                "--scale",
                "0.1",
                "--model",
                "gem",
                "--load",
                save_path,
            ]
        )
        assert code == 0
        assert "auc=" in capsys.readouterr().out

    def test_evaluate_reproduces_training_metrics(self, tmp_path, capsys):
        save_path = str(tmp_path / "model.npz")
        main(
            ["train", "--scale", "0.1", "--model", "gem", "--epochs", "2", "--save", save_path]
        )
        train_out = capsys.readouterr().out
        main(["evaluate", "--scale", "0.1", "--model", "gem", "--load", save_path])
        eval_out = capsys.readouterr().out
        train_auc = train_out.split("auc=")[1].split()[0]
        eval_auc = eval_out.split("auc=")[1].split()[0]
        assert train_auc == eval_auc


class TestExplainCommand:
    def test_explain_trains_and_renders(self, capsys):
        code = main(
            [
                "explain",
                "--scale",
                "0.1",
                "--model",
                "detector+",
                "--epochs",
                "2",
                "--explainer-epochs",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "risk score" in out
        assert "community(" in out

    def test_explain_rejects_entity_node(self, capsys):
        # Node 10^9 is out of range -> error exit code 2.
        code = main(
            [
                "explain",
                "--scale",
                "0.1",
                "--epochs",
                "1",
                "--explainer-epochs",
                "2",
                "--node",
                "999999999",
            ]
        )
        assert code == 2

    def test_explain_dot_flag(self, capsys):
        code = main(
            [
                "explain",
                "--scale",
                "0.1",
                "--epochs",
                "1",
                "--explainer-epochs",
                "3",
                "--dot",
            ]
        )
        assert code == 0
        assert "graph community {" in capsys.readouterr().out


class TestPipelineCommand:
    def test_pipeline_stages_printed(self, capsys):
        assert main(["pipeline", "--buyers", "150"]) == 0
        out = capsys.readouterr().out
        assert "original stream" in out
        assert "after label sampling" in out


class TestLoadErrorHandling:
    def test_evaluate_missing_load_exits_2(self, capsys):
        code = main(["evaluate", "--scale", "0.1", "--load", "/nonexistent/model.npz"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_evaluate_non_archive_load_exits_2(self, tmp_path, capsys):
        junk = tmp_path / "junk.npz"
        junk.write_text("definitely not an npz archive")
        code = main(["evaluate", "--scale", "0.1", "--load", str(junk)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_explain_missing_load_exits_2(self, capsys):
        code = main(["explain", "--scale", "0.1", "--load", "/nonexistent/model.npz"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCheckpointFlags:
    def test_train_writes_checkpoints_and_resumes(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "ckpts")
        code = main(
            ["train", "--scale", "0.1", "--model", "gem", "--epochs", "2",
             "--checkpoint-dir", ckpt_dir]
        )
        assert code == 0
        capsys.readouterr()
        import os

        files = sorted(os.listdir(ckpt_dir))
        assert "MANIFEST.json" in files
        assert any(name.startswith("ckpt-") for name in files)

        code = main(
            ["train", "--scale", "0.1", "--model", "gem", "--epochs", "4",
             "--checkpoint-dir", ckpt_dir, "--resume"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "trained gem for 4 epochs" in out

    def test_resume_without_dir_exits_2(self, capsys):
        code = main(["train", "--scale", "0.1", "--epochs", "1", "--resume"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_empty_dir_exits_2(self, tmp_path, capsys):
        code = main(
            ["train", "--scale", "0.1", "--epochs", "1",
             "--checkpoint-dir", str(tmp_path / "fresh"), "--resume"]
        )
        assert code == 2
        assert "no checkpoints" in capsys.readouterr().err


class TestExplainWithLoad:
    def test_explain_loads_saved_model(self, tmp_path, capsys):
        save_path = str(tmp_path / "m.npz")
        main(["train", "--scale", "0.1", "--model", "detector+", "--epochs", "2",
              "--save", save_path])
        capsys.readouterr()
        code = main(["explain", "--scale", "0.1", "--model", "detector+",
                     "--load", save_path, "--explainer-epochs", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "risk score" in out
        assert "training a detector first" not in out
