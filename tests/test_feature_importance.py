"""Feature-importance reporting from explainer masks."""

import numpy as np
import pytest

from repro.explain import (
    ExplainerConfig,
    FeatureReport,
    GNNExplainer,
    feature_report,
    render_feature_report,
)
from repro.graph import select_communities


@pytest.fixture(scope="module")
def explained(trained_detector, tiny_graph, tiny_splits):
    _, test = tiny_splits
    community = select_communities(tiny_graph, test, count=1, seed=3, max_hops=3)[0]
    explainer = GNNExplainer(trained_detector, ExplainerConfig(epochs=15, seed=0))
    explanation = explainer.explain(community.graph, community.seed_local)
    return community, explanation


class TestFeatureReport:
    def test_shapes(self, explained):
        community, explanation = explained
        report = feature_report(explanation, community)
        n, f = community.graph.num_nodes, community.graph.feature_dim
        assert report.node_importance.shape == (n, f)
        assert report.mean_importance.shape == (f,)
        assert report.seed_importance.shape == (f,)

    def test_top_dimensions_sorted(self, explained):
        community, explanation = explained
        report = feature_report(explanation, community)
        top = report.top_dimensions(k=4)
        weights = report.seed_importance[top]
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_top_dimensions_for_other_node(self, explained):
        community, explanation = explained
        report = feature_report(explanation, community)
        top = report.top_dimensions(k=3, node=0)
        assert len(top) == 3

    def test_block_importance_covers_all_dims(self, explained):
        community, explanation = explained
        report = feature_report(explanation, community)
        blocks = report.block_importance()
        assert "risk" in blocks and "item_category" in blocks
        # feature_dim 24 is fully covered by the two named blocks.
        assert "other" not in blocks
        assert all(0 <= v <= 1 for v in blocks.values())

    def test_other_block_when_uncovered(self, explained):
        community, explanation = explained
        report = feature_report(explanation, community)
        blocks = report.block_importance(blocks=(("risk", 0, 8),))
        assert "other" in blocks

    def test_mismatched_community_rejected(self, explained, tiny_graph, tiny_splits):
        community, explanation = explained
        _, test = tiny_splits
        other = select_communities(tiny_graph, test, count=2, seed=9, max_hops=2)[-1]
        if other.graph.num_nodes == community.graph.num_nodes:
            pytest.skip("communities coincide in size")
        with pytest.raises(ValueError):
            feature_report(explanation, other)

    def test_render(self, explained):
        community, explanation = explained
        report = feature_report(explanation, community)
        text = render_feature_report(report)
        assert "feature importance" in text
        assert "block importance" in text
