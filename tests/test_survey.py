"""Heterogeneous dataset survey (Appendix A / Table 5 / Figure 1)."""

import numpy as np

from repro.data import HETERO_DATASET_SURVEY, survey_table
from repro.data.survey import SurveyEntry, landscape_points


class TestSurveyData:
    def test_entries_span_years(self):
        years = {entry.year for entry in HETERO_DATASET_SURVEY}
        assert years == {2015, 2017, 2018, 2019, 2020, 2021}

    def test_xfraud_datasets_included(self):
        xfraud = [e for e in HETERO_DATASET_SURVEY if e.paper == "xFraud"]
        assert {e.dataset for e in xfraud} == {
            "eBay-small",
            "eBay-large",
            "eBay-xlarge",
        }

    def test_ebay_xlarge_is_largest_node_count(self):
        largest = max(HETERO_DATASET_SURVEY, key=lambda e: e.num_nodes)
        assert largest.dataset == "eBay-xlarge"

    def test_edges_per_node_computed(self):
        entry = next(e for e in HETERO_DATASET_SURVEY if e.dataset == "eBay-small")
        assert entry.edges_per_node == 612_904 / 288_853

    def test_table_sorted(self):
        rows = survey_table()
        years = [row["year"] for row in rows]
        assert years == sorted(years)

    def test_table_extra_entries(self):
        extra = [SurveyEntry(2024, "repro", "sim", 1000, 2000)]
        rows = survey_table(extra)
        assert any(row["paper"] == "repro" for row in rows)

    def test_landscape_points_log_scale(self):
        points = landscape_points()
        assert points.shape[1] == 2
        assert np.all(np.isfinite(points))
        # eBay-xlarge: log10(1.1e9) ≈ 9.04 must be the max x.
        assert points[:, 0].max() > 9.0
