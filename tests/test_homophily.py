"""Homophily tests (paper footnote 1)."""

import numpy as np
import pytest

from repro.graph import (
    homophily_report,
    homophily_score,
    render_homophily_report,
)


class TestHomophilyScore:
    def test_scores_for_all_entity_types(self, tiny_graph):
        report = homophily_report(tiny_graph)
        assert set(report) == {"pmt", "email", "addr", "buyer"}
        for score in report.values():
            assert 0.0 <= score.same_label_rate <= 1.0
            assert 0.0 <= score.baseline_rate <= 1.0

    def test_pmt_is_homophilic_in_synthetic_data(self, tiny_graph):
        """Stolen-card bursts make payment tokens fraud-homophilic:
        same-label rate through pmt must beat the random baseline."""
        score = homophily_score(tiny_graph, "pmt")
        assert score.num_pairs > 0
        assert score.lift >= 1.0

    def test_fraud_adjacency_bounded(self, tiny_graph):
        for entity_type in ("pmt", "addr"):
            score = homophily_score(tiny_graph, entity_type)
            assert 0.0 <= score.fraud_adjacency <= 1.0

    def test_txn_rejected(self, tiny_graph):
        with pytest.raises(KeyError):
            homophily_score(tiny_graph, "txn")

    def test_unknown_type_rejected(self, tiny_graph):
        with pytest.raises(KeyError):
            homophily_score(tiny_graph, "device")

    def test_pair_sampling_cap(self, tiny_graph):
        capped = homophily_score(tiny_graph, "addr", max_pairs_per_entity=1)
        uncapped = homophily_score(tiny_graph, "addr", max_pairs_per_entity=10_000)
        assert capped.num_pairs <= uncapped.num_pairs

    def test_deterministic(self, tiny_graph):
        a = homophily_score(tiny_graph, "buyer", seed=3)
        b = homophily_score(tiny_graph, "buyer", seed=3)
        assert a.same_label_rate == b.same_label_rate

    def test_render(self, tiny_graph):
        text = render_homophily_report(homophily_report(tiny_graph))
        assert "entity" in text and "lift" in text
        assert "pmt" in text
