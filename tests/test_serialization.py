"""Model persistence (.npz state archives)."""

import numpy as np
import pytest

from repro import nn
from repro.models import XFraudDetectorPlus
from repro.nn.serialization import load_state, read_manifest, save_state


class TestSaveLoad:
    def test_roundtrip_linear(self, tmp_path):
        model = nn.Linear(4, 3, rng=np.random.default_rng(0))
        path = save_state(model, str(tmp_path / "linear"))
        other = nn.Linear(4, 3, rng=np.random.default_rng(1))
        load_state(other, path)
        np.testing.assert_allclose(model.weight.data, other.weight.data)
        np.testing.assert_allclose(model.bias.data, other.bias.data)

    def test_roundtrip_detector(self, tmp_path, detector_config, trained_detector, tiny_graph, tiny_splits):
        _, test = tiny_splits
        path = save_state(trained_detector, str(tmp_path / "detector.npz"))
        clone = XFraudDetectorPlus(detector_config)
        load_state(clone, path)
        np.testing.assert_allclose(
            trained_detector.predict_proba(tiny_graph, test[:10]),
            clone.predict_proba(tiny_graph, test[:10]),
        )

    def test_npz_suffix_appended(self, tmp_path):
        model = nn.Linear(2, 2)
        path = save_state(model, str(tmp_path / "model"))
        assert path.endswith(".npz")

    def test_manifest(self, tmp_path):
        model = nn.Linear(2, 2)
        path = save_state(model, str(tmp_path / "m"))
        manifest = read_manifest(path)
        assert manifest["format"] == "repro-state-v1"
        assert manifest["num_parameters"] == model.num_parameters()
        assert "weight" in manifest["keys"]

    def test_architecture_mismatch_rejected(self, tmp_path):
        path = save_state(nn.Linear(2, 2), str(tmp_path / "m"))
        with pytest.raises(ValueError):
            load_state(nn.Linear(2, 3), path)

    def test_wrong_archive_rejected(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_state(nn.Linear(2, 2), path)
        with pytest.raises(ValueError):
            read_manifest(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(nn.Linear(2, 2), str(tmp_path / "absent"))

    def test_manifest_records_checksums(self, tmp_path):
        model = nn.Linear(2, 2)
        manifest = read_manifest(save_state(model, str(tmp_path / "m")))
        assert set(manifest["crc32"]) == set(manifest["keys"])

    def test_corrupted_array_detected(self, tmp_path):
        """Tampering with a stored array fails the manifest checksum."""
        model = nn.Linear(3, 3, rng=np.random.default_rng(0))
        path = save_state(model, str(tmp_path / "m"))
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["weight"] = payload["weight"] + 1.0  # silent corruption
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="checksum"):
            load_state(nn.Linear(3, 3), path)
