"""Stateless NN functions: activations, norms, losses."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestActivations:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        out = F.softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0, atol=1e-9)

    def test_softmax_stable(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = F.softmax(x)
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-9
        )

    def test_leaky_relu(self):
        x = Tensor(np.array([-2.0, 3.0]))
        out = F.leaky_relu(x, negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_grad(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        F.leaky_relu(x, 0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones(100))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, 1.0)

    def test_zero_rate_identity(self):
        x = Tensor(np.ones(10))
        assert F.dropout(x, 0.0, training=True) is x

    def test_training_scales_survivors(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10000))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        survivors = out.data[out.data > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.4 < (out.data > 0).mean() < 0.6

    def test_expected_value_preserved(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones(20000))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.05


class TestLayerNorm:
    def test_normalises_last_dim(self):
        x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(5, 8)))
        out = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8)))
        np.testing.assert_allclose(out.data.mean(axis=1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=1), 1.0, atol=1e-3)

    def test_affine_params_apply(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        out = F.layer_norm(x, Tensor(np.full(4, 2.0)), Tensor(np.full(4, 1.0)))
        base = F.layer_norm(x, Tensor(np.ones(4)), Tensor(np.zeros(4)))
        np.testing.assert_allclose(out.data, base.data * 2 + 1, atol=1e-9)

    def test_grad_flows(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        w = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        F.layer_norm(x, w, b).sum().backward()
        assert x.grad is not None and w.grad is not None and b.grad is not None


class TestLosses:
    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 2)))
        loss = F.cross_entropy(logits, np.array([0, 1, 0, 1]))
        np.testing.assert_allclose(loss.item(), np.log(2), atol=1e-9)

    def test_cross_entropy_grad_direction(self):
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        # Pushing up the true class logit lowers the loss.
        assert logits.grad[0, 1] < 0 < logits.grad[0, 0]

    def test_bce_with_logits_matches_formula(self):
        logits = Tensor(np.array([0.5, -1.0]))
        targets = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-np.array([0.5, -1.0])))
        expected = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        np.testing.assert_allclose(loss.item(), expected, atol=1e-9)

    def test_bce_stable_extreme_logits(self):
        logits = Tensor(np.array([500.0, -500.0]))
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item()) and loss.item() < 1e-6

    def test_bernoulli_entropy_peak_at_half(self):
        probs = Tensor(np.array([0.01, 0.5, 0.99]))
        entropy = F.bernoulli_entropy(probs).data
        assert entropy[1] > entropy[0] and entropy[1] > entropy[2]
        np.testing.assert_allclose(entropy[1], np.log(2), atol=1e-6)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        np.testing.assert_allclose(F.mse(pred, np.array([0.0, 0.0])).item(), 2.5)


class TestELU:
    def test_positive_identity(self):
        x = Tensor(np.array([0.5, 2.0]))
        np.testing.assert_allclose(F.elu(x).data, [0.5, 2.0])

    def test_negative_saturates(self):
        x = Tensor(np.array([-1.0, -10.0]))
        out = F.elu(x).data
        np.testing.assert_allclose(out[0], np.exp(-1) - 1, atol=1e-9)
        assert out[1] > -1.0 - 1e-9

    def test_grad_continuous_at_zero(self):
        for v in (1e-4, -1e-4):
            x = Tensor(np.array([v]), requires_grad=True)
            F.elu(x).sum().backward()
            np.testing.assert_allclose(x.grad, [1.0], atol=1e-3)

    def test_alpha_scales_negative_part(self):
        x = Tensor(np.array([-100.0]))
        np.testing.assert_allclose(F.elu(x, alpha=2.0).data, [-2.0], atol=1e-6)
