"""Autograd engine: op-level gradients checked against finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, no_grad, stack, where


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn of one array."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_unary(op, x: np.ndarray, atol: float = 1e-6):
    tensor = Tensor(x.copy(), requires_grad=True)
    out = op(tensor).sum()
    out.backward()
    expected = numerical_grad(lambda arr: float(op(Tensor(arr)).sum().data), x.copy())
    np.testing.assert_allclose(tensor.grad, expected, atol=atol)


class TestElementwise:
    def test_add_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_add_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a + 5).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])

    def test_radd(self):
        a = Tensor([1.0], requires_grad=True)
        (5 + a).sum().backward()
        np.testing.assert_allclose(a.grad, [1])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4, 5])
        np.testing.assert_allclose(b.grad, [2, 3])

    def test_sub_grad(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1])
        np.testing.assert_allclose(b.grad, [-1])

    def test_rsub(self):
        a = Tensor([2.0], requires_grad=True)
        (10 - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1])

    def test_div_grad(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (4 / a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_neg(self):
        a = Tensor([3.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1])

    def test_pow_grad(self):
        check_unary(lambda t: t**3, np.array([1.5, -0.5, 2.0]))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_exp_grad(self):
        check_unary(lambda t: t.exp(), np.array([0.1, -1.0, 0.5]))

    def test_log_grad(self):
        check_unary(lambda t: t.log(), np.array([0.5, 1.5, 3.0]))

    def test_tanh_grad(self):
        check_unary(lambda t: t.tanh(), np.array([-1.0, 0.0, 2.0]))

    def test_relu_grad(self):
        a = Tensor([-1.0, 2.0, 3.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 1])

    def test_sigmoid_grad(self):
        check_unary(lambda t: t.sigmoid(), np.array([-2.0, 0.0, 1.0]))

    def test_sqrt(self):
        a = Tensor([4.0], requires_grad=True)
        a.sqrt().backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [0.25])


class TestBroadcasting:
    def test_broadcast_add_bias(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3, 3, 3, 3])
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_broadcast_mul_column(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        c = Tensor(np.array([[2.0], [3.0]]), requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_allclose(c.grad, [[3], [3]])

    def test_broadcast_scalar_tensor(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, 4.0)


class TestMatmulAndShape:
    def test_matmul_grad(self):
        a = np.random.default_rng(0).normal(size=(3, 4))
        b = np.random.default_rng(1).normal(size=(4, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 2)) @ b.T)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 2)))

    def test_matvec_grad(self):
        a = Tensor(np.eye(2), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(v.grad, [1.0, 1.0])

    def test_transpose_roundtrip(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.T.T.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_reshape_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape((3, 2)).shape == (3, 2)

    def test_getitem_grad_accumulates_duplicates(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        index = np.array([0, 0, 2])
        x[index].sum().backward()
        np.testing.assert_allclose(x.grad, [2, 0, 1])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        x = Tensor(np.ones((4,)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 0.25))

    def test_max_grad_splits_ties(self):
        x = Tensor(np.array([1.0, 3.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0, 0.5, 0.5])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1], [1, 0]])


class TestGraphMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach()
        assert not y.requires_grad

    def test_no_grad_disables_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a * b).sum().backward()
        # d/dx (2x * 3x) = 12x = 12
        np.testing.assert_allclose(x.grad, [12.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestCombinators:
    def test_concat_grad_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_stack_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_where_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = where(np.array([True, False]), a, b)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0])
        np.testing.assert_allclose(b.grad, [0, 1])
