"""Detector, detector+, GAT, GEM: shapes, gradients, masks, sharing."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    DetectorConfig,
    GATModel,
    GEMModel,
    XFraudDetector,
    XFraudDetectorHGT,
    XFraudDetectorPlus,
)
from repro.nn import Tensor

ALL_MODELS = [XFraudDetectorPlus, GATModel, GEMModel]


class TestForwardShapes:
    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_logits_shape(self, cls, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = cls(detector_config)
        logits = model(tiny_graph, train[:7])
        assert logits.shape == (7, 2)

    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_predict_proba_range(self, cls, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = cls(detector_config)
        scores = model.predict_proba(tiny_graph, train[:10])
        assert scores.shape == (10,)
        assert np.all((scores >= 0) & (scores <= 1))

    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_predict_proba_restores_training_mode(self, cls, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = cls(detector_config)
        model.train()
        model.predict_proba(tiny_graph, train[:2])
        assert model.training

    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_loss_backward_reaches_all_layers(self, cls, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = cls(detector_config)
        loss = model.loss(tiny_graph, train[:32])
        loss.backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None)
        assert with_grad / len(model.parameters()) > 0.9

    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_loss_rejects_unlabeled(self, cls, tiny_graph, detector_config):
        entity = int(np.flatnonzero(tiny_graph.labels < 0)[0])
        model = cls(detector_config)
        with pytest.raises(ValueError):
            model.loss(tiny_graph, [entity])


class TestDetectorSpecifics:
    def test_eval_forward_deterministic(self, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = XFraudDetectorPlus(detector_config)
        a = model.predict_proba(tiny_graph, train[:5])
        b = model.predict_proba(tiny_graph, train[:5])
        np.testing.assert_allclose(a, b)

    def test_same_seed_same_weights(self, detector_config):
        a = XFraudDetectorPlus(detector_config)
        b = XFraudDetectorPlus(detector_config)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_hidden_dim_head_divisibility(self, tiny_graph):
        with pytest.raises(ValueError):
            XFraudDetector(
                DetectorConfig(feature_dim=tiny_graph.feature_dim, hidden_dim=30, num_heads=4)
            )

    def test_node_representations_shape(self, tiny_graph, detector_config):
        model = XFraudDetector(detector_config)
        reps = model.node_representations(tiny_graph)
        assert reps.shape == (tiny_graph.num_nodes, detector_config.hidden_dim)

    def test_edge_mask_zero_blocks_messages(self, tiny_graph, tiny_splits, detector_config):
        """A fully-zero edge mask must reduce the detector to a
        feature-only model: graph structure contributes nothing."""
        train, _ = tiny_splits
        model = XFraudDetector(detector_config)
        model.eval()
        with nn.no_grad():
            masked = model(tiny_graph, train[:4], edge_mask=Tensor(np.zeros(tiny_graph.num_edges)))
            unmasked = model(tiny_graph, train[:4])
        assert not np.allclose(masked.data, unmasked.data)

    def test_edge_mask_all_ones_matches_unmasked(self, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = XFraudDetector(detector_config)
        model.eval()
        with nn.no_grad():
            masked = model(tiny_graph, train[:4], edge_mask=Tensor(np.ones(tiny_graph.num_edges)))
            unmasked = model(tiny_graph, train[:4])
        np.testing.assert_allclose(masked.data, unmasked.data, atol=1e-9)

    def test_feature_mask_scales_inputs(self, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        model = XFraudDetector(detector_config)
        model.eval()
        ones = Tensor(np.ones_like(tiny_graph.txn_features))
        with nn.no_grad():
            masked = model(tiny_graph, train[:4], feature_mask=ones)
            unmasked = model(tiny_graph, train[:4])
        np.testing.assert_allclose(masked.data, unmasked.data, atol=1e-9)

    def test_mask_gradients_flow(self, tiny_graph, tiny_splits, detector_config):
        from repro.nn import functional as F

        train, _ = tiny_splits
        model = XFraudDetector(detector_config)
        model.eval()
        edge_mask = nn.Parameter(np.full(tiny_graph.num_edges, 0.5))
        logits = model(tiny_graph, train[:2], edge_mask=edge_mask)
        F.cross_entropy(logits, tiny_graph.labels[train[:2]]).backward()
        assert edge_mask.grad is not None
        assert np.any(edge_mask.grad != 0)

    def test_samplers_attached(self, detector_config):
        from repro.graph import HGSampler, SageSampler

        assert isinstance(XFraudDetectorPlus(detector_config).sampler, SageSampler)
        assert isinstance(XFraudDetectorHGT(detector_config).sampler, HGSampler)

    def test_predict_proba_sampled(self, tiny_graph, tiny_splits, detector_config):
        train, _ = tiny_splits
        plus = XFraudDetectorPlus(detector_config)
        scores = plus.predict_proba_sampled(tiny_graph, train[:6])
        assert scores.shape == (6,)
        hgt = XFraudDetectorHGT(detector_config)
        scores = hgt.predict_proba_sampled(tiny_graph, train[:6])
        assert scores.shape == (6,)


class TestHeteroConvLayer:
    def test_shared_projections_by_default(self, detector_config):
        """The paper's design principle: Q/K/V weights shared across
        node types (type info flows via embeddings)."""
        from repro.models.hetero_conv import HeteroConvLayer

        layer = HeteroConvLayer(
            in_dim=detector_config.feature_dim,
            out_dim=16,
            num_heads=2,
            first_layer=True,
            rng=np.random.default_rng(0),
        )
        assert list(layer.q_linear.keys()) == ["shared"]

    def test_per_type_projection_ablation(self, tiny_graph, detector_config):
        """The HGT-style ablation restores type-indexed Q/K/V."""
        from repro.models.hetero_conv import HeteroConvLayer
        from repro.nn import Tensor

        layer = HeteroConvLayer(
            in_dim=detector_config.feature_dim,
            out_dim=16,
            num_heads=2,
            first_layer=True,
            per_type_projections=True,
            rng=np.random.default_rng(0),
        )
        weights = {t: layer.q_linear[t].weight.data for t in layer.q_linear.keys()}
        types = list(weights)
        assert len(types) == 5
        assert not np.allclose(weights[types[0]], weights[types[1]])
        layer.eval()
        out = layer(tiny_graph, Tensor(tiny_graph.txn_features))
        assert out.shape == (tiny_graph.num_nodes, 16)

    def test_output_dim(self, tiny_graph, detector_config):
        from repro.models.hetero_conv import HeteroConvLayer

        layer = HeteroConvLayer(
            in_dim=detector_config.feature_dim,
            out_dim=16,
            num_heads=4,
            first_layer=True,
            rng=np.random.default_rng(0),
        )
        layer.eval()
        out = layer(tiny_graph, Tensor(tiny_graph.txn_features))
        assert out.shape == (tiny_graph.num_nodes, 16)
        assert np.all(out.data >= 0)  # ReLU output

    def test_head_divisibility_enforced(self):
        from repro.models.hetero_conv import HeteroConvLayer

        with pytest.raises(ValueError):
            HeteroConvLayer(in_dim=8, out_dim=10, num_heads=4)

    def test_type_embeddings_start_zero(self, detector_config):
        from repro.models.hetero_conv import HeteroConvLayer

        layer = HeteroConvLayer(
            in_dim=8, out_dim=8, num_heads=2, first_layer=True
        )
        np.testing.assert_allclose(layer.node_type_emb.weight.data, 0.0)
        np.testing.assert_allclose(layer.edge_type_emb.weight.data, 0.0)


class TestGEMSpecifics:
    def test_gem_has_no_attention_params(self, detector_config):
        model = GEMModel(detector_config)
        names = [name for name, _ in model.named_parameters()]
        assert not any("att" in name for name in names)

    def test_gem_cheapest_forward(self, tiny_graph, tiny_splits, detector_config):
        """GEM's convolution has fewer parameters than the detector's."""
        gem = GEMModel(detector_config)
        detector = XFraudDetector(detector_config)
        assert gem.num_parameters() < detector.num_parameters()


class TestAggregationAblation:
    def test_target_specific_adds_parameters(self, tiny_graph, detector_config):
        from dataclasses import replace

        shared = XFraudDetector(detector_config)
        specific = XFraudDetector(replace(detector_config, target_specific_aggregation=True))
        assert specific.num_parameters() > shared.num_parameters()

    def test_target_specific_forward_works(self, tiny_graph, tiny_splits, detector_config):
        from dataclasses import replace

        train, _ = tiny_splits
        model = XFraudDetector(replace(detector_config, target_specific_aggregation=True))
        loss = model.loss(tiny_graph, train[:16])
        loss.backward()
        assert any("a_linear" in name for name, _ in model.named_parameters())
        a_params = [p for name, p in model.named_parameters() if "a_linear" in name]
        assert any(p.grad is not None for p in a_params)


class TestFeatureMLP:
    def test_ignores_graph_structure(self, tiny_graph, tiny_splits, detector_config):
        """The MLP must give identical scores regardless of edges."""
        from repro.graph.hetero import HeteroGraph
        from repro.models import FeatureMLP

        train, _ = tiny_splits
        model = FeatureMLP(detector_config)
        scores_full = model.predict_proba(tiny_graph, train[:8])
        edgeless = HeteroGraph(
            node_type=tiny_graph.node_type,
            edge_src=np.array([], dtype=np.int64),
            edge_dst=np.array([], dtype=np.int64),
            edge_type=np.array([], dtype=np.int64),
            txn_features=tiny_graph.txn_features,
            labels=tiny_graph.labels,
        )
        scores_empty = model.predict_proba(edgeless, train[:8])
        np.testing.assert_allclose(scores_full, scores_empty)

    def test_trains(self, tiny_graph, tiny_splits, detector_config):
        from repro.models import FeatureMLP
        from repro.train import TrainConfig, Trainer, roc_auc

        train, test = tiny_splits
        model = FeatureMLP(detector_config)
        Trainer(model, TrainConfig(epochs=6, learning_rate=1e-2)).fit(tiny_graph, train)
        scores = model.predict_proba(tiny_graph, test)
        assert roc_auc(tiny_graph.labels[test], scores) > 0.6

    def test_loss_rejects_unlabeled(self, tiny_graph, detector_config):
        from repro.models import FeatureMLP

        entity = int(np.flatnonzero(tiny_graph.labels < 0)[0])
        with pytest.raises(ValueError):
            FeatureMLP(detector_config).loss(tiny_graph, [entity])
