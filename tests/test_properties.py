"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, segment_softmax, segment_sum
from repro.nn import functional as F
from repro.train.metrics import accuracy, average_precision, roc_auc

finite_floats = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)


def small_arrays(shape):
    return arrays(dtype=np.float64, shape=shape, elements=finite_floats)


class TestAutogradProperties:
    @given(small_arrays((4,)), small_arrays((4,)))
    @settings(max_examples=30, deadline=None)
    def test_addition_gradient_is_ones(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta + tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 1.0)
        np.testing.assert_allclose(tb.grad, 1.0)

    @given(small_arrays((5,)))
    @settings(max_examples=30, deadline=None)
    def test_tanh_gradient_formula(self, x):
        t = Tensor(x, requires_grad=True)
        t.tanh().sum().backward()
        np.testing.assert_allclose(t.grad, 1 - np.tanh(x) ** 2, atol=1e-9)

    @given(small_arrays((3, 4)))
    @settings(max_examples=30, deadline=None)
    def test_sum_then_mean_consistency(self, x):
        t = Tensor(x)
        np.testing.assert_allclose(
            t.mean().item(), t.sum().item() / x.size, atol=1e-9
        )

    @given(small_arrays((6,)), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_segment_sum_total_preserved(self, values, num_segments):
        ids = np.arange(6) % num_segments
        out = segment_sum(Tensor(values.reshape(6, 1)), ids, num_segments)
        np.testing.assert_allclose(out.data.sum(), values.sum(), atol=1e-9)

    @given(small_arrays((8,)))
    @settings(max_examples=30, deadline=None)
    def test_segment_softmax_sums_to_one(self, logits):
        ids = np.array([0, 0, 0, 1, 1, 2, 2, 2])
        out = segment_softmax(Tensor(logits), ids, 3).data
        for segment in range(3):
            np.testing.assert_allclose(out[ids == segment].sum(), 1.0, atol=1e-9)

    @given(small_arrays((4, 3)))
    @settings(max_examples=30, deadline=None)
    def test_softmax_invariant_to_shift(self, x):
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestMetricProperties:
    labels_scores = st.integers(min_value=2, max_value=60).flatmap(
        lambda n: st.tuples(
            arrays(np.int64, n, elements=st.integers(0, 1)),
            arrays(
                np.float64,
                n,
                elements=st.floats(0, 1, allow_nan=False),
            ),
        )
    )

    @given(labels_scores)
    @settings(max_examples=50, deadline=None)
    def test_auc_bounded_and_complement(self, data):
        labels, scores = data
        if labels.min() == labels.max():
            return
        auc = roc_auc(labels, scores)
        assert 0 <= auc <= 1
        flipped = roc_auc(labels, 1 - scores)
        # AUC(s) + AUC(1-s) == 1 up to tie handling.
        assert abs(auc + flipped - 1.0) < 0.35

    @given(labels_scores)
    @settings(max_examples=50, deadline=None)
    def test_auc_invariant_to_monotone_transform(self, data):
        labels, scores = data
        if labels.min() == labels.max():
            return
        # Quantise first so the affine map cannot create or destroy
        # ties through floating-point rounding.
        scores = np.round(scores, 3)
        a = roc_auc(labels, scores)
        b = roc_auc(labels, scores * 7 + 3)
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(labels_scores)
    @settings(max_examples=100, deadline=None)
    def test_auc_matches_brute_force_pairwise_under_ties(self, data):
        # The sorted-rank implementation must agree with the textbook
        # definition — P(score_pos > score_neg) + 0.5 P(tie) — even when
        # quantisation creates long runs of tied scores.
        labels, scores = data
        if labels.min() == labels.max():
            return
        scores = np.round(scores, 1)  # force heavy ties
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        brute = (wins + 0.5 * ties) / (len(pos) * len(neg))
        np.testing.assert_allclose(roc_auc(labels, scores), brute, atol=1e-12)

    def test_auc_rejects_nan_scores(self):
        # NaN sorts unpredictably and would silently corrupt the ranking;
        # the metric must refuse it outright.
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.1, np.nan, 0.3, 0.9])
        with pytest.raises(ValueError):
            roc_auc(labels, scores)

    @given(labels_scores)
    @settings(max_examples=50, deadline=None)
    def test_ap_bounded(self, data):
        labels, scores = data
        if labels.sum() == 0:
            return
        assert 0 <= average_precision(labels, scores) <= 1 + 1e-9

    @given(labels_scores)
    @settings(max_examples=50, deadline=None)
    def test_accuracy_bounded(self, data):
        labels, scores = data
        assert 0 <= accuracy(labels, scores) <= 1


class TestHitRateProperties:
    @given(
        st.integers(min_value=6, max_value=40),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_self_agreement_is_one(self, n_edges, k, seed):
        from repro.explain import topk_hit_rate

        rng = np.random.default_rng(seed)
        weights = {(i, i + 1): float(v) for i, v in enumerate(rng.random(n_edges))}
        assert topk_hit_rate(weights, weights, k, draws=5, seed=seed) == 1.0

    @given(st.integers(min_value=6, max_value=30), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_hit_rate_bounded(self, n_edges, seed):
        from repro.explain import topk_hit_rate

        rng = np.random.default_rng(seed)
        a = {(i, i + 1): float(v) for i, v in enumerate(rng.random(n_edges))}
        b = {(i, i + 1): float(v) for i, v in enumerate(rng.random(n_edges))}
        rate = topk_hit_rate(a, b, 5, draws=10, seed=seed)
        assert 0.0 <= rate <= 1.0


class TestGraphProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_generated_graph_invariants(self, seed):
        """Any generator seed yields a structurally valid graph."""
        from repro.data import GeneratorConfig, TransactionGenerator
        from repro.graph import GraphBuilder, NODE_TYPE_IDS

        config = GeneratorConfig(
            num_benign_buyers=15,
            num_stolen_cards=2,
            num_warehouse_rings=1,
            num_cultivated_accounts=1,
            num_guest_checkouts=3,
            feature_dim=8,
            seed=seed,
        )
        generator = TransactionGenerator(config)
        log = generator.downsample_benign(generator.generate())
        graph, _ = GraphBuilder().build(log)
        graph.validate()
        # Symmetric edges.
        pairs = set(zip(graph.edge_src.tolist(), graph.edge_dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)
        # Edges only connect txn to entities.
        txn = NODE_TYPE_IDS["txn"]
        for s, d in zip(graph.edge_src, graph.edge_dst):
            kinds = {int(graph.node_type[s]), int(graph.node_type[d])}
            assert txn in kinds and len(kinds) == 2

    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_sampler_subgraph_is_valid(self, seed, fanout):
        from repro.data import GeneratorConfig, TransactionGenerator
        from repro.graph import GraphBuilder, SageSampler

        config = GeneratorConfig(
            num_benign_buyers=15,
            num_stolen_cards=2,
            num_warehouse_rings=1,
            num_cultivated_accounts=1,
            num_guest_checkouts=2,
            feature_dim=8,
            seed=seed % 5,
        )
        generator = TransactionGenerator(config)
        log = generator.downsample_benign(generator.generate())
        graph, _ = GraphBuilder().build(log)
        targets = graph.labeled_nodes[:4]
        sampled = SageSampler(hops=2, fanout=fanout, seed=seed).sample(graph, targets)
        sampled.graph.validate()
        assert sampled.num_targets == len(targets)
