"""Chaos scenarios: the degradation ladder under scripted faults.

Proves the PR-3 acceptance criteria end to end on a simulated clock:

* a scripted KV outage trips the breaker, requests fail over to the
  rules rung, half-open probes recover, and the full
  closed -> open -> half-open -> closed journey is visible in
  ``ServiceStats``;
* every admitted request gets a verdict — the ladder never raises;
* deadline expiry mid-sampling or mid-fetch produces a *degraded
  verdict*, and no request overruns its budget by more than one
  pipeline step (a sampling hop or one feature-fetch chunk).
"""

import numpy as np
import pytest

from repro.reliability import ManualClock, OutageKVStore, RetryPolicy, SlowKVStore
from repro.rules.miner import MinerConfig, RuleMiner
from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    RUNG_GNN,
    RUNG_PRIOR,
    RUNG_RULES,
    ScoreRequest,
    ScoringService,
    ServiceConfig,
)
from repro.storage import GraphStore, InMemoryKVStore

READ_DELAY_S = 0.002
FETCH_CHUNK = 8


@pytest.fixture(scope="module")
def chaos_rules(tiny_log):
    rules = RuleMiner(MinerConfig(seed=0)).fit(
        tiny_log.feature_matrix(), tiny_log.labels()
    )
    assert len(rules) >= 1
    return rules


def _chaos_service(
    trained_detector,
    tiny_graph,
    rules,
    outage_window,
    deadline_s=0.5,
    read_delay_s=READ_DELAY_S,
):
    """KV-backed service over a scripted outage on a shared manual clock."""
    backing = InMemoryKVStore()
    GraphStore(backing).save(tiny_graph)
    clock = ManualClock()
    store = SlowKVStore(
        OutageKVStore(backing, windows=[outage_window], clock=clock),
        clock,
        delay_s=read_delay_s,
    )
    config = ServiceConfig(
        deadline_s=deadline_s,
        fetch_chunk=FETCH_CHUNK,
        breaker_min_calls=2,
        breaker_window=4,
        breaker_cooldown_s=0.05,
        breaker_half_open_probes=1,
        retry=RetryPolicy(max_attempts=2, base_delay=0.001, seed=0),
        static_prior=0.05,
    )
    service = ScoringService(
        trained_detector,
        tiny_graph,
        feature_store=store,
        rules=rules,
        config=config,
        clock=clock,
        own_store=True,
    )
    return service, clock


def _requests(graph, count):
    nodes = np.flatnonzero(graph.labels >= 0)[:count]
    return [
        ScoreRequest(node=int(node), features=graph.txn_features[int(node)])
        for node in nodes
    ]


def _budget_overrun_bound(config, read_delay_s=READ_DELAY_S):
    """One pipeline step: a full fetch chunk, or a failed retry cycle."""
    retry_cost = config.retry.max_attempts * read_delay_s + sum(config.retry.delays())
    return max(config.fetch_chunk * read_delay_s, retry_cost) + 1e-9


class TestOutageLadder:
    def test_outage_trips_breaker_rules_serve_and_probes_recover(
        self, trained_detector, tiny_graph, chaos_rules
    ):
        service, clock = _chaos_service(
            trained_detector, tiny_graph, chaos_rules, outage_window=(0.15, 0.45)
        )
        with service:
            requests = _requests(tiny_graph, 30)
            responses = []
            for request in requests:
                responses.append(service.score(request))
                clock.advance(0.02)

            # 100% of admitted requests got a verdict, none raised.
            assert len(responses) == len(requests)
            assert all(r.admitted for r in responses)
            assert all(r.verdict in ("fraud", "legit") for r in responses)

            rungs = {r.rung for r in responses}
            assert RUNG_GNN in rungs  # healthy before and after the outage
            assert RUNG_RULES in rungs  # degraded during the outage

            # The breaker journey is observable in ServiceStats.
            path = service.stats.breaker_state_path()
            assert path[0] == CLOSED
            assert OPEN in path
            assert HALF_OPEN in path
            assert path[-1] == CLOSED  # recovered
            assert service.stats.breaker_transitions  # mirrored transitions
            assert service.breaker.state == CLOSED

            # Degradations carry reasons, and some were breaker shortcuts
            # (instant fail-over, no doomed KV reads).
            reasons = {r.degraded_reason for r in responses if r.degraded_reason}
            assert "kv_unavailable" in reasons
            assert "breaker_open" in reasons

            # After recovery the last responses ride the GNN rung again.
            assert responses[-1].rung == RUNG_GNN

    def test_prior_rung_serves_shed_burst_with_verdicts(
        self, trained_detector, tiny_graph, chaos_rules
    ):
        service, clock = _chaos_service(
            trained_detector, tiny_graph, chaos_rules, outage_window=(0.15, 0.45)
        )
        with service:
            # Ladder bottom: a queue-busting burst is shed *with verdicts*.
            burst = _requests(tiny_graph, service.config.queue_capacity + 6)
            shed = [service.submit(request) for request in burst]
            rejected = [s for s in shed if s is not None]
            assert len(rejected) == 6
            assert all(r.rung == RUNG_PRIOR for r in rejected)
            assert all(r.verdict in ("fraud", "legit") for r in rejected)
            drained = service.drain()
            assert len(drained) == service.config.queue_capacity

            # Every request that entered the system left with a verdict.
            assert service.stats.received == len(burst)
            assert service.stats.completed + service.stats.total_shed == len(burst)

    def test_no_request_overruns_deadline_by_more_than_one_step(
        self, trained_detector, tiny_graph, chaos_rules
    ):
        budget = 0.01  # tighter than one fetch chunk: burns out mid-fetch
        service, clock = _chaos_service(
            trained_detector,
            tiny_graph,
            chaos_rules,
            outage_window=(1e9, 2e9),  # no outage; stragglers only
            deadline_s=budget,
        )
        bound = _budget_overrun_bound(service.config)
        with service:
            responses = []
            for request in _requests(tiny_graph, 12):
                responses.append(service.score(request))
                clock.advance(0.01)
            assert all(r.verdict in ("fraud", "legit") for r in responses)
            # Tight budgets force deadline degradations...
            degraded = [r for r in responses if r.rung != RUNG_GNN]
            assert degraded
            assert service.stats.deadline_hits > 0
            assert any(
                (r.degraded_reason or "").startswith("deadline:") for r in degraded
            )
            # ...and nobody overruns by more than one pipeline step.
            for response in responses:
                assert response.latency_s <= budget + bound


class TestDeadlineMidSampling:
    def test_degraded_verdict_never_exception(
        self, trained_detector, tiny_graph, chaos_rules
    ):
        class AutoTickClock(ManualClock):
            """Every reading costs time: expires budgets inside sampling."""

            def __init__(self, tick):
                super().__init__()
                self.tick = tick

            def __call__(self):
                self.now += self.tick
                return self.now

        clock = AutoTickClock(tick=0.03)
        config = ServiceConfig(deadline_s=0.05, static_prior=0.05)
        service = ScoringService(
            trained_detector,
            tiny_graph,
            rules=chaos_rules,
            config=config,
            clock=clock,
        )
        node = int(np.flatnonzero(tiny_graph.labels >= 0)[0])
        request = ScoreRequest(node=node, features=tiny_graph.txn_features[node])
        response = service.score(request)  # must not raise
        assert response.admitted
        assert response.rung in (RUNG_RULES, RUNG_PRIOR)
        assert response.degraded_reason.startswith("deadline:")
        assert "sampling" in response.degraded_reason or "admission" in response.degraded_reason
        assert service.stats.deadline_hits == 1

    def test_sampler_deadline_is_checked_per_hop(self, tiny_graph):
        from repro.graph.sampling import SageSampler
        from repro.serving import Deadline, DeadlineExceeded

        clock = ManualClock()
        sampler = SageSampler(hops=3, fanout=4, seed=0)
        deadline = Deadline(0.01, clock=clock)
        clock.advance(0.02)  # already expired before the first hop
        node = int(np.flatnonzero(tiny_graph.labels >= 0)[0])
        with pytest.raises(DeadlineExceeded) as excinfo:
            sampler.sample(tiny_graph, [node], deadline=deadline)
        assert excinfo.value.stage == "sampling hop 0"
        # Without a deadline the same call succeeds (offline path intact).
        assert sampler.sample(tiny_graph, [node]).num_targets == 1
